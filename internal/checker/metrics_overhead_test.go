package checker

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/obsv"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// hotpathTrace mirrors acbench -hotpath's session history: n prior
// point probes against Attendance.
func hotpathTrace(n int) *trace.Trace {
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		sql := fmt.Sprintf("SELECT 1 FROM Attendance WHERE UId=1 AND EId=%d", i+2)
		st := sqlparser.MustParseSelect(sql)
		tr.Append(trace.Entry{SQL: sql, Stmt: st, Args: sqlparser.NoArgs,
			Columns: []string{"1"}, Rows: [][]sqlvalue.Value{{sqlvalue.NewInt(1)}}})
	}
	return tr
}

// newHotpathChecker builds a checker over the calendar policy with
// the given registry and warms the hotpath decision once.
func newHotpathChecker(t testing.TB, reg *obsv.Registry, tr *trace.Trace) (*Checker, *sqlparser.SelectStmt) {
	opts := DefaultOptions()
	opts.Metrics = reg
	c := NewWithOptions(calendarPolicy(t), opts)
	sel := sqlparser.MustParseSelect("SELECT * FROM Events WHERE EId=2")
	c.Check(context.Background(), sel, sqlparser.NoArgs, session(1), tr)
	return c, sel
}

// TestMetricsOverheadGuard asserts the instrumented CheckSQL path
// stays within 5% of a no-op-metrics (obsv.Disabled) build on the
// acbench -hotpath workload: a warm trace-dependent check against a
// 50-entry history. The per-op cost there is tens of microseconds,
// against which the pipeline's per-stage clock reads and atomic
// instruments are noise; this guard fails if instrumentation ever
// grows a hot-path allocation or lock.
//
// Measurement is interleaved min-of-trials (the minimum is the
// stablest location statistic under scheduler noise). Skipped under
// -race, which inflates atomics far past any real deployment.
func TestMetricsOverheadGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector inflates atomic costs; overhead guard runs in the normal build")
	}
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	tr := hotpathTrace(50)
	cOn, selOn := newHotpathChecker(t, nil, tr)               // default: metrics on
	cOff, selOff := newHotpathChecker(t, obsv.Disabled(), tr) // no-op build

	// Many small strictly-interleaved blocks, min-of per side: the
	// minimum is the stablest location statistic under scheduler and
	// frequency noise, and interleaving exposes both sides to the
	// same machine conditions.
	const (
		iters  = 50
		trials = 30
	)
	sess := session(1)
	measure := func(c *Checker, sel *sqlparser.SelectStmt) time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			c.Check(context.Background(), sel, sqlparser.NoArgs, sess, tr)
		}
		return time.Since(start)
	}
	measure(cOn, selOn) // warmup
	measure(cOff, selOff)

	attempt := func() float64 {
		minOn, minOff := time.Duration(1<<62), time.Duration(1<<62)
		for trial := 0; trial < trials; trial++ {
			// Alternate which side goes first so ordering effects (branch
			// history, cache residency left by the previous block) cancel.
			if trial%2 == 0 {
				if d := measure(cOn, selOn); d < minOn {
					minOn = d
				}
				if d := measure(cOff, selOff); d < minOff {
					minOff = d
				}
			} else {
				if d := measure(cOff, selOff); d < minOff {
					minOff = d
				}
				if d := measure(cOn, selOn); d < minOn {
					minOn = d
				}
			}
		}
		ratio := float64(minOn) / float64(minOff)
		t.Logf("instrumented %v vs no-op %v per %d checks (ratio %.3f)", minOn, minOff, iters, ratio)
		return ratio
	}

	// Timing guard: a real regression fails every attempt; scheduler
	// noise clears on a retry. Pass if any attempt lands inside budget.
	const attempts = 4
	var ratios []float64
	for i := 0; i < attempts; i++ {
		r := attempt()
		if r <= 1.05 {
			return
		}
		ratios = append(ratios, r)
	}
	t.Errorf("instrumented CheckSQL exceeded the 5%% overhead budget on all %d attempts (ratios %.3f)",
		attempts, ratios)
}

// TestColdPathMetricsOverheadGuard is the cold-path sibling of
// TestMetricsOverheadGuard: the instrumented *parallel* cold coverage
// search (compiled index + worker pool, caching off so every check
// runs the full search) must stay within 5% of the no-op-metrics
// build. The cold path's instrumentation — pool gauges, prune
// counters, gather/search histograms and span records — is gated on
// reg.Enabled(), and this guard fails if any of it ever runs (or
// allocates) in the disabled build, or grows past noise in the
// enabled one.
func TestColdPathMetricsOverheadGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector inflates atomic costs; overhead guard runs in the normal build")
	}
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	s := benchColdSchema(t)
	pol := benchColdPolicy(s, 64)
	sel := benchColdQuery()
	sess := benchColdSession()
	workers := runtime.GOMAXPROCS(0)

	newCold := func(reg *obsv.Registry) *Checker {
		opts := coldOpts(true, workers)
		opts.Metrics = reg
		c := NewWithOptions(pol, opts)
		if d := c.Check(context.Background(), sel, sqlparser.NoArgs, sess, nil); !d.Allowed {
			t.Fatalf("cold workload should be allowed: %+v", d)
		}
		return c
	}
	cOn := newCold(nil)              // default: metrics on
	cOff := newCold(obsv.Disabled()) // no-op build

	const (
		iters  = 20
		trials = 20
	)
	measure := func(c *Checker) time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			c.Check(context.Background(), sel, sqlparser.NoArgs, sess, nil)
		}
		return time.Since(start)
	}
	measure(cOn) // warmup
	measure(cOff)

	attempt := func() float64 {
		minOn, minOff := time.Duration(1<<62), time.Duration(1<<62)
		for trial := 0; trial < trials; trial++ {
			if trial%2 == 0 {
				if d := measure(cOn); d < minOn {
					minOn = d
				}
				if d := measure(cOff); d < minOff {
					minOff = d
				}
			} else {
				if d := measure(cOff); d < minOff {
					minOff = d
				}
				if d := measure(cOn); d < minOn {
					minOn = d
				}
			}
		}
		ratio := float64(minOn) / float64(minOff)
		t.Logf("instrumented cold %v vs no-op %v per %d checks (ratio %.3f)", minOn, minOff, iters, ratio)
		return ratio
	}

	const attempts = 4
	var ratios []float64
	for i := 0; i < attempts; i++ {
		r := attempt()
		if r <= 1.05 {
			return
		}
		ratios = append(ratios, r)
	}
	t.Errorf("instrumented parallel cold path exceeded the 5%% overhead budget on all %d attempts (ratios %.3f)",
		attempts, ratios)
}

// BenchmarkCheckMetricsOn / BenchmarkCheckMetricsOff are the
// calibrated pair behind the overhead guard; compare with
// benchstat or acbench -json's metricsOverhead section.
func BenchmarkCheckMetricsOn(b *testing.B) {
	tr := hotpathTrace(50)
	c, sel := newHotpathChecker(b, nil, tr)
	sess := session(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Check(context.Background(), sel, sqlparser.NoArgs, sess, tr)
	}
}

func BenchmarkCheckMetricsOff(b *testing.B) {
	tr := hotpathTrace(50)
	c, sel := newHotpathChecker(b, obsv.Disabled(), tr)
	sess := session(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Check(context.Background(), sel, sqlparser.NoArgs, sess, tr)
	}
}
