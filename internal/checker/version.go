package checker

// The versioned policy store. The checker used to hold exactly one
// compiled policy snapshot behind an atomic pointer; shadow mode needs
// two — the ACTIVE policy that enforces, and an optional CANDIDATE
// staged for trial — plus a stable notion of "which policy decided
// this query". A polVersion is one compiled policy with a monotone
// epoch; the versionTable publishes the (active, candidate) pair
// atomically so stage/promote/rollback never race with in-flight
// decisions, which pin the version they started with.
//
// Epochs are the cache-invalidation currency: every decision-cache key
// (front, history-free, template tiers) embeds the deciding epoch, so
// swapping policies invalidates warm state by bumping the epoch —
// stale-epoch entries simply never match again and age out through
// normal eviction — instead of recreating every map. A republish whose
// compiled fingerprint is unchanged keeps its epoch, so all warm state
// stays live (see installActive). Candidate decisions warm the same
// caches under the candidate's epoch, which means a promote arrives
// with its cache tiers already hot from the shadow traffic.

import (
	"errors"
	"time"

	"repro/internal/policy"
)

// polVersion is one immutable compiled policy version: the epoch that
// tags its cache keys and Decisions, the compiled-plan fingerprint,
// the indexed plan (compile.go), and the source policy.
type polVersion struct {
	epoch  uint64
	parent uint64 // epoch this version was staged against (0 for roots)
	fp     string
	comp   *compiledPolicy
	pol    *policy.Policy
}

// versionTable is the atomically-published pair of resident versions.
// candidate is nil when nothing is staged.
type versionTable struct {
	active    *polVersion
	candidate *polVersion
}

// PolicyVersion is the exported summary of one resident policy
// version, returned by the lifecycle API and surfaced through the
// proxy's policy.status op.
type PolicyVersion struct {
	Epoch       uint64
	Parent      uint64
	Fingerprint string
	Views       int
}

func (v *polVersion) summary() PolicyVersion {
	return PolicyVersion{Epoch: v.epoch, Parent: v.parent, Fingerprint: v.fp, Views: len(v.pol.Views)}
}

// ErrNoCandidate is returned by Promote/Rollback when no candidate
// policy is staged.
var ErrNoCandidate = errors.New("checker: no candidate policy staged")

// compilePol compiles a policy into its indexed plan, timing into
// checker.compile.micros. Compilation happens once per lifecycle
// event, never per decision.
func (c *Checker) compilePol(p *policy.Policy) *compiledPolicy {
	start := time.Now()
	comp := compilePolicy(p.Fingerprint(), p.Disjuncts(nil))
	c.mCompile.Observe(time.Since(start).Microseconds())
	return comp
}

// activeVersion returns the current active version.
func (c *Checker) activeVersion() *polVersion { return c.vers.Load().active }

// candidateVersion returns the staged candidate, or nil.
func (c *Checker) candidateVersion() *polVersion { return c.vers.Load().candidate }

// ShadowStaged reports whether a candidate policy is currently staged.
// It is one atomic load, cheap enough for the per-query hot path.
func (c *Checker) ShadowStaged() bool { return c.vers.Load().candidate != nil }

// installActive compiles pol and publishes it as the active version.
// When the compiled fingerprint equals the current active version's,
// the epoch is NOT bumped and the current version stays published
// (modulo the policy pointer), so every warm cache entry remains
// valid — a no-op republish costs one compile and nothing else. A
// changed fingerprint takes a fresh epoch, which invalidates all
// previously-keyed decisions at once. The staged candidate, if any,
// survives either way. Reports whether the epoch was bumped.
func (c *Checker) installActive(pol *policy.Policy) (PolicyVersion, bool) {
	c.verMu.Lock()
	defer c.verMu.Unlock()
	cur := c.vers.Load()
	comp := c.compilePol(pol)
	if cur.active.fp == comp.fp {
		// Fingerprint-identical republish: same epoch, same compiled
		// plan shape; keep the warm state. The (possibly new) policy
		// pointer is still installed so Policy() tracks the caller's
		// object.
		nv := &polVersion{epoch: cur.active.epoch, parent: cur.active.parent, fp: cur.active.fp, comp: cur.active.comp, pol: pol}
		c.vers.Store(&versionTable{active: nv, candidate: cur.candidate})
		return nv.summary(), false
	}
	c.nextEpoch++
	nv := &polVersion{epoch: c.nextEpoch, parent: cur.active.epoch, fp: comp.fp, comp: comp, pol: pol}
	c.vers.Store(&versionTable{active: nv, candidate: cur.candidate})
	return nv.summary(), true
}

// SetActivePolicy replaces the active policy in place — the restart/
// recovery path, where a WAL-recovered promote must override the
// policy the checker was constructed with. Fingerprint-identical
// policies keep their epoch and every warm cache entry (see
// installActive); the bool reports whether the epoch was bumped. The
// policy must share the active schema.
func (c *Checker) SetActivePolicy(p *policy.Policy) (PolicyVersion, bool, error) {
	if p.Schema != c.activeVersion().pol.Schema {
		return PolicyVersion{}, false, errors.New("checker: replacement policy schema differs from active")
	}
	pv, bumped := c.installActive(p)
	return pv, bumped, nil
}

// StagePolicy compiles p and stages it as the candidate policy. Every
// subsequent CheckShadow (and the proxy's dual-decide path) decides
// under both versions; the active version keeps enforcing. Staging
// replaces any previously staged candidate. The candidate must share
// the active policy's schema (same application); policies over a
// different schema are rejected.
func (c *Checker) StagePolicy(p *policy.Policy) (PolicyVersion, error) {
	c.verMu.Lock()
	defer c.verMu.Unlock()
	cur := c.vers.Load()
	if p.Schema != cur.active.pol.Schema {
		return PolicyVersion{}, errors.New("checker: candidate policy schema differs from active")
	}
	comp := c.compilePol(p)
	c.nextEpoch++
	cand := &polVersion{epoch: c.nextEpoch, parent: cur.active.epoch, fp: comp.fp, comp: comp, pol: p}
	c.vers.Store(&versionTable{active: cur.active, candidate: cand})
	return cand.summary(), nil
}

// Promote makes the staged candidate the active version and clears
// the candidate slot. The promoted version keeps its epoch, so every
// cache entry its shadow decisions warmed is immediately live for
// enforcement. Returns ErrNoCandidate when nothing is staged.
func (c *Checker) Promote() (PolicyVersion, error) {
	c.verMu.Lock()
	defer c.verMu.Unlock()
	cur := c.vers.Load()
	if cur.candidate == nil {
		return PolicyVersion{}, ErrNoCandidate
	}
	c.vers.Store(&versionTable{active: cur.candidate})
	return cur.candidate.summary(), nil
}

// Rollback discards the staged candidate, returning its summary.
// Returns ErrNoCandidate when nothing is staged.
func (c *Checker) Rollback() (PolicyVersion, error) {
	c.verMu.Lock()
	defer c.verMu.Unlock()
	cur := c.vers.Load()
	if cur.candidate == nil {
		return PolicyVersion{}, ErrNoCandidate
	}
	c.vers.Store(&versionTable{active: cur.active})
	return cur.candidate.summary(), nil
}

// Versions returns the active version summary and the candidate's
// (nil when nothing is staged).
func (c *Checker) Versions() (active PolicyVersion, candidate *PolicyVersion) {
	t := c.vers.Load()
	active = t.active.summary()
	if t.candidate != nil {
		s := t.candidate.summary()
		candidate = &s
	}
	return active, candidate
}

// CandidatePolicy returns the staged candidate policy, or nil.
func (c *Checker) CandidatePolicy() *policy.Policy {
	if cand := c.vers.Load().candidate; cand != nil {
		return cand.pol
	}
	return nil
}
