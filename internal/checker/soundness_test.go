package checker

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// TestCheckerSoundnessRandomized is the central safety property: for
// every query the checker ALLOWS, the answer must be a function of the
// view contents — any two random instances on which every policy view
// returns the same answer must give the same query answer. We sample
// policies from a pool, queries from a pool, and instance pairs from a
// tiny domain (so view-agreement collisions actually happen), and
// cross-validate the checker against direct evaluation.
func TestCheckerSoundnessRandomized(t *testing.T) {
	s := calendarSchema(t)
	policies := []*policy.Policy{
		policy.MustNew(s, map[string]string{
			"V1": "SELECT EId FROM Attendance WHERE UId = ?MyUId",
			"V2": "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
		}),
		policy.MustNew(s, map[string]string{
			"VT": "SELECT Title FROM Events",
		}),
		policy.MustNew(s, map[string]string{
			"VA": "SELECT UId, EId FROM Attendance",
			"VE": "SELECT EId, Title FROM Events",
		}),
		policy.MustNew(s, map[string]string{
			"VOwn": "SELECT UId FROM Attendance WHERE UId = ?MyUId",
		}),
		policy.MustNew(s, map[string]string{
			"VJoin": "SELECT e.EId, e.Title, a.UId FROM Events e JOIN Attendance a ON e.EId = a.EId",
		}),
	}
	queries := []string{
		"SELECT EId FROM Attendance WHERE UId = 1",
		"SELECT EId FROM Attendance",
		"SELECT UId, EId FROM Attendance",
		"SELECT Title FROM Events",
		"SELECT Title FROM Events WHERE EId = 2",
		"SELECT * FROM Events WHERE EId = 2",
		"SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 1",
		"SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId",
		"SELECT Name FROM Users WHERE UId = 1",
		"SELECT a.EId FROM Attendance a JOIN Events e ON a.EId = e.EId WHERE e.Title = 'a'",
		"SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2",
		"SELECT Notes FROM Events WHERE EId = 1",
	}
	session := map[string]sqlvalue.Value{"MyUId": sqlvalue.NewInt(1)}
	rng := rand.New(rand.NewSource(2023))

	// Pre-generate instances over a tiny domain.
	var insts []cq.Instance
	for i := 0; i < 60; i++ {
		insts = append(insts, randCalInstance(rng, s))
	}

	tr := &cq.Translator{Schema: s}
	allowedCount := 0
	for _, pol := range policies {
		chk := New(pol)
		views := pol.Disjuncts(session)
		for _, src := range queries {
			d, err := chk.CheckSQL(context.Background(), src, sqlparser.NoArgs, session, nil)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			if !d.Allowed {
				continue
			}
			allowedCount++
			ucq, err := tr.TranslateSelect(sqlparser.MustParseSelect(src))
			if err != nil {
				t.Fatalf("allowed query outside fragment?! %s: %v", src, err)
			}
			bound := make([]*cq.Query, len(ucq))
			for i, q := range ucq {
				bound[i] = q.BindParams(session)
			}
			answer := func(in cq.Instance) string {
				return cq.AnswerKey(cq.EvaluateUCQ(bound, in))
			}
			viewKey := func(in cq.Instance) string {
				out := ""
				for _, v := range views {
					out += cq.AnswerKey(cq.Evaluate(v, in)) + "\x01"
				}
				return out
			}
			pairs := 0
			for x := 0; x < len(insts) && pairs < 200; x++ {
				for y := x + 1; y < len(insts) && pairs < 200; y++ {
					if viewKey(insts[x]) != viewKey(insts[y]) {
						continue
					}
					pairs++
					if answer(insts[x]) != answer(insts[y]) {
						t.Fatalf("UNSOUND: checker allowed %q under policy\n%s\nbut instances disagree:\nD1=%v\nD2=%v",
							src, pol, insts[x], insts[y])
					}
				}
			}
		}
	}
	if allowedCount < 8 {
		t.Fatalf("too few allowed (query, policy) pairs exercised: %d", allowedCount)
	}
}

func randCalInstance(rng *rand.Rand, s *schema.Schema) cq.Instance {
	inst := cq.Instance{}
	smallInt := func() sqlvalue.Value { return sqlvalue.NewInt(int64(rng.Intn(3) + 1)) }
	smallText := func() sqlvalue.Value {
		return sqlvalue.NewText([]string{"a", "b"}[rng.Intn(2)])
	}
	for _, t := range s.Tables() {
		n := rng.Intn(3)
		name := ""
		for _, r := range t.Name {
			if r >= 'A' && r <= 'Z' {
				r += 32
			}
			name += string(r)
		}
		for i := 0; i < n; i++ {
			row := make([]sqlvalue.Value, len(t.Columns))
			for c, col := range t.Columns {
				if col.Type == sqlvalue.Text {
					row[c] = smallText()
				} else {
					row[c] = smallInt()
				}
			}
			inst[name] = append(inst[name], row)
		}
	}
	return inst
}

// TestCheckerSoundnessWithHistory extends the property to
// history-dependent decisions: instances must additionally be
// consistent with the trace facts.
func TestCheckerSoundnessWithHistory(t *testing.T) {
	s := calendarSchema(t)
	pol := calendarPolicy(t)
	chk := New(pol)
	sess := session(1)

	// Trace: the Example 2.1 probe returned one row.
	probeSQL := "SELECT 1 FROM Attendance WHERE UId=1 AND EId=2"
	probe := sqlparser.MustParseSelect(probeSQL)
	tr := traceWithRow(probeSQL, probe)

	q2 := "SELECT * FROM Events WHERE EId=2"
	d, err := chk.CheckSQL(context.Background(), q2, sqlparser.NoArgs, sess, tr)
	if err != nil || !d.Allowed {
		t.Fatalf("setup: Q2 with history should be allowed: %+v %v", d, err)
	}

	rng := rand.New(rand.NewSource(11))
	ctr := &cq.Translator{Schema: s}
	ucq, err := ctr.TranslateSelect(sqlparser.MustParseSelect(q2))
	if err != nil {
		t.Fatal(err)
	}
	bound := ucq[0].BindParams(sess)
	views := pol.Disjuncts(sess)
	fact := []sqlvalue.Value{sqlvalue.NewInt(1), sqlvalue.NewInt(2)}

	var insts []cq.Instance
	for len(insts) < 40 {
		in := randCalInstance(rng, s)
		// Consistency with the trace: attendance(1,2) present.
		if !hasRow(in, "attendance", fact) {
			in["attendance"] = append(in["attendance"], fact)
		}
		insts = append(insts, in)
	}
	viewKey := func(in cq.Instance) string {
		out := ""
		for _, v := range views {
			out += cq.AnswerKey(cq.Evaluate(v, in)) + "\x01"
		}
		return out
	}
	for x := 0; x < len(insts); x++ {
		for y := x + 1; y < len(insts); y++ {
			if viewKey(insts[x]) != viewKey(insts[y]) {
				continue
			}
			ax := cq.AnswerKey(cq.Evaluate(bound, insts[x]))
			ay := cq.AnswerKey(cq.Evaluate(bound, insts[y]))
			if ax != ay {
				t.Fatalf("UNSOUND with history: D1=%v D2=%v", insts[x], insts[y])
			}
		}
	}
}

func hasRow(in cq.Instance, table string, row []sqlvalue.Value) bool {
	for _, r := range in[table] {
		if len(r) != len(row) {
			continue
		}
		same := true
		for i := range r {
			if !sqlvalue.Identical(r[i], row[i]) {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

func traceWithRow(sql string, stmt *sqlparser.SelectStmt) *trace.Trace {
	tr := &trace.Trace{}
	tr.Append(trace.Entry{
		SQL: sql, Stmt: stmt, Args: sqlparser.NoArgs,
		Columns: []string{"1"},
		Rows:    [][]sqlvalue.Value{{sqlvalue.NewInt(1)}},
	})
	return tr
}
