package checker

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/apps"
	"repro/internal/cq"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// coldOpts builds checker options for one cold-path configuration:
// caching off so every check runs the coverage search.
func coldOpts(index bool, workers int) Options {
	opts := DefaultOptions()
	opts.UseCache = false
	opts.ColdIndex = index
	opts.ColdWorkers = workers
	return opts
}

// TestCoverEmptyPolicy: a policy with no views compiles to an empty
// plan and blocks every data-revealing query, in every cold-path
// configuration.
func TestCoverEmptyPolicy(t *testing.T) {
	s := calendarSchema(t)
	empty := policy.MustNew(s, nil)
	for _, cfg := range []struct {
		name    string
		index   bool
		workers int
	}{
		{"scan", false, 1}, {"indexed", true, 1}, {"parallel", true, 8},
	} {
		c := NewWithOptions(empty, coldOpts(cfg.index, cfg.workers))
		comp := c.activeVersion().comp
		if len(comp.views) != 0 || len(comp.byRel) != 0 {
			t.Fatalf("%s: empty policy compiled to %d views, %d index buckets",
				cfg.name, len(comp.views), len(comp.byRel))
		}
		d := mustCheck(t, c, "SELECT EId FROM Attendance WHERE UId = 1", session(1), nil)
		if d.Allowed {
			t.Fatalf("%s: empty policy allowed a data-revealing query: %+v", cfg.name, d)
		}
	}
}

// ghostView hand-builds a view disjunct over a relation the schema
// does not declare (the SQL front door rejects such a view, but a
// policy assembled programmatically can carry one).
func ghostView() *policy.View {
	q := &cq.Query{
		Name:  "VGhost",
		Head:  []cq.Term{cq.V("x")},
		Atoms: []cq.Atom{{Table: "ghost", Args: []cq.Term{cq.V("x"), cq.V("y")}}},
	}
	return &policy.View{Name: "VGhost", CQs: cq.UCQ{q}}
}

// TestCompileAbsentRelation: a view over a relation absent from the
// schema is indexed under its own symbol and never surfaces as a
// candidate — decisions are identical with and without it, in every
// configuration.
func TestCompileAbsentRelation(t *testing.T) {
	pol := calendarPolicy(t)
	ghosted := pol.Clone()
	ghosted.Views = append(ghosted.Views, ghostView())

	comp := compilePolicy(ghosted.Fingerprint(), ghosted.Disjuncts(nil))
	id, ok := comp.syms.id("ghost")
	if !ok {
		t.Fatal("ghost relation not interned")
	}
	if n := len(comp.byRel[id]); n != 1 {
		t.Fatalf("ghost relation indexes %d views, want 1", n)
	}

	queries := []string{
		"SELECT EId FROM Attendance WHERE UId = 1",
		"SELECT * FROM Events WHERE EId = 2",
		"SELECT Title FROM Events",
	}
	for _, cfg := range []struct {
		name    string
		index   bool
		workers int
	}{
		{"scan", false, 1}, {"indexed", true, 1}, {"parallel", true, 8},
	} {
		base := NewWithOptions(pol, coldOpts(cfg.index, cfg.workers))
		with := NewWithOptions(ghosted, coldOpts(cfg.index, cfg.workers))
		for _, q := range queries {
			dBase := mustCheck(t, base, q, session(1), nil)
			dWith := mustCheck(t, with, q, session(1), nil)
			if fmt.Sprintf("%#v", dBase) != fmt.Sprintf("%#v", dWith) {
				t.Fatalf("%s: ghost view changed the decision for %q:\nwithout: %#v\nwith:    %#v",
					cfg.name, q, dBase, dWith)
			}
		}
	}
}

// TestCompileDedupesDuplicateViews: the same disjunct (same name,
// same canonical form) appearing twice in a policy is indexed once —
// duplicates can only produce identical candidate embeddings — and
// decisions are unchanged.
func TestCompileDedupesDuplicateViews(t *testing.T) {
	pol := calendarPolicy(t)
	doubled := pol.Clone()
	doubled.Views = append(doubled.Views, pol.Views...)

	uniq := compilePolicy(pol.Fingerprint(), pol.Disjuncts(nil))
	comp := compilePolicy(doubled.Fingerprint(), doubled.Disjuncts(nil))
	if len(comp.views) != len(uniq.views) {
		t.Fatalf("duplicate views not deduped: %d compiled views, want %d",
			len(comp.views), len(uniq.views))
	}

	c := NewWithOptions(doubled, coldOpts(true, 8))
	d := mustCheck(t, c, "SELECT EId FROM Attendance WHERE UId = 1", session(1), nil)
	if !d.Allowed {
		t.Fatalf("doubled policy blocked a V1-covered query: %+v", d)
	}
}

// primeE1Trace replays a corpus query's priming probe against the
// fixture database so its result enters the history (the same setup
// experiments.RunE1 uses).
func primeE1Trace(t *testing.T, db *engine.DB, w apps.WorkloadQuery) *trace.Trace {
	t.Helper()
	tr := &trace.Trace{}
	if w.PrimeSQL == "" {
		return tr
	}
	sel, err := sqlparser.ParseSelect(w.PrimeSQL)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := sqlparser.Bind(sel, sqlparser.PositionalArgs(w.PrimeArgs...))
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(bound.(*sqlparser.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]sqlvalue.Value, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = r
	}
	tr.Append(trace.Entry{
		SQL: w.PrimeSQL, Stmt: sel, Args: sqlparser.PositionalArgs(w.PrimeArgs...),
		Columns: res.Columns, Rows: rows,
	})
	return tr
}

// TestSerialParallelParityE1: over the full E1 corpus (every labeled
// query of every fixture), the original linear scan, the indexed
// serial search, and the indexed parallel search return byte-identical
// Decisions. This is the determinism half of the cold-path
// parallelization's soundness argument: parallelism must never change
// the answer, the reason string, or the covering-view list.
func TestSerialParallelParityE1(t *testing.T) {
	total := 0
	for _, f := range apps.All() {
		db := f.MustNewDB(24)
		pol := f.Policy()
		scan := NewWithOptions(pol, coldOpts(false, 1))
		indexed := NewWithOptions(pol, coldOpts(true, 1))
		parallel := NewWithOptions(pol, coldOpts(true, 8))
		for _, w := range f.Corpus {
			tr := primeE1Trace(t, db, w)
			args := sqlparser.PositionalArgs(w.Args...)
			sess := f.Session(w.UId)
			ctx := context.Background()
			dScan, err := scan.CheckSQL(ctx, w.SQL, args, sess, tr)
			if err != nil {
				t.Fatalf("%s/%s: %v", f.Name, w.Label, err)
			}
			dIdx, err := indexed.CheckSQL(ctx, w.SQL, args, sess, tr)
			if err != nil {
				t.Fatalf("%s/%s: %v", f.Name, w.Label, err)
			}
			dPar, err := parallel.CheckSQL(ctx, w.SQL, args, sess, tr)
			if err != nil {
				t.Fatalf("%s/%s: %v", f.Name, w.Label, err)
			}
			gScan, gIdx, gPar := fmt.Sprintf("%#v", dScan), fmt.Sprintf("%#v", dIdx), fmt.Sprintf("%#v", dPar)
			if gScan != gIdx || gScan != gPar {
				t.Fatalf("%s/%s: cold-path configurations disagree:\nscan:     %s\nindexed:  %s\nparallel: %s",
					f.Name, w.Label, gScan, gIdx, gPar)
			}
			total++
		}
	}
	if total < 40 {
		t.Fatalf("E1 corpus too small to be meaningful: %d decisions", total)
	}
	t.Logf("serial/indexed/parallel byte-identical over %d E1 decisions", total)
}

// --- Cold-path benchmark workload (mirrors acbench -coldpath):
// 16 relations, views spread evenly across them, a 4-arm UNION query
// with exactly one covering view per arm, caching off.

const benchColdTables = 16

func benchColdSchema(tb testing.TB) *schema.Schema {
	tb.Helper()
	b := schema.NewBuilder()
	for i := 0; i < benchColdTables; i++ {
		b = b.Table(fmt.Sprintf("R%d", i)).
			NotNullCol("Id", sqlvalue.Int).
			NotNullCol("Owner", sqlvalue.Int).
			NotNullCol("Val", sqlvalue.Int).
			NotNullCol("K", sqlvalue.Int).
			PK("Id").Done()
	}
	s, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func benchColdPolicy(s *schema.Schema, n int) *policy.Policy {
	views := make(map[string]string, n)
	for j := 0; j < n; j++ {
		views[fmt.Sprintf("V%03d", j)] = fmt.Sprintf(
			"SELECT Id, Val FROM R%d WHERE Owner = ?MyUId AND K = %d", j%benchColdTables, j)
	}
	return policy.MustNew(s, views)
}

func benchColdQuery() *sqlparser.SelectStmt {
	sql := ""
	for i := 0; i < 4; i++ {
		if i > 0 {
			sql += " UNION "
		}
		sql += fmt.Sprintf("SELECT Id, Val FROM R%d WHERE Owner = ?MyUId AND K = %d AND Id >= 10", i, i)
	}
	return sqlparser.MustParseSelect(sql)
}

// benchColdSession: the uid must not collide with any view's K
// constant, or template generalization folds the constant into the
// parameter and changes the query's meaning.
func benchColdSession() map[string]sqlvalue.Value {
	return map[string]sqlvalue.Value{"MyUId": sqlvalue.NewInt(1_000_001)}
}

func benchColdPath(b *testing.B, index bool, workers int) {
	s := benchColdSchema(b)
	c := NewWithOptions(benchColdPolicy(s, 128), coldOpts(index, workers))
	sel := benchColdQuery()
	sess := benchColdSession()
	ctx := context.Background()
	if d := c.Check(ctx, sel, sqlparser.NoArgs, sess, nil); !d.Allowed {
		b.Fatalf("cold workload should be allowed: %+v", d)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Check(ctx, sel, sqlparser.NoArgs, sess, nil)
	}
}

// The three cold-path configurations at 128 policy views; acbench
// -coldpath runs the full policy-size sweep.
func BenchmarkColdPathSerial(b *testing.B)  { benchColdPath(b, false, 1) }
func BenchmarkColdPathIndexed(b *testing.B) { benchColdPath(b, true, 1) }
func BenchmarkColdPathParallel(b *testing.B) {
	benchColdPath(b, true, runtime.GOMAXPROCS(0))
}
