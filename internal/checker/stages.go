package checker

// The staged decide path. Each stage below is one named unit in an
// internal/pipeline pipeline; the checker's decide() is nothing but
// "run the pipeline over a decideState and return its decision". The
// stage order is the efficient execution order, which differs from
// the conceptual order in one place: the front-cache probe runs
// BEFORE bind, because its key is the raw shared-statement identity
// plus rendered session/args — a hit skips binding and translation
// entirely. DESIGN.md §9 documents the stages and their metric names.
//
// Pipeline invariants the stages maintain:
//
//   - st.d always holds the final Decision once the pipeline stops
//     (Done, Abort, or running off the end after "verdict").
//   - Abort is used only for context cancellation; an aborted
//     decision is never cached (the search did not finish, so a
//     template would poison future decisions).
//   - Decision.Tier is set only on the way out of a cache probe —
//     cached entries themselves store an empty Tier.

import (
	"context"
	"fmt"

	"repro/internal/cq"
	"repro/internal/pipeline"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// decideState carries one decision through the staged pipeline.
type decideState struct {
	c    *Checker
	snap *polSnapshot

	// Inputs.
	sel     *sqlparser.SelectStmt
	args    sqlparser.Args
	session map[string]sqlvalue.Value
	tr      *trace.Trace

	// Front-cache keying (stage "front").
	useFront bool
	fkey     frontKey

	// Parameter-generic query templates (stage "bind").
	tpl []*cq.Query

	// Per-disjunct variable-occurrence censuses, memoized lazily so
	// the history-free probe and the cover stage share one
	// computation per decision (and cache hits never pay it).
	occ []map[string]varOcc

	// Session-generalized trace facts (stage "facts").
	facts    []cq.Fact
	factKeys []string

	// Full template-cache key (stage "template").
	key string

	// The verdict.
	d Decision
}

// newDecidePipeline assembles the decide pipeline over the checker's
// metrics registry. Stage metric names are
// pipeline.decide.<stage>.{runs,done,micros}.
func (c *Checker) newDecidePipeline() *pipeline.Pipeline[*decideState] {
	return pipeline.New("decide", c.reg,
		pipeline.Stage[*decideState]{Name: "front", Run: stageFront},
		pipeline.Stage[*decideState]{Name: "bind", Run: stageBind},
		pipeline.Stage[*decideState]{Name: "histfree", Run: stageHistFree},
		pipeline.Stage[*decideState]{Name: "facts", Run: stageFacts},
		pipeline.Stage[*decideState]{Name: "template", Run: stageTemplate},
		pipeline.Stage[*decideState]{Name: "cover", Run: stageCover},
		pipeline.Stage[*decideState]{Name: "verdict", Run: stageVerdict},
	)
}

// occs returns the per-disjunct occurrence censuses for the bound
// templates, computing them on first use. Warm decisions (front,
// histfree, template hits) never reach a caller of this.
func (st *decideState) occs() []map[string]varOcc {
	if st.occ == nil {
		st.occ = make([]map[string]varOcc, len(st.tpl))
		for i, q := range st.tpl {
			st.occ[i] = countVarOccurrences(q)
		}
	}
	return st.occ
}

// decide runs the staged pipeline for one check.
func (c *Checker) decide(ctx context.Context, sel *sqlparser.SelectStmt, args sqlparser.Args, session map[string]sqlvalue.Value, tr *trace.Trace) Decision {
	st := &decideState{
		c:       c,
		snap:    c.snap.Load(),
		sel:     sel,
		args:    args,
		session: session,
		tr:      tr,
	}
	c.pipe.Run(ctx, st)
	return st.d
}

// stageFront probes the statement-identity front cache: an identical
// concrete check (same shared statement, principal, and arguments)
// whose decision is known to be trace-independent skips binding,
// translation, and template rendering entirely.
func stageFront(ctx context.Context, st *decideState) pipeline.Outcome {
	c := st.c
	if ctx.Err() != nil {
		st.d = canceledDecision(ctx)
		return pipeline.Abort
	}
	st.useFront = c.opts.UseCache && c.opts.UseHistory
	if !st.useFront {
		return pipeline.Continue
	}
	st.fkey = frontKey{fp: st.snap.fp, sel: st.sel, sig: sessionSig(st.session) + "\x00" + argsSig(st.args)}
	if d, ok := c.frontGet(st.fkey); ok {
		d.FromCache = true
		d.Tier = TierFront
		st.d = d
		c.mFrontHit.Inc()
		return pipeline.Done
	}
	c.mFrontMiss.Inc()
	return pipeline.Continue
}

// stageBind normalizes the query into parameter-generic conjunctive
// templates: session attributes merge into the named arguments
// (?MyUId in an application query means the current principal), the
// statement is bound and translated to unions of conjunctive queries,
// and constants equal to session attributes are abstracted into
// parameters (the decision template). Bind or translation failures
// block conservatively and complete the pipeline.
func stageBind(ctx context.Context, st *decideState) pipeline.Outcome {
	c := st.c
	args := st.args
	if len(st.session) > 0 {
		merged := make(map[string]sqlvalue.Value, len(args.Named)+len(st.session))
		for k, v := range st.session {
			merged[k] = v
		}
		for k, v := range args.Named {
			merged[k] = v
		}
		args = sqlparser.Args{Positional: args.Positional, Named: merged}
	}
	bound, err := sqlparser.Bind(st.sel, args)
	if err != nil {
		st.d = Decision{Reason: fmt.Sprintf("bind: %v", err)}
		return pipeline.Done
	}
	ucq, err := c.tr.TranslateSelect(bound.(*sqlparser.SelectStmt))
	if err != nil {
		st.d = Decision{Reason: fmt.Sprintf("blocked conservatively: %v", err)}
		return pipeline.Done
	}

	generalize := constGeneralizer(st.session)
	st.tpl = make([]*cq.Query, len(ucq))
	for i, q := range ucq {
		st.tpl[i] = q.Substitute(generalize)
		// Substitute only rewrites vars/params; constants need the map
		// form below.
		st.tpl[i] = generalizeConsts(st.tpl[i], st.session)
	}
	return pipeline.Continue
}

// stageHistFree is the history-free tier of the decision cache.
// Coverage is monotone in the trace facts (facts only add atoms a
// homomorphism may land on), so a template allowed with ZERO facts
// stays allowed under every trace. Such decisions cache on (policy,
// template) alone and never churn as the trace grows — without this,
// the full key below changes on every write and view-only-allowed hot
// queries would re-derive from scratch each request. A cached
// history-free DENIAL is only a marker that the template needs facts;
// it is never returned as the answer.
func stageHistFree(ctx context.Context, st *decideState) pipeline.Outcome {
	c := st.c
	if !(c.opts.UseCache && c.opts.UseHistory && st.tr != nil) {
		return pipeline.Continue
	}
	freeKey := cacheKey(st.snap.fp, st.tpl, nil)
	if d, ok := c.cache.Get(freeKey); ok {
		if d.Allowed {
			if st.useFront {
				c.frontPut(st.fkey, d)
			}
			d.FromCache = true
			d.Tier = TierHistFree
			st.d = d
			c.mHistFreeHit.Inc()
			return pipeline.Done
		}
		return pipeline.Continue // denial marker: the template needs facts
	}
	d := c.coverAll(ctx, st.snap, st.tpl, st.occs(), nil)
	if ctx.Err() != nil {
		st.d = canceledDecision(ctx)
		return pipeline.Abort
	}
	c.cache.Put(freeKey, d)
	if d.Allowed {
		if st.useFront {
			c.frontPut(st.fkey, d)
		}
		st.d = d
		return pipeline.Done
	}
	return pipeline.Continue
}

// stageFacts derives the session-generalized trace facts. factKeys
// carries each generalized fact's canonical string for the cache key,
// so it is rendered once per (fact, session shape), not per check.
func stageFacts(ctx context.Context, st *decideState) pipeline.Outcome {
	c := st.c
	if !c.opts.UseHistory || st.tr == nil {
		return pipeline.Continue
	}
	sig := sessionSig(st.session)
	var raw []cq.Fact
	if c.opts.UseFactCache {
		raw = st.tr.Facts(c.pol.Schema)
	} else {
		raw = trace.FactsUncached(c.pol.Schema, st.tr)
	}
	st.facts = make([]cq.Fact, 0, len(raw))
	st.factKeys = make([]string, 0, len(raw))
	var hits, misses int64
	for i, f := range raw {
		if i&63 == 63 && ctx.Err() != nil {
			st.d = canceledDecision(ctx)
			return pipeline.Abort
		}
		g, hit := c.generalizeFactMemo(f, st.session, sig)
		if hit {
			hits++
		} else if c.opts.UseFactCache {
			misses++
		}
		st.facts = append(st.facts, g.f)
		st.factKeys = append(st.factKeys, g.key)
	}
	// One batched add per check instead of one atomic per fact — long
	// histories would otherwise pay fifty-plus counter bumps here.
	if hits > 0 {
		c.mGenHits.Add(hits)
	}
	if misses > 0 {
		c.mGenMisses.Add(misses)
	}
	return pipeline.Continue
}

// stageTemplate probes the full decision-template cache, keyed by
// (policy, templates, generalized facts).
func stageTemplate(ctx context.Context, st *decideState) pipeline.Outcome {
	c := st.c
	if !c.opts.UseCache {
		return pipeline.Continue
	}
	st.key = cacheKey(st.snap.fp, st.tpl, st.factKeys)
	if d, ok := c.cache.Get(st.key); ok {
		d.FromCache = true
		d.Tier = TierTemplate
		st.d = d
		c.mTemplateHit.Inc()
		return pipeline.Done
	}
	c.mTemplateMiss.Inc()
	return pipeline.Continue
}

// stageCover runs the policy-coverage decision procedure — the
// expensive embedding search — against the facts.
func stageCover(ctx context.Context, st *decideState) pipeline.Outcome {
	st.d = st.c.coverAll(ctx, st.snap, st.tpl, st.occs(), st.facts)
	if ctx.Err() != nil {
		st.d = canceledDecision(ctx)
		return pipeline.Abort
	}
	return pipeline.Continue
}

// stageVerdict finalizes a cold decision: store the template so the
// next identical check hits a cache tier instead.
func stageVerdict(ctx context.Context, st *decideState) pipeline.Outcome {
	if st.c.opts.UseCache {
		st.c.cache.Put(st.key, st.d)
	}
	return pipeline.Continue
}
