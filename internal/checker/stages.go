package checker

// The staged decide path. Each stage below is one named unit in an
// internal/pipeline pipeline; the checker's decide() is nothing but
// "run the pipeline over a decideState and return its decision". The
// stage order is the efficient execution order, which differs from
// the conceptual order in one place: the front-cache probe runs
// BEFORE bind, because its key is the raw shared-statement identity
// plus rendered session/args — a hit skips binding and translation
// entirely. DESIGN.md §9 documents the stages and their metric names.
//
// Pipeline invariants the stages maintain:
//
//   - st.d always holds the final Decision once the pipeline stops
//     (Done, Abort, or running off the end after "verdict").
//   - Abort is used only for context cancellation; an aborted
//     decision is never cached (the search did not finish, so a
//     template would poison future decisions).
//   - Decision.Tier is set only on the way out of a cache probe —
//     cached entries themselves store an empty Tier.

import (
	"context"
	"fmt"
	"slices"
	"sync"

	"repro/internal/cq"
	"repro/internal/pipeline"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// decideState carries one decision through the staged pipeline. States
// are pooled (decidePool): the scratch fields at the bottom keep their
// capacity across decisions, which is what makes the warm tiers
// allocation-free. Nothing in a state may outlive decide() — the
// Decision is copied out by value, cover workers are joined before
// coverAll returns, and the caches copy in what they keep — so
// recycling can never alias into a cached or returned decision.
type decideState struct {
	c *Checker
	// ver is the policy version this decision is pinned to: the active
	// version for Check*, either half's version for CheckShadow. Every
	// cache key the stages build embeds ver.epoch.
	ver *polVersion

	// Inputs.
	sel     *sqlparser.SelectStmt
	args    sqlparser.Args
	session map[string]sqlvalue.Value
	tr      *trace.Trace

	// borrow marks a CheckBorrowed call: cache hits skip the defensive
	// Views copy and hand out the cache-owned slice read-only.
	borrow bool

	// Front-cache keying (stage "front").
	useFront bool
	fkey     frontKey

	// Interned session signature (front key prefix, gen-memo
	// namespace). sigDone distinguishes "not computed" from the empty
	// session's legitimately empty signature.
	sessSig string
	sigDone bool

	// Parameter-generic query templates (stage "bind").
	tpl []*cq.Query

	// Per-disjunct variable-occurrence censuses, memoized lazily so
	// the history-free probe and the cover stage share one
	// computation per decision (and cache hits never pay it).
	occ []map[string]varOcc

	// Session-generalized trace facts (stage "facts").
	facts    []cq.Fact
	factKeys []string

	// Full template-cache key (stage "template"), materialized only on
	// a miss for the verdict's Put; warm probes use keyBuf.
	key string

	// The verdict.
	d Decision

	// Pooled scratch, reused across decisions (capacity survives the
	// pool round-trip; contents never do).
	keyBuf  []byte   // rendered signatures and cache keys
	names   []string // sort scratch for session/arg names
	tplKeys []string // per-disjunct canonical keys, computed once
}

var decidePool = sync.Pool{New: func() any { return new(decideState) }}

// release zeroes the state and returns it to the pool, keeping only
// the scratch capacity. Pointerful scratch is cleared element-wise so
// a pooled idle state never pins a policy snapshot, statement, trace,
// or fact graph in memory.
func (st *decideState) release() {
	clear(st.tpl)
	clear(st.occ)
	clear(st.facts)
	clear(st.factKeys)
	clear(st.tplKeys)
	clear(st.names)
	*st = decideState{
		keyBuf:   st.keyBuf[:0],
		names:    st.names[:0],
		tplKeys:  st.tplKeys[:0],
		tpl:      st.tpl[:0],
		occ:      st.occ[:0],
		facts:    st.facts[:0],
		factKeys: st.factKeys[:0],
	}
	decidePool.Put(st)
}

// sessionSig computes (once) and interns the session signature.
func (st *decideState) sessionSig() string {
	if !st.sigDone {
		var buf []byte
		buf, st.names = appendSessionSig(st.keyBuf[:0], st.names, st.session)
		if len(buf) == 0 {
			st.sessSig = ""
		} else {
			st.sessSig = st.c.intern(buf)
		}
		st.keyBuf = buf[:0]
		st.sigDone = true
	}
	return st.sessSig
}

// newDecidePipeline assembles the decide pipeline over the checker's
// metrics registry. Stage metric names are
// pipeline.decide.<stage>.{runs,done,micros}.
func (c *Checker) newDecidePipeline() *pipeline.Pipeline[*decideState] {
	return pipeline.New("decide", c.reg,
		pipeline.Stage[*decideState]{Name: "front", Run: stageFront},
		pipeline.Stage[*decideState]{Name: "bind", Run: stageBind},
		pipeline.Stage[*decideState]{Name: "histfree", Run: stageHistFree},
		pipeline.Stage[*decideState]{Name: "facts", Run: stageFacts},
		pipeline.Stage[*decideState]{Name: "template", Run: stageTemplate},
		pipeline.Stage[*decideState]{Name: "cover", Run: stageCover},
		pipeline.Stage[*decideState]{Name: "verdict", Run: stageVerdict},
	)
}

// occs returns the per-disjunct occurrence censuses for the bound
// templates, computing them on first use. Warm decisions (front,
// histfree, template hits) never reach a caller of this.
func (st *decideState) occs() []map[string]varOcc {
	if len(st.occ) != len(st.tpl) {
		st.occ = st.occ[:0]
		for _, q := range st.tpl {
			st.occ = append(st.occ, countVarOccurrences(q))
		}
	}
	return st.occ
}

// tplCanonKeys returns the per-disjunct canonical keys, computed once
// per decision (the history-free and full template probes share them).
func (st *decideState) tplCanonKeys() []string {
	if len(st.tplKeys) != len(st.tpl) {
		st.tplKeys = st.tplKeys[:0]
		for _, q := range st.tpl {
			st.tplKeys = append(st.tplKeys, q.CanonicalKey())
		}
	}
	return st.tplKeys
}

// decide runs the staged pipeline for one check under the current
// active policy version, on a pooled state.
func (c *Checker) decide(ctx context.Context, sel *sqlparser.SelectStmt, args sqlparser.Args, session map[string]sqlvalue.Value, tr *trace.Trace, borrow bool) Decision {
	return c.decideVersion(ctx, c.vers.Load().active, sel, args, session, tr, borrow)
}

// decideVersion runs the staged pipeline pinned to one policy
// version. CheckShadow calls it twice on the same inputs — once with
// the active version, once with the candidate — so both halves run
// the identical pipeline and warm the same caches under their own
// epochs.
func (c *Checker) decideVersion(ctx context.Context, ver *polVersion, sel *sqlparser.SelectStmt, args sqlparser.Args, session map[string]sqlvalue.Value, tr *trace.Trace, borrow bool) Decision {
	st := decidePool.Get().(*decideState)
	st.c = c
	st.ver = ver
	st.sel = sel
	st.args = args
	st.session = session
	st.tr = tr
	st.borrow = borrow
	c.pipe.Run(ctx, st)
	d := st.d
	d.Epoch = ver.epoch
	st.release()
	return d
}

// stageFront probes the statement-identity front cache: an identical
// concrete check (same shared statement, principal, and arguments)
// whose decision is known to be trace-independent skips binding,
// translation, and template rendering entirely.
func stageFront(ctx context.Context, st *decideState) pipeline.Outcome {
	c := st.c
	if ctx.Err() != nil {
		st.d = canceledDecision(ctx)
		return pipeline.Abort
	}
	st.useFront = c.opts.UseCache && c.opts.UseHistory
	if !st.useFront {
		return pipeline.Continue
	}
	// Render session + args signatures into pooled scratch and intern
	// the result: on a warm key this is byte appends into retained
	// capacity plus a no-copy map lookup — no allocation.
	sess := st.sessionSig()
	buf := append(st.keyBuf[:0], sess...)
	buf = append(buf, 0)
	buf, st.names = appendArgsSig(buf, st.names, st.args)
	sig := c.intern(buf)
	st.keyBuf = buf[:0]
	st.fkey = frontKey{epoch: st.ver.epoch, sel: st.sel, sig: sig}
	if d, ok := c.frontGet(st.fkey); ok {
		if !st.borrow && len(d.Views) > 0 {
			// The front cache owns its Views; the safe API hands the
			// caller a private copy.
			d.Views = append([]string(nil), d.Views...)
		}
		d.FromCache = true
		d.Tier = TierFront
		st.d = d
		c.mFrontHit.Inc()
		return pipeline.Done
	}
	c.mFrontMiss.Inc()
	return pipeline.Continue
}

// stageBind normalizes the query into parameter-generic conjunctive
// templates: session attributes merge into the named arguments
// (?MyUId in an application query means the current principal), the
// statement is bound and translated to unions of conjunctive queries,
// and constants equal to session attributes are abstracted into
// parameters (the decision template). Bind or translation failures
// block conservatively and complete the pipeline.
func stageBind(ctx context.Context, st *decideState) pipeline.Outcome {
	c := st.c
	args := st.args
	if len(st.session) > 0 {
		merged := make(map[string]sqlvalue.Value, len(args.Named)+len(st.session))
		for k, v := range st.session {
			merged[k] = v
		}
		for k, v := range args.Named {
			merged[k] = v
		}
		args = sqlparser.Args{Positional: args.Positional, Named: merged}
	}
	bound, err := sqlparser.Bind(st.sel, args)
	if err != nil {
		st.d = Decision{Reason: fmt.Sprintf("bind: %v", err)}
		return pipeline.Done
	}
	ucq, err := c.tr.TranslateSelect(bound.(*sqlparser.SelectStmt))
	if err != nil {
		st.d = Decision{Reason: fmt.Sprintf("blocked conservatively: %v", err)}
		return pipeline.Done
	}

	generalize := constGeneralizer(st.session)
	st.tpl = st.tpl[:0]
	for _, q := range ucq {
		t := q.Substitute(generalize)
		// Substitute only rewrites vars/params; constants need the map
		// form below.
		st.tpl = append(st.tpl, generalizeConsts(t, st.session))
	}
	return pipeline.Continue
}

// stageHistFree is the history-free tier of the decision cache.
// Coverage is monotone in the trace facts (facts only add atoms a
// homomorphism may land on), so a template allowed with ZERO facts
// stays allowed under every trace. Such decisions cache on (policy,
// template) alone and never churn as the trace grows — without this,
// the full key below changes on every write and view-only-allowed hot
// queries would re-derive from scratch each request. A cached
// history-free DENIAL is only a marker that the template needs facts;
// it is never returned as the answer.
func stageHistFree(ctx context.Context, st *decideState) pipeline.Outcome {
	c := st.c
	if !(c.opts.UseCache && c.opts.UseHistory && st.tr != nil) {
		return pipeline.Continue
	}
	st.keyBuf = appendCacheKey(st.keyBuf[:0], st.ver.epoch, st.tplCanonKeys(), nil)
	if d, ok := c.cache.GetBytes(st.keyBuf, !st.borrow); ok {
		if d.Allowed {
			if st.useFront {
				c.frontPut(st.fkey, d)
			}
			d.FromCache = true
			d.Tier = TierHistFree
			st.d = d
			c.mHistFreeHit.Inc()
			return pipeline.Done
		}
		return pipeline.Continue // denial marker: the template needs facts
	}
	d := c.coverAll(ctx, st.ver.comp, st.tpl, st.occs(), nil)
	if ctx.Err() != nil {
		st.d = canceledDecision(ctx)
		return pipeline.Abort
	}
	c.cache.Put(string(st.keyBuf), d)
	if d.Allowed {
		if st.useFront {
			c.frontPut(st.fkey, d)
		}
		st.d = d
		return pipeline.Done
	}
	return pipeline.Continue
}

// stageFacts derives the session-generalized trace facts. factKeys
// carries each generalized fact's canonical string for the cache key,
// so it is rendered once per (fact, session shape), not per check.
func stageFacts(ctx context.Context, st *decideState) pipeline.Outcome {
	c := st.c
	if !c.opts.UseHistory || st.tr == nil {
		return pipeline.Continue
	}
	sig := st.sessionSig()
	var raw []cq.Fact
	var rawKeys []string
	if c.opts.UseFactCache {
		// Shared snapshot plus the canonical string of each raw fact,
		// rendered once at derivation — the memo keys below cost two
		// map lookups per fact, no rendering.
		raw, rawKeys = st.tr.FactsKeyed(st.ver.pol.Schema)
	} else {
		raw = trace.FactsUncached(st.ver.pol.Schema, st.tr)
	}
	st.facts = st.facts[:0]
	st.factKeys = st.factKeys[:0]
	var hits, misses int64
	for i, f := range raw {
		if i&63 == 63 && ctx.Err() != nil {
			st.d = canceledDecision(ctx)
			return pipeline.Abort
		}
		var rk string
		if rawKeys != nil {
			rk = rawKeys[i]
		}
		g, hit := c.generalizeFactMemo(f, rk, st.session, sig)
		if hit {
			hits++
		} else if c.opts.UseFactCache {
			misses++
		}
		st.facts = append(st.facts, g.f)
		st.factKeys = append(st.factKeys, g.key)
	}
	// One batched add per check instead of one atomic per fact — long
	// histories would otherwise pay fifty-plus counter bumps here.
	if hits > 0 {
		c.mGenHits.Add(hits)
	}
	if misses > 0 {
		c.mGenMisses.Add(misses)
	}
	return pipeline.Continue
}

// stageTemplate probes the full decision-template cache, keyed by
// (policy, templates, generalized facts).
func stageTemplate(ctx context.Context, st *decideState) pipeline.Outcome {
	c := st.c
	if !c.opts.UseCache {
		return pipeline.Continue
	}
	// factKeys is per-decision scratch whose order nothing else needs
	// (st.facts carries the facts for the cover stage), so sort it in
	// place — the key requires a canonical order, not this one.
	slices.Sort(st.factKeys)
	st.keyBuf = appendCacheKey(st.keyBuf[:0], st.ver.epoch, st.tplCanonKeys(), st.factKeys)
	if d, ok := c.cache.GetBytes(st.keyBuf, !st.borrow); ok {
		d.FromCache = true
		d.Tier = TierTemplate
		st.d = d
		c.mTemplateHit.Inc()
		return pipeline.Done
	}
	// Miss: materialize the key once for the verdict's Put.
	st.key = string(st.keyBuf)
	c.mTemplateMiss.Inc()
	return pipeline.Continue
}

// stageCover runs the policy-coverage decision procedure — the
// expensive embedding search — against the facts.
func stageCover(ctx context.Context, st *decideState) pipeline.Outcome {
	st.d = st.c.coverAll(ctx, st.ver.comp, st.tpl, st.occs(), st.facts)
	if ctx.Err() != nil {
		st.d = canceledDecision(ctx)
		return pipeline.Abort
	}
	return pipeline.Continue
}

// stageVerdict finalizes a cold decision: store the template so the
// next identical check hits a cache tier instead.
func stageVerdict(ctx context.Context, st *decideState) pipeline.Outcome {
	if st.c.opts.UseCache {
		st.c.cache.Put(st.key, st.d)
	}
	return pipeline.Continue
}
