package checker

// The policy compiler. A policy snapshot is compiled ONCE, when it is
// published (NewWithOptions / ResetCache), into an indexed plan the
// cold coverage search runs against — instead of re-deriving per-view
// metadata on every decision:
//
//   - relation symbols are interned to dense small-int ids, so the
//     hot membership tests in candidate pruning are int compares and
//     bitmask ops rather than string compares;
//   - a per-relation inverted index (byRel) maps each interned
//     relation to the view disjuncts whose bodies mention it, so
//     coverDisjunct only considers views sharing a relation with the
//     query instead of linearly scanning the whole policy;
//   - every view carries a bitset signature over its referenced
//     relations (relMask) plus the exact sorted id set (rels), so
//     views that mention a relation the embedding target lacks are
//     pruned before any homomorphism search — such a view has no hom
//     into the target at all;
//   - the view-head variable set is precomputed, replacing the map
//     the per-position visibility rule used to rebuild on every
//     atomCoverOK call.
//
// Duplicate disjuncts — same view name and same canonical form — are
// deduped at compile time; they can only produce identical candidate
// embeddings.

import (
	"sort"

	"repro/internal/cq"
)

// symTab interns relation names to dense small-int ids.
type symTab struct {
	ids   map[string]int
	names []string
}

func (s *symTab) intern(name string) int {
	if id, ok := s.ids[name]; ok {
		return id
	}
	id := len(s.names)
	s.ids[name] = id
	s.names = append(s.names, name)
	return id
}

// id returns the interned id for a relation name; ok is false for
// relations no policy view mentions (such a relation has no candidate
// views at all).
func (s *symTab) id(name string) (int, bool) {
	id, ok := s.ids[name]
	return id, ok
}

// relBit is the bitset signature bit for an interned relation id.
// Ids past 63 alias (a bloom-style signature): the mask test may then
// pass for a view the exact rels test rejects, never the reverse.
func relBit(id int) uint64 { return 1 << (uint(id) % 64) }

// compiledView is one policy-view disjunct with its precomputed
// search metadata.
type compiledView struct {
	q *cq.Query
	// headVars is the view's head variable set (the per-position
	// visibility rule consults it for every covered atom position).
	headVars map[string]bool
	// rels is the sorted set of interned relations the body mentions.
	rels []int
	// relMask is the bitset signature over rels.
	relMask uint64
}

// compiledPolicy is the immutable indexed plan for one policy
// snapshot.
type compiledPolicy struct {
	fp    string
	syms  symTab
	views []compiledView
	// byRel[id] lists (ascending) the views whose bodies mention the
	// relation with that interned id.
	byRel [][]int
}

// compilePolicy builds the indexed plan from a policy's view
// disjuncts. It never consults the schema: a view over a relation the
// schema does not know simply indexes under a symbol no translated
// query will ever look up.
func compilePolicy(fp string, disjuncts []*cq.Query) *compiledPolicy {
	comp := &compiledPolicy{fp: fp, syms: symTab{ids: make(map[string]int)}}
	seen := make(map[string]bool, len(disjuncts))
	for _, q := range disjuncts {
		key := q.Name + "\x00" + q.CanonicalKey()
		if seen[key] {
			continue // duplicate disjunct: identical candidates
		}
		seen[key] = true
		v := compiledView{q: q, headVars: make(map[string]bool, len(q.Head))}
		for _, t := range q.Head {
			if t.IsVar() {
				v.headVars[t.Var] = true
			}
		}
		for _, a := range q.Atoms {
			id := comp.syms.intern(a.Table)
			if !containsInt(v.rels, id) {
				v.rels = append(v.rels, id)
				v.relMask |= relBit(id)
			}
		}
		sort.Ints(v.rels)
		comp.views = append(comp.views, v)
	}
	comp.byRel = make([][]int, len(comp.syms.names))
	for vi := range comp.views {
		for _, id := range comp.views[vi].rels {
			comp.byRel[id] = append(comp.byRel[id], vi)
		}
	}
	return comp
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// subsetSorted reports sub ⊆ super for sorted int slices.
func subsetSorted(sub, super []int) bool {
	j := 0
	for _, x := range sub {
		for j < len(super) && super[j] < x {
			j++
		}
		if j == len(super) || super[j] != x {
			return false
		}
	}
	return true
}

// factIndex buckets one decision's generalized trace facts by
// relation, so the vacuity and fact-covered scans touch only
// same-table facts, and carries the facts' relation signature for
// view pruning. It is built once per coverAll call and shared by
// every disjunct.
type factIndex struct {
	pos map[string][]cq.Fact
	neg map[string][]cq.Fact
	// mask and rels cover the interned relations appearing among the
	// positive facts (fact relations unknown to the policy cannot
	// help any view embed, so they are omitted).
	mask uint64
	rels []int
}

var emptyFactIndex = &factIndex{}

func (comp *compiledPolicy) indexFacts(facts []cq.Fact) *factIndex {
	if len(facts) == 0 {
		return emptyFactIndex
	}
	fi := &factIndex{pos: make(map[string][]cq.Fact), neg: make(map[string][]cq.Fact)}
	for _, f := range facts {
		if f.Negated {
			fi.neg[f.Atom.Table] = append(fi.neg[f.Atom.Table], f)
			continue
		}
		fi.pos[f.Atom.Table] = append(fi.pos[f.Atom.Table], f)
		if id, ok := comp.syms.id(f.Atom.Table); ok && !containsInt(fi.rels, id) {
			fi.rels = append(fi.rels, id)
			fi.mask |= relBit(id)
		}
	}
	sort.Ints(fi.rels)
	return fi
}
