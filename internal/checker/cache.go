package checker

import (
	"sync"
	"sync/atomic"
)

// decisionCache is a sharded, bounded, approximately-LRU cache of
// decision templates. Reads take only a shard RLock plus one atomic
// store, so concurrent sessions hitting warm templates never contend
// on a single mutex; writes lock one shard. Eviction is sampled LRU
// (Redis-style): when a shard is full, a handful of entries are
// sampled and the least recently used one is dropped — bounded memory
// without a global list to serialize on.
type decisionCache struct {
	perShard int           // capacity per shard
	clock    atomic.Uint64 // global recency counter
	shards   [cacheShards]cacheShard
}

const (
	cacheShards        = 16
	evictionSampleSize = 5
)

type cacheShard struct {
	mu sync.RWMutex
	m  map[string]*cacheEntry
}

type cacheEntry struct {
	d    Decision      // Views copied on the way in and out; see Get/Put
	used atomic.Uint64 // last-touch tick from decisionCache.clock
}

// newDecisionCache builds a cache holding at most total entries
// overall (rounded up to a multiple of the shard count).
func newDecisionCache(total int) *decisionCache {
	per := (total + cacheShards - 1) / cacheShards
	if per < 1 {
		per = 1
	}
	c := &decisionCache{perShard: per}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*cacheEntry)
	}
	return c
}

// shard picks the shard for a key (FNV-1a).
func (c *decisionCache) shard(key string) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &c.shards[h%cacheShards]
}

// shardBytes is shard for a key still held as scratch bytes (same
// FNV-1a, so string and byte probes of one key agree).
func (c *decisionCache) shardBytes(key []byte) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &c.shards[h%cacheShards]
}

// Get returns a cached decision. The Views slice of the result is a
// defensive copy: cached templates are shared across principals, and
// a caller mutating d.Views must not corrupt later hits.
func (c *decisionCache) Get(key string) (Decision, bool) {
	return c.hit(c.shard(key), key, true)
}

// GetBytes probes with the key still in a scratch buffer — the map
// lookup uses the compiler's no-copy []byte→string indexing, so a warm
// probe allocates nothing. copyViews false returns the cache-owned
// Views slice (borrowed: read-only, stable until ResetCache).
func (c *decisionCache) GetBytes(key []byte, copyViews bool) (Decision, bool) {
	sh := c.shardBytes(key)
	sh.mu.RLock()
	e, ok := sh.m[string(key)]
	sh.mu.RUnlock()
	return c.finish(e, ok, copyViews)
}

func (c *decisionCache) hit(sh *cacheShard, key string, copyViews bool) (Decision, bool) {
	sh.mu.RLock()
	e, ok := sh.m[key]
	sh.mu.RUnlock()
	return c.finish(e, ok, copyViews)
}

func (c *decisionCache) finish(e *cacheEntry, ok bool, copyViews bool) (Decision, bool) {
	if !ok {
		return Decision{}, false
	}
	e.used.Store(c.clock.Add(1))
	d := e.d
	if copyViews && len(d.Views) > 0 {
		d.Views = append([]string(nil), d.Views...)
	}
	return d, true
}

// Put stores a decision template, copying its Views so the caller's
// slice stays private, and evicts a sampled-LRU victim if the shard
// is at capacity.
func (c *decisionCache) Put(key string, d Decision) {
	if len(d.Views) > 0 {
		d.Views = append([]string(nil), d.Views...)
	}
	sh := c.shard(key)
	sh.mu.Lock()
	if _, exists := sh.m[key]; !exists && len(sh.m) >= c.perShard {
		// Sample a few entries (map iteration order is pseudorandom)
		// and drop the least recently used.
		var victim string
		var oldest uint64
		n := 0
		for k, e := range sh.m {
			if u := e.used.Load(); n == 0 || u < oldest {
				victim, oldest = k, u
			}
			n++
			if n >= evictionSampleSize {
				break
			}
		}
		delete(sh.m, victim)
	}
	e := &cacheEntry{d: d}
	e.used.Store(c.clock.Add(1))
	sh.m[key] = e
	sh.mu.Unlock()
}

// Len reports the number of cached templates.
func (c *decisionCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}
