package checker

import (
	"context"
	"testing"

	"repro/internal/policy"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// wideCalendarPolicy is the calendar policy plus an all-events view —
// strictly looser than calendarPolicy, so staging one against the
// other produces predictable divergences.
func wideCalendarPolicy(t testing.TB, s *policy.Policy) *policy.Policy {
	t.Helper()
	return policy.MustNew(s.Schema, map[string]string{
		"V1":         "SELECT EId FROM Attendance WHERE UId = ?MyUId",
		"V2":         "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
		"VAllEvents": "SELECT * FROM Events",
	})
}

// narrowCalendarPolicy drops V2 — strictly tighter than calendarPolicy.
func narrowCalendarPolicy(t testing.TB, s *policy.Policy) *policy.Policy {
	t.Helper()
	return policy.MustNew(s.Schema, map[string]string{
		"V1": "SELECT EId FROM Attendance WHERE UId = ?MyUId",
	})
}

// The ISSUE's regression case: a ResetCache (republish) whose compiled
// fingerprint is unchanged must keep the epoch, so front-cache hits
// keep accumulating across it instead of every warm entry dying with
// an epoch bump.
func TestRepublishSameFingerprintKeepsFrontCacheWarm(t *testing.T) {
	c := New(calendarPolicy(t))
	const q = "SELECT EId FROM Attendance WHERE UId = 1"
	tr := &trace.Trace{} // front tier only engages for trace-carrying checks
	d0 := mustCheck(t, c, q, session(1), tr)
	d1 := mustCheck(t, c, q, session(1), tr)
	if d1.Tier != TierFront {
		t.Fatalf("second identical check should be a front hit, got tier %q", d1.Tier)
	}
	hitsBefore := c.mFrontHit.Value()
	if hitsBefore == 0 {
		t.Fatal("front-hit counter did not rise on the warm check")
	}

	// Republish the SAME policy: fingerprint unchanged, epoch kept.
	c.ResetCache()

	active, _ := c.Versions()
	if active.Epoch != d0.Epoch {
		t.Fatalf("fingerprint-identical republish bumped the epoch: %d -> %d", d0.Epoch, active.Epoch)
	}
	d2 := mustCheck(t, c, q, session(1), tr)
	if d2.Tier != TierFront {
		t.Fatalf("front cache went cold across a no-op republish: tier %q", d2.Tier)
	}
	if got := c.mFrontHit.Value(); got <= hitsBefore {
		t.Fatalf("front-hit counter stopped rising across republish: %d -> %d", hitsBefore, got)
	}
	if d2.Epoch != d0.Epoch {
		t.Fatalf("decision epoch changed across a no-op republish: %d -> %d", d0.Epoch, d2.Epoch)
	}
}

func TestRepublishChangedFingerprintBumpsEpochAndInvalidates(t *testing.T) {
	p := calendarPolicy(t)
	c := New(p)
	const q = "SELECT EId FROM Attendance WHERE UId = 1"
	tr := &trace.Trace{}
	d0 := mustCheck(t, c, q, session(1), tr)
	mustCheck(t, c, q, session(1), tr) // warm the front tier

	if err := p.Add("VAllEvents", "SELECT * FROM Events"); err != nil {
		t.Fatal(err)
	}
	c.ResetCache()

	active, _ := c.Versions()
	if active.Epoch <= d0.Epoch {
		t.Fatalf("changed fingerprint must bump the epoch: %d -> %d", d0.Epoch, active.Epoch)
	}
	d := mustCheck(t, c, q, session(1), tr)
	if d.Tier == TierFront {
		t.Fatal("epoch bump must invalidate front-cache entries keyed under the old epoch")
	}
	if d.Epoch != active.Epoch {
		t.Fatalf("decision epoch %d != active epoch %d", d.Epoch, active.Epoch)
	}
}

func TestShadowDivergenceTighten(t *testing.T) {
	p := calendarPolicy(t)
	c := New(p)
	if _, err := c.StagePolicy(narrowCalendarPolicy(t, p)); err != nil {
		t.Fatal(err)
	}
	// V2 allows the join under the active policy; the narrow candidate
	// (V1 only) blocks it.
	sel := sqlparser.MustParseSelect("SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 1")
	sd, staged := c.CheckShadow(context.Background(), sel, sqlparser.NoArgs, session(1), nil)
	if !staged {
		t.Fatal("candidate is staged; CheckShadow must report it")
	}
	if !sd.Active.Allowed || sd.Shadow.Allowed {
		t.Fatalf("want active allow / shadow block, got active=%v shadow=%v", sd.Active.Allowed, sd.Shadow.Allowed)
	}
	if !sd.Diverged || sd.Kind != DivergeTighten {
		t.Fatalf("want tighten divergence, got diverged=%v kind=%q", sd.Diverged, sd.Kind)
	}
}

func TestShadowDivergenceLoosen(t *testing.T) {
	p := calendarPolicy(t)
	c := New(p)
	if _, err := c.StagePolicy(wideCalendarPolicy(t, p)); err != nil {
		t.Fatal(err)
	}
	sel := sqlparser.MustParseSelect("SELECT Title FROM Events")
	sd, staged := c.CheckShadow(context.Background(), sel, sqlparser.NoArgs, session(1), nil)
	if !staged {
		t.Fatal("candidate is staged; CheckShadow must report it")
	}
	if sd.Active.Allowed || !sd.Shadow.Allowed {
		t.Fatalf("want active block / shadow allow, got active=%v shadow=%v", sd.Active.Allowed, sd.Shadow.Allowed)
	}
	if !sd.Diverged || sd.Kind != DivergeLoosen {
		t.Fatalf("want loosen divergence, got diverged=%v kind=%q", sd.Diverged, sd.Kind)
	}
}

func TestShadowAgreementNoDivergence(t *testing.T) {
	p := calendarPolicy(t)
	c := New(p)
	if _, err := c.StagePolicy(wideCalendarPolicy(t, p)); err != nil {
		t.Fatal(err)
	}
	sel := sqlparser.MustParseSelect("SELECT EId FROM Attendance WHERE UId = 1")
	sd, _ := c.CheckShadow(context.Background(), sel, sqlparser.NoArgs, session(1), nil)
	if !sd.Active.Allowed || !sd.Shadow.Allowed || sd.Diverged || sd.Kind != "" {
		t.Fatalf("both policies allow; no divergence expected: %+v", sd)
	}
}

// Epoch tagging: the two halves of a dual-decide must carry their own
// version's epoch, and they must differ.
func TestShadowEpochTagging(t *testing.T) {
	p := calendarPolicy(t)
	c := New(p)
	cand, err := c.StagePolicy(wideCalendarPolicy(t, p))
	if err != nil {
		t.Fatal(err)
	}
	active, _ := c.Versions()
	sel := sqlparser.MustParseSelect("SELECT EId FROM Attendance WHERE UId = 1")
	sd, _ := c.CheckShadow(context.Background(), sel, sqlparser.NoArgs, session(1), nil)
	if sd.Active.Epoch != active.Epoch {
		t.Fatalf("active verdict epoch %d != active version epoch %d", sd.Active.Epoch, active.Epoch)
	}
	if sd.Shadow.Epoch != cand.Epoch {
		t.Fatalf("shadow verdict epoch %d != candidate epoch %d", sd.Shadow.Epoch, cand.Epoch)
	}
	if sd.Active.Epoch == sd.Shadow.Epoch {
		t.Fatal("active and candidate must decide under distinct epochs")
	}
}

// Promote keeps the candidate's epoch, so cache entries warmed by
// shadow decisions serve enforcement immediately after the swap.
func TestPromoteServesShadowWarmedCache(t *testing.T) {
	p := calendarPolicy(t)
	c := New(p)
	cand, err := c.StagePolicy(wideCalendarPolicy(t, p))
	if err != nil {
		t.Fatal(err)
	}
	// Dual-decide with a trace so the candidate's front entry is warmed
	// (the front tier only engages for trace-carrying checks).
	tr := &trace.Trace{}
	sel := sqlparser.MustParseSelect("SELECT EId FROM Attendance WHERE UId = 1")
	c.CheckShadow(context.Background(), sel, sqlparser.NoArgs, session(1), tr)
	c.CheckShadow(context.Background(), sel, sqlparser.NoArgs, session(1), tr)

	pv, err := c.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if pv.Epoch != cand.Epoch {
		t.Fatalf("promote must keep the candidate epoch: staged %d, promoted %d", cand.Epoch, pv.Epoch)
	}
	if c.ShadowStaged() {
		t.Fatal("promote must clear the candidate slot")
	}
	d := c.Check(context.Background(), sel, sqlparser.NoArgs, session(1), tr)
	if d.Tier != TierFront {
		t.Fatalf("post-promote check should hit the shadow-warmed front tier, got %q", d.Tier)
	}
	if d.Epoch != pv.Epoch {
		t.Fatalf("post-promote decision epoch %d != promoted epoch %d", d.Epoch, pv.Epoch)
	}
}

func TestRollbackRestoresSingleVersion(t *testing.T) {
	p := calendarPolicy(t)
	c := New(p)
	before, _ := c.Versions()
	if _, err := c.StagePolicy(wideCalendarPolicy(t, p)); err != nil {
		t.Fatal(err)
	}
	pv, err := c.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if pv.Epoch == before.Epoch {
		t.Fatal("rollback should report the discarded candidate, not the active version")
	}
	after, candAfter := c.Versions()
	if after.Epoch != before.Epoch || candAfter != nil {
		t.Fatalf("rollback must restore the pre-stage table: %+v candidate=%v", after, candAfter)
	}
	// Blocked again: the wide candidate is gone.
	d := mustCheck(t, c, "SELECT Title FROM Events", session(1), nil)
	if d.Allowed {
		t.Fatal("rolled-back candidate must not influence decisions")
	}
}

func TestLifecycleErrors(t *testing.T) {
	p := calendarPolicy(t)
	c := New(p)
	if _, err := c.Promote(); err != ErrNoCandidate {
		t.Fatalf("promote without candidate: want ErrNoCandidate, got %v", err)
	}
	if _, err := c.Rollback(); err != ErrNoCandidate {
		t.Fatalf("rollback without candidate: want ErrNoCandidate, got %v", err)
	}
	other := calendarPolicy(t) // distinct *schema.Schema instance
	if _, err := c.StagePolicy(other); err == nil {
		t.Fatal("staging a policy over a different schema object must be rejected")
	}
	sel := sqlparser.MustParseSelect("SELECT EId FROM Attendance WHERE UId = 1")
	if sd, staged := c.CheckShadow(context.Background(), sel, sqlparser.NoArgs, session(1), nil); staged {
		t.Fatal("CheckShadow without a candidate must report staged=false")
	} else if !sd.Active.Allowed {
		t.Fatal("active half must still decide when nothing is staged")
	}
}

// A history-dependent decision must dual-decide against one shared
// trace without the halves corrupting each other's fact caches.
func TestShadowWithHistoryTrace(t *testing.T) {
	p := calendarPolicy(t)
	c := New(p)
	if _, err := c.StagePolicy(narrowCalendarPolicy(t, p)); err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{}
	q1 := sqlparser.MustParseSelect("SELECT 1 FROM Attendance WHERE UId=1 AND EId=2")
	tr.Append(trace.Entry{
		SQL: q1.SQL(), Stmt: q1, Args: sqlparser.NoArgs,
		Columns: []string{"1"},
		Rows:    [][]sqlvalue.Value{{sqlvalue.NewInt(1)}},
	})
	// Example 2.1's Q2: allowed under active (V2 + history), blocked by
	// the V1-only candidate.
	sel := sqlparser.MustParseSelect("SELECT * FROM Events WHERE EId=2")
	sd, staged := c.CheckShadow(context.Background(), sel, sqlparser.NoArgs, session(1), tr)
	if !staged {
		t.Fatal("candidate is staged")
	}
	if !sd.Active.Allowed {
		t.Fatalf("active policy allows Q2 with history: %s", sd.Active.Reason)
	}
	if sd.Shadow.Allowed {
		t.Fatal("V1-only candidate must block Q2")
	}
	if sd.Kind != DivergeTighten {
		t.Fatalf("want tighten, got %q", sd.Kind)
	}
}
