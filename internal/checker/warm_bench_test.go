package checker

import (
	"context"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// The warm-tier benchmarks below are the PR's allocation contract: the
// proxy-facing decide path (parse-cache hit + CheckBorrowed) must be
// allocation-free on a front-cache hit, and the deeper warm tiers must
// stay inside pinned budgets. TestWarmDecideAllocBudget turns the
// -benchmem numbers into a CI gate.

const warmSQL = "SELECT EId FROM Attendance WHERE UId = ?"

// warmChecker returns a checker whose caches are primed so that the
// named tier answers warmSQL for principal 1.
func warmChecker(tb testing.TB) (*Checker, *trace.Trace) {
	tb.Helper()
	c := New(calendarPolicy(tb))
	tr := &trace.Trace{}
	q1 := sqlparser.MustParseSelect("SELECT 1 FROM Attendance WHERE UId=1 AND EId=2")
	tr.Append(trace.Entry{
		SQL: q1.SQL(), Stmt: q1, Args: sqlparser.NoArgs,
		Columns: []string{"1"},
		Rows:    [][]sqlvalue.Value{{sqlvalue.NewInt(1)}},
	})
	return c, tr
}

// BenchmarkWarmDecideFront measures the statement-identity front-cache
// hit through the full proxy-facing path (cached parse + borrowed
// check). The CI budget test pins this at exactly 0 allocs/op.
func BenchmarkWarmDecideFront(b *testing.B) {
	c, tr := warmChecker(b)
	ctx := context.Background()
	args := sqlparser.PositionalArgs(1)
	sess := session(1)
	if d, err := c.CheckSQLBorrowed(ctx, warmSQL, args, sess, tr); err != nil || !d.Allowed {
		b.Fatalf("prime: %+v %v", d, err)
	}
	if d, _ := c.CheckSQLBorrowed(ctx, warmSQL, args, sess, tr); d.Tier != TierFront {
		b.Fatalf("prime: want front tier, got %+v", d)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := c.CheckSQLBorrowed(ctx, warmSQL, args, sess, tr)
		if err != nil || !d.Allowed {
			b.Fatalf("%+v %v", d, err)
		}
	}
}

// BenchmarkWarmDecideFrontSafe is the same hit through the safe API,
// whose only extra cost is the defensive Views copy.
func BenchmarkWarmDecideFrontSafe(b *testing.B) {
	c, tr := warmChecker(b)
	ctx := context.Background()
	args := sqlparser.PositionalArgs(1)
	sess := session(1)
	if d, err := c.CheckSQL(ctx, warmSQL, args, sess, tr); err != nil || !d.Allowed {
		b.Fatalf("prime: %+v %v", d, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := c.CheckSQL(ctx, warmSQL, args, sess, tr)
		if err != nil || !d.Allowed {
			b.Fatalf("%+v %v", d, err)
		}
	}
}

// BenchmarkWarmDecideHistFree measures the history-free tier: every
// iteration is a NEW principal issuing the shared hot template, so the
// front key misses but the (policy, template) decision answers. The
// per-iteration session maps and args are pre-built so the benchmark
// charges only the checker.
func BenchmarkWarmDecideHistFree(b *testing.B) {
	c, tr := warmChecker(b)
	ctx := context.Background()
	sessions := make([]map[string]sqlvalue.Value, b.N+1)
	argv := make([]sqlparser.Args, b.N+1)
	for i := range sessions {
		uid := int64(i + 10)
		sessions[i] = session(uid)
		argv[i] = sqlparser.PositionalArgs(uid)
	}
	// Prime the history-free template with one cold decision.
	if d, err := c.CheckSQLBorrowed(ctx, warmSQL, argv[b.N], sessions[b.N], tr); err != nil || !d.Allowed {
		b.Fatalf("prime: %+v %v", d, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := c.CheckSQLBorrowed(ctx, warmSQL, argv[i], sessions[i], tr)
		if err != nil || !d.Allowed {
			b.Fatalf("%+v %v", d, err)
		}
		if d.Tier != TierHistFree {
			b.Fatalf("iteration %d: want histfree tier, got %q (%+v)", i, d.Tier, d)
		}
	}
}

// BenchmarkWarmDecideTemplate measures the full template tier: a
// trace-dependent decision (the fact-covered Events row) repeated by
// the same principal. It never enters the front cache (it needs
// facts), so each hit walks bind → facts → template probe.
func BenchmarkWarmDecideTemplate(b *testing.B) {
	c, tr := warmChecker(b)
	ctx := context.Background()
	const sql = "SELECT * FROM Events WHERE EId=2"
	sess := session(1)
	if d, err := c.CheckSQLBorrowed(ctx, sql, sqlparser.NoArgs, sess, tr); err != nil || !d.Allowed {
		b.Fatalf("prime: %+v %v", d, err)
	}
	if d, _ := c.CheckSQLBorrowed(ctx, sql, sqlparser.NoArgs, sess, tr); d.Tier != TierTemplate {
		b.Fatalf("prime: want template tier, got %+v", d)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := c.CheckSQLBorrowed(ctx, sql, sqlparser.NoArgs, sess, tr)
		if err != nil || !d.Allowed {
			b.Fatalf("%+v %v", d, err)
		}
	}
}

// Warm-tier allocation budgets, enforced in CI via `make ci`'s
// allocbudget target (and by any plain `go test` run). The front tier
// is the contract the tentpole exists for: ZERO allocations. The
// deeper tiers re-bind and re-translate the statement per check, which
// costs a bounded number of allocations; the budgets pin today's
// measured numbers with modest headroom so a regression (a new
// per-check string, map, or closure on the warm path) fails loudly
// rather than landing silently.
const (
	budgetFrontAllocs    = 0
	budgetFrontSafe      = 1   // the defensive Views copy
	budgetHistFreeAllocs = 120 // bind+translate+generalize, measured ~90
	budgetTemplateAllocs = 120 // bind+translate+facts walk, measured ~90
)

func TestWarmDecideAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budgets are a CI gate; skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation accounting")
	}
	cases := []struct {
		name   string
		bench  func(*testing.B)
		budget int64
		exact  bool
	}{
		{"front", BenchmarkWarmDecideFront, budgetFrontAllocs, true},
		{"front-safe", BenchmarkWarmDecideFrontSafe, budgetFrontSafe, false},
		{"histfree", BenchmarkWarmDecideHistFree, budgetHistFreeAllocs, false},
		{"template", BenchmarkWarmDecideTemplate, budgetTemplateAllocs, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := testing.Benchmark(tc.bench)
			got := res.AllocsPerOp()
			if tc.exact && got != tc.budget {
				t.Errorf("%s tier: %d allocs/op, contract is exactly %d (%.0f B/op)",
					tc.name, got, tc.budget, float64(res.AllocedBytesPerOp()))
			} else if got > tc.budget {
				t.Errorf("%s tier: %d allocs/op exceeds budget %d (%.0f B/op)",
					tc.name, got, tc.budget, float64(res.AllocedBytesPerOp()))
			}
		})
	}
}
