package checker

// Shadow dual-decide: when a candidate policy is staged (version.go),
// one query can be decided under BOTH resident versions — the active
// version's verdict enforces, the candidate's is advisory — and the
// divergence between them classified. This is the paper's §4
// evaluation loop run against live traffic: a candidate is trialed by
// diffing its decisions against the incumbent's before any promote
// (DePLOI audits synthesized policies by the same dual-check method).

import (
	"context"

	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// Divergence kinds reported in ShadowDecision.Kind.
const (
	// DivergeTighten marks a query the active policy allows but the
	// candidate would block — promoting removes access.
	DivergeTighten = "tighten"
	// DivergeLoosen marks a query the active policy blocks but the
	// candidate would allow — promoting grants access.
	DivergeLoosen = "loosen"
)

// ShadowDecision is the outcome of one dual-decide: both verdicts
// plus the divergence classification.
type ShadowDecision struct {
	// Active is the enforcing verdict, decided under the active
	// version exactly as Check would.
	Active Decision
	// Shadow is the candidate version's advisory verdict.
	Shadow Decision
	// Diverged reports Active.Allowed != Shadow.Allowed.
	Diverged bool
	// Kind classifies a divergence (DivergeTighten / DivergeLoosen);
	// empty when the verdicts agree.
	Kind string
}

func classifyShadow(active, shadow Decision) (bool, string) {
	if active.Allowed == shadow.Allowed {
		return false, ""
	}
	if active.Allowed {
		return true, DivergeTighten
	}
	return true, DivergeLoosen
}

// CheckShadow decides one query under the active AND the staged
// candidate policy, returning both verdicts. The active half counts
// into the checker's decision counters exactly like Check; the shadow
// half is advisory and deliberately kept out of allowed/blocked
// accounting so shadow traffic never skews enforcement stats. Both
// halves run the full staged pipeline and warm the decision caches
// under their own epochs — a later Promote therefore arrives with the
// candidate's cache tiers already hot. ok is false (and only the
// active half is decided) when no candidate is staged.
//
// The returned Decisions are caller-owned (Views copied), matching
// Check.
func (c *Checker) CheckShadow(ctx context.Context, sel *sqlparser.SelectStmt, args sqlparser.Args, session map[string]sqlvalue.Value, tr *trace.Trace) (ShadowDecision, bool) {
	return c.checkShadow(ctx, sel, args, session, tr, false)
}

// CheckShadowBorrowed is CheckShadow under the borrowed-Decision
// contract of CheckBorrowed: both halves' Views may alias cache-owned
// storage. The proxy's dual-decide hot path uses this form.
func (c *Checker) CheckShadowBorrowed(ctx context.Context, sel *sqlparser.SelectStmt, args sqlparser.Args, session map[string]sqlvalue.Value, tr *trace.Trace) (ShadowDecision, bool) {
	return c.checkShadow(ctx, sel, args, session, tr, true)
}

func (c *Checker) checkShadow(ctx context.Context, sel *sqlparser.SelectStmt, args sqlparser.Args, session map[string]sqlvalue.Value, tr *trace.Trace, borrow bool) (ShadowDecision, bool) {
	// One load pins a consistent (active, candidate) pair for the whole
	// dual-decide: a concurrent promote/rollback affects the next
	// query, never tears this one.
	vt := c.vers.Load()
	var sd ShadowDecision
	sd.Active = c.countDecision(c.decideVersion(ctx, vt.active, sel, args, session, tr, borrow))
	if vt.candidate == nil {
		return sd, false
	}
	sd.Shadow = c.decideVersion(ctx, vt.candidate, sel, args, session, tr, borrow)
	sd.Diverged, sd.Kind = classifyShadow(sd.Active, sd.Shadow)
	return sd, true
}

// CheckShadowSQL parses and dual-decides a SELECT, the CheckSQL
// analogue of CheckShadow (used by the batch diff path in acpolicy's
// server-side corpus replay). Errors follow CheckSQL.
func (c *Checker) CheckShadowSQL(ctx context.Context, sql string, args sqlparser.Args, session map[string]sqlvalue.Value, tr *trace.Trace) (ShadowDecision, bool, error) {
	sel, err := sqlparser.ParseSelectCached(sql)
	if err != nil {
		c.mParseErrors.Inc()
		return ShadowDecision{}, false, err
	}
	sd, staged := c.CheckShadow(ctx, sel, args, session, tr)
	return sd, staged, ctx.Err()
}

// countDecision applies the standard decision accounting (Check's
// counters) to an already-computed active verdict.
func (c *Checker) countDecision(d Decision) Decision {
	c.mDecisions.Inc()
	if d.Allowed {
		c.mAllowed.Inc()
	} else {
		c.mBlocked.Inc()
	}
	if d.FromCache {
		c.mCacheHits.Inc()
	}
	return d
}
