package checker

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// TestParallelCheck drives one checker from many goroutines over a
// mix of principals, shapes, and a shared history; run under -race.
func TestParallelCheck(t *testing.T) {
	c := New(calendarPolicy(t))
	tr := &trace.Trace{}
	q1 := sqlparser.MustParseSelect("SELECT 1 FROM Attendance WHERE UId=1 AND EId=2")
	tr.Append(trace.Entry{
		SQL: q1.SQL(), Stmt: q1, Args: sqlparser.NoArgs,
		Columns: []string{"1"},
		Rows:    [][]sqlvalue.Value{{sqlvalue.NewInt(1)}},
	})

	shapes := []string{
		"SELECT EId FROM Attendance WHERE UId = %d",
		"SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = %d",
		"SELECT * FROM Attendance", // blocked
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(uid int64) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sql := shapes[i%len(shapes)]
				if i%len(shapes) != 2 {
					sql = fmt.Sprintf(sql, uid)
				}
				d, err := c.CheckSQL(context.Background(), sql, sqlparser.NoArgs, session(uid), tr)
				if err != nil {
					errs <- err
					return
				}
				wantAllowed := i%len(shapes) != 2
				if d.Allowed != wantAllowed {
					errs <- fmt.Errorf("uid %d, %q: allowed=%v want %v (%s)", uid, sql, d.Allowed, wantAllowed, d.Reason)
					return
				}
			}
		}(int64(g%4 + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Decisions != 8*50 {
		t.Errorf("decisions: %+v", st)
	}
}

// TestResetCacheConcurrentWithCheck is the -race regression for the
// snapshot race: ResetCache republishes the view disjuncts while
// decisions read them. Before the atomic snapshot, decide and
// coverDisjunct read c.viewDisj unlocked against ResetCache's write.
func TestResetCacheConcurrentWithCheck(t *testing.T) {
	p := calendarPolicy(t)
	c := New(p)
	stop := make(chan struct{})
	var resetter, checkers sync.WaitGroup
	resetter.Add(1)
	go func() {
		defer resetter.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.ResetCache()
			}
		}
	}()
	for g := 0; g < 4; g++ {
		checkers.Add(1)
		go func(uid int64) {
			defer checkers.Done()
			for i := 0; i < 200; i++ {
				d, err := c.CheckSQL(context.Background(), "SELECT EId FROM Attendance WHERE UId = ?",
					sqlparser.PositionalArgs(uid), session(uid), nil)
				if err != nil {
					t.Error(err)
					return
				}
				if !d.Allowed {
					t.Errorf("own attendance must stay allowed across resets: %s", d.Reason)
					return
				}
			}
		}(int64(g + 1))
	}
	checkers.Wait()
	close(stop)
	resetter.Wait()
}

// TestCachedDecisionViewsNotAliased: mutating the Views slice of a
// returned decision must not corrupt the cached template for later
// principals (the cache previously returned its backing array).
func TestCachedDecisionViewsNotAliased(t *testing.T) {
	c := New(calendarPolicy(t))
	d1 := mustCheck(t, c, "SELECT EId FROM Attendance WHERE UId = 1", session(1), nil)
	if len(d1.Views) != 1 || d1.Views[0] != "V1" {
		t.Fatalf("first decision views: %v", d1.Views)
	}
	d1.Views[0] = "CORRUPTED"

	d2 := mustCheck(t, c, "SELECT EId FROM Attendance WHERE UId = 2", session(2), nil)
	if !d2.FromCache {
		t.Fatal("expected a template cache hit")
	}
	if len(d2.Views) != 1 || d2.Views[0] != "V1" {
		t.Fatalf("cached views corrupted by earlier caller: %v", d2.Views)
	}
	// And a hit's slice is private too.
	d2.Views[0] = "ALSO CORRUPTED"
	d3 := mustCheck(t, c, "SELECT EId FROM Attendance WHERE UId = 3", session(3), nil)
	if d3.Views[0] != "V1" {
		t.Fatalf("cache hit aliased its backing array: %v", d3.Views)
	}
}

// TestDecisionCacheBounded: the template cache must not grow past its
// configured size.
func TestDecisionCacheBounded(t *testing.T) {
	opts := DefaultOptions()
	opts.CacheSize = 32
	c := NewWithOptions(calendarPolicy(t), opts)
	for i := 0; i < 500; i++ {
		// Distinct constants produce distinct templates (no session
		// attribute matches them, so they are not generalized away).
		mustCheck(t, c, fmt.Sprintf("SELECT EId FROM Attendance WHERE UId = 1 AND EId = %d", i), session(1), nil)
	}
	st := c.Stats()
	if st.CacheEntries > 32 {
		t.Errorf("cache grew past its bound: %d entries", st.CacheEntries)
	}
	if st.CacheEntries == 0 {
		t.Error("cache unexpectedly empty")
	}
}

// TestDecisionCacheLRUKeepsHotEntry: with heavy reuse of one shape,
// the hot template should survive eviction pressure.
func TestDecisionCacheLRUKeepsHotEntry(t *testing.T) {
	opts := DefaultOptions()
	opts.CacheSize = 64
	c := NewWithOptions(calendarPolicy(t), opts)
	hot := "SELECT EId FROM Attendance WHERE UId = 1"
	mustCheck(t, c, hot, session(1), nil)
	for i := 0; i < 300; i++ {
		mustCheck(t, c, hot, session(1), nil) // keep it recent
		mustCheck(t, c, fmt.Sprintf("SELECT EId FROM Attendance WHERE UId = 1 AND EId = %d", i), session(1), nil)
	}
	d := mustCheck(t, c, hot, session(1), nil)
	if !d.FromCache {
		t.Error("hot template should have survived sampled-LRU eviction")
	}
}

// TestFactGeneralizationMemo: repeated checks over the same history
// and principal must hit the generalization memo, and different
// principals must not share entries.
func TestFactGeneralizationMemo(t *testing.T) {
	c := New(calendarPolicy(t))
	tr := &trace.Trace{}
	q1 := sqlparser.MustParseSelect("SELECT 1 FROM Attendance WHERE UId=1 AND EId=2")
	tr.Append(trace.Entry{
		SQL: q1.SQL(), Stmt: q1, Args: sqlparser.NoArgs,
		Columns: []string{"1"},
		Rows:    [][]sqlvalue.Value{{sqlvalue.NewInt(1)}},
	})
	mustCheck(t, c, "SELECT * FROM Events WHERE EId=2", session(1), tr)
	st1 := c.Stats()
	if st1.FactGenMisses == 0 {
		t.Fatal("first check should compute generalizations")
	}
	mustCheck(t, c, "SELECT * FROM Events WHERE EId=2", session(1), tr)
	st2 := c.Stats()
	if st2.FactGenHits <= st1.FactGenHits {
		t.Error("second check over same history should hit the memo")
	}
	if st2.FactGenMisses != st1.FactGenMisses {
		t.Error("second check should not recompute generalizations")
	}
	// New principal: the same ground fact generalizes differently.
	mustCheck(t, c, "SELECT * FROM Events WHERE EId=2", session(2), tr)
	st3 := c.Stats()
	if st3.FactGenMisses <= st2.FactGenMisses {
		t.Error("a different principal must not reuse another's generalizations")
	}
}

// TestHotPathSemanticsMatchAblation: decisions with the fact cache on
// and off must agree across a grown history (Example 2.1 included).
func TestHotPathSemanticsMatchAblation(t *testing.T) {
	p := calendarPolicy(t)
	fast := New(p)
	slowOpts := DefaultOptions()
	slowOpts.UseFactCache = false
	slowOpts.UseCache = false
	slow := NewWithOptions(p, slowOpts)

	tr := &trace.Trace{}
	queries := []string{
		"SELECT * FROM Events WHERE EId=2", // blocked until history covers it
		"SELECT EId FROM Attendance WHERE UId = 1",
		"SELECT * FROM Attendance",
	}
	for i := 0; i < 20; i++ {
		sql := fmt.Sprintf("SELECT 1 FROM Attendance WHERE UId=1 AND EId=%d", i+2)
		st := sqlparser.MustParseSelect(sql)
		tr.Append(trace.Entry{SQL: sql, Stmt: st, Args: sqlparser.NoArgs,
			Columns: []string{"1"}, Rows: [][]sqlvalue.Value{{sqlvalue.NewInt(1)}}})
		for _, q := range queries {
			df := mustCheck(t, fast, q, session(1), tr)
			ds := mustCheck(t, slow, q, session(1), tr)
			if df.Allowed != ds.Allowed {
				t.Fatalf("iteration %d, %q: cached=%v ablation=%v (%s / %s)",
					i, q, df.Allowed, ds.Allowed, df.Reason, ds.Reason)
			}
		}
	}
}
