package checker

// coldPool is the bounded, checker-owned worker pool the cold
// coverage search fans out on. One pool serves every decision the
// checker runs, so the proxy's session lanes and batch op — which all
// funnel cold decisions through Checker.Check — share one global
// bound instead of multiplying per-request parallelism.
//
// The design is deadlock-free by construction: the pool holds max-1
// tokens, and the CALLER always participates as a worker, so a run()
// call makes progress even when every token is taken (e.g. a
// parallel coverAll whose disjuncts fan out again over candidate
// views, or many proxy lanes hitting cold decisions at once). Tokens
// are only held by running workers, never by a goroutine waiting for
// tokens, so the wait graph stays acyclic.

import (
	"sync"
	"sync/atomic"

	"repro/internal/obsv"
)

type coldPool struct {
	max int
	sem chan struct{}
	// busy is a gauge (Add +1/-1) of extra workers currently running;
	// tasks counts workers spawned over the pool's lifetime. Both are
	// nil-safe no-ops under obsv.Disabled().
	busy  *obsv.Counter
	tasks *obsv.Counter
}

func newColdPool(max int, busy, tasks *obsv.Counter) *coldPool {
	p := &coldPool{max: max, busy: busy, tasks: tasks}
	if max > 1 {
		p.sem = make(chan struct{}, max-1)
	}
	return p
}

// parallel reports whether the pool can run anything off-caller.
func (p *coldPool) parallel() bool { return p != nil && p.max > 1 }

// run executes task(0..n-1), stealing work through a shared atomic
// index. Extra workers are spawned only for tokens available RIGHT
// NOW — never waited for — and the caller always works too. Tasks
// may be executed in any order but each exactly once; run returns
// after all n tasks completed.
func (p *coldPool) run(n int, task func(int)) {
	if n <= 1 || !p.parallel() {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			task(i)
		}
	}
	var wg sync.WaitGroup
spawn:
	for i := 0; i < n-1; i++ {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() {
					p.busy.Add(-1)
					<-p.sem
					wg.Done()
				}()
				p.busy.Add(1)
				p.tasks.Inc()
				work()
			}()
		default:
			break spawn // pool saturated: caller works alone with whoever spawned
		}
	}
	work()
	wg.Wait()
}
