package proxy

import (
	"context"
	"strings"

	"repro/internal/acerr"
	"repro/internal/durable"
)

// Cluster mode (internal/cluster, DESIGN.md §16). The proxy stays
// ignorant of rings, leases, and peers: it asks one handler where a
// durable session lives, relays requests for sessions owned elsewhere
// through an opaque remote handle, and hands cluster.* control ops to
// the handler wholesale. internal/cluster implements the handler; the
// interface lives here so the dependency points cluster → proxy, never
// back.

// ClusterHandler routes durable sessions across an enforcement
// cluster. Implementations must be safe for concurrent use.
type ClusterHandler interface {
	// Owner resolves a durable session name to the node that owns it.
	// local reports whether that node is this one; addr is the owner's
	// v2 address (informational when local).
	Owner(name string) (addr string, local bool)
	// OpenRemote forwards a durable hello to the session's owner and
	// returns a handle relaying the session's subsequent requests plus
	// the owner's hello response.
	OpenRemote(ctx context.Context, req *Request) (RemoteSession, *Response, error)
	// HandleOp serves one cluster.* control op (ping, status, ship,
	// drain, rebalance).
	HandleOp(ctx context.Context, req *Request) *Response
	// WALOpened runs once when the server's durable manager opens,
	// before any session uses it; the cluster installs its ship hook
	// here.
	WALOpened(m *durable.Manager)
}

// RemoteSession relays one forwarded session's requests to its owner.
type RemoteSession interface {
	// Do sends one request and returns the owner's raw response
	// (application-level errors stay in Response.Error; the error
	// return is transport failure only).
	Do(ctx context.Context, req *Request) (*Response, error)
	// Close releases the handle. It does not end the session on the
	// owner — durable sessions outlive connections by design.
	Close()
}

// handleClusterHello intercepts a durable hello when cluster routing
// is on. It returns (resp, true) when the session is owned by a peer
// and was forwarded (or the forward failed); (_, false) means the
// session is local and the caller proceeds down the normal path.
func (s *Server) handleClusterHello(ctx context.Context, req *Request, sess *session) (Response, bool) {
	h := s.Cluster
	if h == nil || req.Name == "" {
		return Response{}, false
	}
	if _, local := h.Owner(req.Name); local {
		if sess.remote != nil {
			sess.remote.Close()
			sess.remote = nil
		}
		return Response{}, false
	}
	if sess.remote != nil {
		sess.remote.Close()
		sess.remote = nil
	}
	remote, rresp, err := h.OpenRemote(ctx, req)
	if err != nil {
		return Response{Error: "cluster forward: " + err.Error(), Code: acerr.CodeInternal}, true
	}
	if rresp.Error != "" {
		return Response{Error: rresp.Error, Code: rresp.Code}, true
	}
	sess.remote = remote
	sess.name = req.Name
	resp := Response{OK: true, Restored: rresp.Restored}
	// Protocol negotiation is between this node and ITS client, not
	// whatever the inter-node connection negotiated.
	if req.MaxProto >= ProtoV2 {
		resp.Proto = ProtoV2
	}
	return resp, true
}

// forwardRemote relays one request over a forwarded session's remote
// handle. The owner's response comes back verbatim except for the ID,
// which the local dispatch layer re-stamps.
func (s *Server) forwardRemote(ctx context.Context, req *Request, sess *session) Response {
	resp, err := sess.remote.Do(ctx, req)
	if err != nil {
		return Response{Error: "cluster forward: " + err.Error(), Code: acerr.CodeInternal}
	}
	out := *resp
	out.ID = 0
	return out
}

// handleClusterOp dispatches a cluster.* control op to the handler.
func (s *Server) handleClusterOp(ctx context.Context, req *Request) Response {
	h := s.Cluster
	if h == nil {
		return Response{Error: "cluster mode is not enabled", Code: acerr.CodeBadRequest}
	}
	if resp := h.HandleOp(ctx, req); resp != nil {
		return *resp
	}
	return Response{Error: "unknown cluster op " + req.Op, Code: acerr.CodeBadRequest}
}

// isClusterOp reports whether op belongs to the cluster.* control set.
func isClusterOp(op string) bool { return strings.HasPrefix(op, "cluster.") }
