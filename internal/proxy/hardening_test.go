package proxy

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func quietLog(t *testing.T, srv *Server) {
	t.Helper()
	srv.Logf = func(format string, args ...any) { t.Logf(format, args...) }
}

// TestOversizedRequestLine: a request longer than MaxLineBytes gets a
// final error Response before the connection is closed, instead of a
// silent drop.
func TestOversizedRequestLine(t *testing.T) {
	srv := testServer(t, Enforce)
	quietLog(t, srv)
	srv.MaxLineBytes = 1024
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(`{"op":"query","sql":"` + strings.Repeat("x", 4096) + `"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	line, err := r.ReadBytes('\n')
	if err != nil {
		t.Fatalf("expected a final error response, got read error %v", err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatalf("bad final response %q: %v", line, err)
	}
	if resp.Error == "" || !strings.Contains(resp.Error, "too long") {
		t.Fatalf("final response should surface the scanner error: %+v", resp)
	}
	// The connection is then closed.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := r.ReadBytes('\n'); err == nil {
		t.Fatal("connection should be closed after an oversized line")
	}
}

// TestConnectionLimit: past MaxConns, new dials get one error
// Response and are closed; existing connections keep working, and
// closing one frees a slot.
func TestConnectionLimit(t *testing.T) {
	srv := testServer(t, Enforce)
	quietLog(t, srv)
	srv.MaxConns = 2
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	cl1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl1.Close()
	cl2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if err := cl1.Hello(context.Background(), map[string]any{"MyUId": 1}); err != nil {
		t.Fatal(err)
	}
	if err := cl2.Hello(context.Background(), map[string]any{"MyUId": 2}); err != nil {
		t.Fatal(err)
	}

	// Third dial: rejected with an explanatory response.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		t.Fatalf("rejected dial should receive an error response: %v", err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Error, "connection limit") {
		t.Fatalf("rejection reason: %+v", resp)
	}

	// Existing sessions unaffected.
	if _, err := cl1.Query(context.Background(), "SELECT EId FROM Attendance WHERE UId = 1"); err != nil {
		t.Fatalf("existing connection broken by rejected dial: %v", err)
	}

	// Freeing a slot admits a new connection.
	cl2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		cl3, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl3.Hello(context.Background(), map[string]any{"MyUId": 3}); err == nil {
			cl3.Close()
			break
		}
		cl3.Close()
		if time.Now().After(deadline) {
			t.Fatal("slot was not freed after closing a connection")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReadTimeoutDropsIdleConnection: a connection that sends nothing
// is dropped after ReadTimeout with a surfaced reason.
func TestReadTimeoutDropsIdleConnection(t *testing.T) {
	srv := testServer(t, Enforce)
	quietLog(t, srv)
	srv.ReadTimeout = 100 * time.Millisecond
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		t.Fatalf("idle drop should surface a final response, got %v", err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == "" {
		t.Fatalf("expected a timeout error response: %+v", resp)
	}
}

// TestGracefulCloseDrains: Close returns only after in-flight request
// handling finished, and the response of a request racing with Close
// still arrives.
func TestGracefulCloseDrains(t *testing.T) {
	srv := testServer(t, Enforce)
	quietLog(t, srv)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Hello(context.Background(), map[string]any{"MyUId": 1}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	queryErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, err := cl.Query(context.Background(), "SELECT EId FROM Attendance WHERE UId = 1")
		queryErr <- err
	}()
	// Close concurrently; it must return (drain) without hanging.
	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not drain within 10s")
	}
	wg.Wait()
	// The racing query either completed or the connection was torn
	// down — both acceptable; a hang is not.
	<-queryErr

	// After Close, the listener is gone.
	if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		t.Fatal("listener should be closed")
	}
}

// TestCloseIdempotent: double Close must not panic or hang.
func TestCloseIdempotent(t *testing.T) {
	srv := testServer(t, Enforce)
	quietLog(t, srv)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentMixedOps stresses one server with goroutines mixing
// hello, query, exec, and stats; run under -race.
func TestConcurrentMixedOps(t *testing.T) {
	srv := testServer(t, Enforce)
	quietLog(t, srv)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			uid := g%2 + 1
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			if err := cl.Hello(context.Background(), map[string]any{"MyUId": uid}); err != nil {
				errs <- err
				return
			}
			for i := 0; i < 15; i++ {
				switch i % 4 {
				case 0:
					if _, err := cl.Query(context.Background(), "SELECT EId FROM Attendance WHERE UId = ?", uid); err != nil {
						errs <- fmt.Errorf("g%d query: %w", g, err)
						return
					}
				case 1:
					// Cross-user reads block but must not error the wire.
					if _, err := cl.Query(context.Background(), "SELECT * FROM Attendance"); err == nil {
						errs <- fmt.Errorf("g%d: table scan was not blocked", g)
						return
					}
				case 2:
					if _, err := cl.Exec(context.Background(), "INSERT INTO Attendance (UId, EId) VALUES (?, ?)", uid, 100+g*100+i); err != nil {
						errs <- fmt.Errorf("g%d exec: %w", g, err)
						return
					}
				default:
					if _, err := cl.Stats(context.Background()); err != nil {
						errs <- fmt.Errorf("g%d stats: %w", g, err)
						return
					}
				}
			}
			// Re-hello resets the session history mid-connection.
			if err := cl.Hello(context.Background(), map[string]any{"MyUId": uid}); err != nil {
				errs <- err
				return
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := srv.StatsSnapshot()
	if st.Queries == 0 || st.TotalConns < 10 {
		t.Errorf("stats after stress: %+v", st)
	}
}

// TestExtendedStats: the stats op exposes latency percentiles, cache
// hit rates, fact-cache counters, and connection accounting.
func TestExtendedStats(t *testing.T) {
	srv := testServer(t, Enforce)
	quietLog(t, srv)
	cl := dialTest(t, srv)
	if err := cl.Hello(context.Background(), map[string]any{"MyUId": 1}); err != nil {
		t.Fatal(err)
	}
	// Build history so the fact cache sees reuse: each query derives
	// facts over the prior entries.
	if _, err := cl.Query(context.Background(), "SELECT 1 FROM Attendance WHERE UId=1 AND EId=2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := cl.Query(context.Background(), "SELECT * FROM Events WHERE EId=2"); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != 4 || st.Decisions != 4 {
		t.Fatalf("counters: %+v", st)
	}
	if st.LatencySamples != 4 || st.LatencyP50Micros < 0 || st.LatencyP99Micros < st.LatencyP50Micros {
		t.Errorf("latency: %+v", st)
	}
	if st.FactEntriesTranslated == 0 {
		t.Errorf("fact cache: expected translated entries, got %+v", st)
	}
	if st.FactEntriesReused == 0 || st.FactCacheHitRate <= 0 {
		t.Errorf("fact cache: expected reuse across checks, got %+v", st)
	}
	if st.CacheHits == 0 || st.CacheHitRate <= 0 {
		t.Errorf("decision cache: expected template hits, got %+v", st)
	}
	if st.ActiveConns != 1 || st.TotalConns != 1 {
		t.Errorf("conn accounting: %+v", st)
	}
}
