package proxy

import (
	"context"
	"errors"
	"testing"

	"repro/internal/checker"
)

// wideViews is the test policy plus an all-events view: strictly
// looser, so active-blocked event scans become "loosen" divergences.
func wideViews() map[string]string {
	return map[string]string{
		"V1":         "SELECT EId FROM Attendance WHERE UId = ?MyUId",
		"V2":         "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
		"VAllEvents": "SELECT * FROM Events",
	}
}

func TestPolicyLifecycleOverWire(t *testing.T) {
	srv := testServer(t, Enforce)
	cl := dialTest(t, srv)
	ctx := context.Background()
	if _, err := cl.HelloDurable(ctx, "trial-sess", map[string]any{"MyUId": 1}); err != nil {
		t.Fatal(err)
	}

	// Before any stage: status reports one version, no candidate.
	pb, err := cl.PolicyStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pb == nil || pb.Staged || pb.ActiveViews != 2 {
		t.Fatalf("pre-stage status: %+v", pb)
	}
	baseEpoch := pb.ActiveEpoch

	// Promote and rollback without a candidate are client errors.
	if _, err := cl.PolicyPromote(ctx); err == nil {
		t.Fatal("promote without a staged candidate must fail")
	}
	if _, err := cl.PolicyRollback(ctx); err == nil {
		t.Fatal("rollback without a staged candidate must fail")
	}

	// Stage the wide candidate over the wire.
	pb, err = cl.PolicyStage(ctx, wideViews())
	if err != nil {
		t.Fatal(err)
	}
	if !pb.Staged || pb.CandidateViews != 3 || pb.CandidateParent != baseEpoch {
		t.Fatalf("post-stage status: %+v", pb)
	}
	if pb.CandidateEpoch <= baseEpoch {
		t.Fatalf("candidate epoch %d not newer than active %d", pb.CandidateEpoch, baseEpoch)
	}

	// The active policy still enforces: the all-events scan stays
	// blocked, but the dual-decide records a loosen divergence.
	if _, err := cl.Query(ctx, "SELECT Title FROM Events"); !errors.Is(err, ErrBlocked) {
		t.Fatalf("staged candidate must not enforce: %v", err)
	}
	// An agreeing query adds a dual-decide but no divergence.
	if _, err := cl.Query(ctx, "SELECT EId FROM Attendance WHERE UId=1"); err != nil {
		t.Fatal(err)
	}

	pb, err = cl.PolicyDiff(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pb.Diffs) != 1 {
		t.Fatalf("want exactly one divergence ringed, got %d: %+v", len(pb.Diffs), pb.Diffs)
	}
	d := pb.Diffs[0]
	if d.Kind != checker.DivergeLoosen || d.ActiveAllowed || !d.ShadowAllowed {
		t.Fatalf("divergence record: %+v", d)
	}
	if d.SQL != "SELECT Title FROM Events" {
		t.Fatalf("divergence SQL: %q", d.SQL)
	}
	if d.Session != "trial-sess" {
		t.Fatalf("divergence session: %q", d.Session)
	}
	if d.ActiveEpoch != baseEpoch || d.ShadowEpoch != pb.CandidateEpoch {
		t.Fatalf("divergence epochs: active %d shadow %d (want %d/%d)",
			d.ActiveEpoch, d.ShadowEpoch, baseEpoch, pb.CandidateEpoch)
	}
	if pb.ShadowDecides < 2 || pb.Divergences != 1 || pb.DivergeLoosen != 1 || pb.DivergeTighten != 0 {
		t.Fatalf("shadow counters: %+v", pb)
	}

	// Cursor semantics: polling from LastDiffSeq returns nothing new.
	cursor := pb.LastDiffSeq
	pb, err = cl.PolicyDiff(ctx, cursor)
	if err != nil {
		t.Fatal(err)
	}
	if len(pb.Diffs) != 0 {
		t.Fatalf("cursor poll must be empty, got %+v", pb.Diffs)
	}
	// A second divergence arrives past the cursor.
	if _, err := cl.Query(ctx, "SELECT Notes FROM Events"); !errors.Is(err, ErrBlocked) {
		t.Fatalf("notes scan should stay blocked: %v", err)
	}
	pb, err = cl.PolicyDiff(ctx, cursor)
	if err != nil {
		t.Fatal(err)
	}
	if len(pb.Diffs) != 1 || pb.Diffs[0].Seq <= cursor {
		t.Fatalf("want one post-cursor record, got %+v", pb.Diffs)
	}

	// Promote: the candidate becomes enforcing, the ring clears, and
	// the formerly blocked scan is now allowed.
	pb, err = cl.PolicyPromote(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Staged || pb.ActiveViews != 3 {
		t.Fatalf("post-promote status: %+v", pb)
	}
	if _, err := cl.Query(ctx, "SELECT Title FROM Events"); err != nil {
		t.Fatalf("promoted policy must allow the event scan: %v", err)
	}
	pb, err = cl.PolicyDiff(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pb.Diffs) != 0 {
		t.Fatalf("promote must clear the diff ring, got %+v", pb.Diffs)
	}
}

func TestPolicyRollbackOverWire(t *testing.T) {
	srv := testServer(t, Enforce)
	cl := dialTest(t, srv)
	ctx := context.Background()
	if err := cl.Hello(ctx, map[string]any{"MyUId": 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.PolicyStage(ctx, wideViews()); err != nil {
		t.Fatal(err)
	}
	pb, err := cl.PolicyRollback(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Staged || pb.ActiveViews != 2 {
		t.Fatalf("post-rollback status: %+v", pb)
	}
	if _, err := cl.Query(ctx, "SELECT Title FROM Events"); !errors.Is(err, ErrBlocked) {
		t.Fatalf("rolled-back candidate must not enforce: %v", err)
	}
}

func TestPolicyStageRejectsBadViews(t *testing.T) {
	srv := testServer(t, Enforce)
	cl := dialTest(t, srv)
	ctx := context.Background()
	if err := cl.Hello(ctx, map[string]any{"MyUId": 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.PolicyStage(ctx, map[string]string{"VBad": "SELECT nope FROM NoSuchTable"}); err == nil {
		t.Fatal("staging a candidate over unknown tables must fail")
	}
	// A failed stage leaves the lifecycle untouched.
	pb, err := cl.PolicyStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Staged {
		t.Fatalf("failed stage must not leave a candidate: %+v", pb)
	}
}

func TestShadowSubscriberAndServerAPI(t *testing.T) {
	srv := testServer(t, Enforce)
	cl := dialTest(t, srv)
	ctx := context.Background()
	if err := cl.Hello(ctx, map[string]any{"MyUId": 1}); err != nil {
		t.Fatal(err)
	}
	got := make(chan ShadowDiff, 4)
	srv.SubscribeShadow(func(d ShadowDiff) { got <- d })
	if _, err := srv.StagePolicy(wideViews()); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Query(ctx, "SELECT Title FROM Events"); !errors.Is(err, ErrBlocked) {
		t.Fatalf("active policy still enforces: %v", err)
	}
	select {
	case d := <-got:
		if d.Kind != checker.DivergeLoosen {
			t.Fatalf("subscriber diff: %+v", d)
		}
	default:
		t.Fatal("subscriber did not receive the divergence")
	}
	diffs, last := srv.ShadowDiffs(0)
	if len(diffs) != 1 || last != diffs[0].Seq {
		t.Fatalf("ShadowDiffs: %d records, last %d", len(diffs), last)
	}
	if _, err := srv.RollbackPolicy(); err != nil {
		t.Fatal(err)
	}
	if diffs, _ := srv.ShadowDiffs(0); len(diffs) != 0 {
		t.Fatalf("rollback must clear the ring, got %+v", diffs)
	}
}

// The ring is bounded: an over-long trial keeps only the newest
// records, and the monotone sequence exposes the gap.
func TestShadowDiffRingEviction(t *testing.T) {
	srv := testServer(t, Enforce)
	srv.Logf = func(string, ...any) {} // a full ring logs one line per record
	sess := &session{}
	if _, err := srv.StagePolicy(wideViews()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < shadowDiffRingMax+10; i++ {
		srv.recordDivergence(&Request{SQL: "SELECT Title FROM Events"}, sess, checker.ShadowDecision{
			Diverged: true, Kind: checker.DivergeLoosen,
		})
	}
	diffs, last := srv.ShadowDiffs(0)
	if len(diffs) != shadowDiffRingMax {
		t.Fatalf("ring length %d, want %d", len(diffs), shadowDiffRingMax)
	}
	if last != uint64(shadowDiffRingMax+10) {
		t.Fatalf("last seq %d, want %d", last, shadowDiffRingMax+10)
	}
	if diffs[0].Seq != 11 {
		t.Fatalf("oldest surviving seq %d, want 11 (10 evicted)", diffs[0].Seq)
	}
}
