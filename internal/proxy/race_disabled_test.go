//go:build !race

package proxy

// raceEnabled reports whether this test binary was built with -race;
// allocation-budget gates skip there (the detector perturbs alloc
// accounting).
const raceEnabled = false
