package proxy

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/acerr"
	"repro/internal/checker"
	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/obsv"
	"repro/internal/policy"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// Default hardening knobs (overridable per Server before Listen).
const (
	// DefaultMaxConns bounds simultaneous connections.
	DefaultMaxConns = 1024
	// DefaultMaxLineBytes bounds one request line.
	DefaultMaxLineBytes = 16 * 1024 * 1024
	// DefaultMaxInFlight bounds pipelined (v2) requests queued or
	// executing per connection; past it the server stops reading and
	// lets TCP flow control push back on the client.
	DefaultMaxInFlight = 64
)

// Server is the enforcement proxy: it owns the database engine and a
// compliance checker and serves the line protocol. The exported knob
// fields must be set before Listen.
type Server struct {
	DB      *engine.DB
	Checker *checker.Checker
	Mode    Mode

	// MaxConns bounds simultaneous connections; excess connections get
	// one error Response and are closed. 0 means DefaultMaxConns;
	// negative means unlimited.
	MaxConns int
	// ReadTimeout is the per-connection idle read deadline; a
	// connection that sends nothing for this long is dropped. 0
	// disables the deadline.
	ReadTimeout time.Duration
	// MaxLineBytes bounds one request line; an over-long line gets a
	// final error Response and the connection is closed. 0 means
	// DefaultMaxLineBytes.
	MaxLineBytes int
	// MaxInFlight bounds the per-connection pipelined window (protocol
	// v2): requests queued or executing at once. 0 means
	// DefaultMaxInFlight.
	MaxInFlight int
	// Logf, when set, receives connection-level diagnostics (dropped
	// connections, rejected dials) and the slow-decision log. Defaults
	// to log.Printf.
	Logf func(format string, args ...any)
	// Metrics is the observability registry the server reports into.
	// Nil means the checker's registry, so `stats` responses and an
	// acproxy -metrics endpoint see checker and proxy instruments side
	// by side. Set before Listen or the first Handle.
	Metrics *obsv.Registry
	// SlowLogThreshold, when positive, turns on the structured
	// slow-decision log: every query whose end-to-end handling takes at
	// least this long emits one JSON line through Logf with the
	// decision, the cache tier that answered, and the per-stage
	// breakdown. See DESIGN.md §9 for the schema.
	SlowLogThreshold time.Duration
	// WALDir, when set, turns on durable enforcement state: sessions
	// that hello with a Name get their query history WAL-logged to this
	// directory and restored across restarts (DESIGN.md §11). The WAL
	// opens on Listen (or an explicit OpenDurable) and recovery replays
	// before the first connection is accepted.
	WALDir string
	// WALOpts tunes the WAL (fsync policy, segment size, checkpoint
	// cadence). Zero values mean durable.DefaultOptions semantics.
	WALOpts durable.Options
	// HistoryWindow, when positive, bounds every session trace —
	// durable or ephemeral — to its most recent n entries. Eviction
	// only forgets facts, so windowed decisions are sound, merely more
	// conservative.
	HistoryWindow int
	// DisableInlineFast turns off the v2 inline fast path (executing a
	// warm-tier query on the read goroutine when its lane is idle) and
	// forces every request through the queue/runner handoff. Ablation
	// knob for acbench -saturate; the default (false) is production.
	DisableInlineFast bool
	// DisableEncodePooling turns off Response pooling on the v2 path
	// (every lane response heap-allocates, the pre-PR-9 behaviour).
	// Ablation knob paired with DisableInlineFast.
	DisableEncodePooling bool
	// Cluster, when set, routes durable sessions across an enforcement
	// cluster (cluster.go, internal/cluster): hellos for sessions owned
	// by a peer are forwarded there, and cluster.* control ops dispatch
	// to the handler. Set before Listen.
	Cluster ClusterHandler
	// LazyWAL defers opening the WAL past Listen: it opens on the first
	// durable hello (or incoming ship) instead. A node that only ever
	// forwards — or only serves ephemeral sessions — then never creates
	// a WAL directory at all.
	LazyWAL bool

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool
	// closeCtx is the ancestor of every request context served by this
	// listener; Close cancels it so in-flight checks and scans abort
	// instead of delaying the drain.
	closeCtx    context.Context
	closeCancel context.CancelFunc
	// wal is the durable-state manager (nil without WALDir). walMu
	// serializes OpenDurable end to end — recovery can be slow, and two
	// racing opens on one directory would mean two live committers —
	// without stalling everything else s.mu guards.
	walMu sync.Mutex
	wal   *durable.Manager

	// Shadow dual-decide state (policy.go): the bounded ring of recent
	// divergence records a policy.diff polls, the monotone diff
	// sequence, and subscriber callbacks. Guarded by shadowMu.
	shadowMu   sync.Mutex
	diffRing   []ShadowDiff
	diffSeq    uint64
	shadowSubs []func(ShadowDiff)

	// All counters and the query-latency histogram live in the obsv
	// registry (resolved once by initObs); the checker's quantile
	// machinery is the same code. obsv instruments are nil-safe, so a
	// disabled registry costs one nil check per bump.
	obsOnce        sync.Once
	reg            *obsv.Registry
	mQueries       *obsv.Counter
	mViolations    *obsv.Counter
	mConnsTotal    *obsv.Counter
	mConnsRejected *obsv.Counter
	mReqsCanceled  *obsv.Counter
	mFactReused    *obsv.Counter
	mFactTrans     *obsv.Counter
	mSlowQueries   *obsv.Counter
	mQueryLat      *obsv.Histogram
	// Inline-fastpath and write-coalescing instruments: queries answered
	// on the read goroutine, warm probes that fell back to the lane
	// queue, response frames encoded, and flush syscalls issued — the
	// frames/flushes ratio is the write batching factor.
	mInlineHits   *obsv.Counter
	mInlineBypass *obsv.Counter
	mWriteFrames  *obsv.Counter
	mWriteFlushes *obsv.Counter
	// Shadow instruments: dual-decides executed, divergences (total and
	// by kind), and the end-to-end latency of the dual decision — the
	// overhead a staged candidate adds to the query path.
	mShadowDecides *obsv.Counter
	mShadowDiverge *obsv.Counter
	mShadowTighten *obsv.Counter
	mShadowLoosen  *obsv.Counter
	mShadowLat     *obsv.Histogram
}

// NewServer builds a proxy server over the engine and checker.
func NewServer(db *engine.DB, c *checker.Checker, mode Mode) *Server {
	return &Server{DB: db, Checker: c, Mode: mode, conns: make(map[net.Conn]struct{})}
}

// initObs resolves the server's instruments exactly once: the explicit
// Metrics registry if set, else the checker's (proxy.* and checker.*
// names then share one snapshot). It also points the engine at the
// same registry so scan timings surface alongside decision timings.
func (s *Server) initObs() {
	s.obsOnce.Do(func() {
		reg := s.Metrics
		if reg == nil && s.Checker != nil {
			reg = s.Checker.Metrics()
		}
		if reg == nil {
			reg = obsv.NewRegistry()
		}
		s.reg = reg
		s.mQueries = reg.Counter("proxy.queries")
		s.mViolations = reg.Counter("proxy.violations")
		s.mConnsTotal = reg.Counter("proxy.conns.total")
		s.mConnsRejected = reg.Counter("proxy.conns.rejected")
		s.mReqsCanceled = reg.Counter("proxy.reqs.canceled")
		s.mFactReused = reg.Counter("proxy.factcache.reused")
		s.mFactTrans = reg.Counter("proxy.factcache.translated")
		s.mSlowQueries = reg.Counter("proxy.slow.queries")
		s.mQueryLat = reg.Histogram("proxy.query.micros")
		s.mInlineHits = reg.Counter("proxy.inline.hits")
		s.mInlineBypass = reg.Counter("proxy.inline.bypass")
		s.mWriteFrames = reg.Counter("proxy.write.frames")
		s.mWriteFlushes = reg.Counter("proxy.write.flushes")
		s.mShadowDecides = reg.Counter("proxy.shadow.decides")
		s.mShadowDiverge = reg.Counter("proxy.shadow.divergences")
		s.mShadowTighten = reg.Counter("proxy.shadow.diverge.tighten")
		s.mShadowLoosen = reg.Counter("proxy.shadow.diverge.loosen")
		s.mShadowLat = reg.Histogram("proxy.shadow.micros")
		if s.DB != nil {
			s.DB.SetMetrics(reg)
		}
	})
}

// MetricsRegistry returns the registry the server reports into,
// resolving it on first use.
func (s *Server) MetricsRegistry() *obsv.Registry {
	s.initObs()
	return s.reg
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

func (s *Server) maxConns() int {
	switch {
	case s.MaxConns > 0:
		return s.MaxConns
	case s.MaxConns < 0:
		return int(^uint(0) >> 1) // unlimited
	default:
		return DefaultMaxConns
	}
}

func (s *Server) maxLineBytes() int {
	if s.MaxLineBytes > 0 {
		return s.MaxLineBytes
	}
	return DefaultMaxLineBytes
}

func (s *Server) maxInFlight() int {
	if s.MaxInFlight > 0 {
		return s.MaxInFlight
	}
	return DefaultMaxInFlight
}

// OpenDurable opens the WAL (WALDir must be set), replaying any
// recovered state, and records the policy identity the server now
// enforces. It is idempotent; Listen calls it automatically. Recovery
// happens here — before any connection — so a restored session's first
// decision already sees its pre-crash history.
func (s *Server) OpenDurable() error {
	if s.WALDir == "" {
		return nil
	}
	// walMu spans the whole open (check through publish): concurrent
	// callers — e.g. an explicit OpenDurable racing Listen — must not
	// both run durable.Open on the same directory.
	s.walMu.Lock()
	defer s.walMu.Unlock()
	s.mu.Lock()
	opened := s.wal != nil
	s.mu.Unlock()
	if opened {
		return nil
	}
	s.initObs()
	opts := s.WALOpts
	if opts.Metrics == nil {
		opts.Metrics = s.reg
	}
	if opts.Logf == nil {
		opts.Logf = s.logf
	}
	if opts.HistoryWindow == 0 {
		opts.HistoryWindow = s.HistoryWindow
	}
	m, err := durable.Open(s.WALDir, opts)
	if err != nil {
		return fmt.Errorf("proxy: open WAL: %w", err)
	}
	if rec := m.Recovery(); len(rec.Sessions) > 0 {
		n := 0
		for _, sess := range rec.Sessions {
			n += len(sess.Entries)
		}
		s.logf("proxy: recovered %d durable session(s), %d history entries (checkpoint cut %d, %d segment(s) replayed)",
			len(rec.Sessions), n, rec.CheckpointCut, rec.SegmentsReplayed)
	}
	if s.Checker != nil {
		// A recovered promote outranks the startup policy: the operator
		// promoted it before the crash, so restart scripts pointing at the
		// old policy file must not silently demote it. Rebuild from the
		// persisted view SQL and install it as active (fingerprint-checked
		// so a decode or schema drift falls back to the startup policy).
		if av := m.ActiveVersion(); av != nil && av.Fingerprint != s.Checker.Policy().Fingerprint() {
			if pol, err := policy.New(s.Checker.Policy().Schema, av.Views); err != nil {
				s.logf("proxy: recovered active policy (version id %d) unusable, keeping startup policy: %v", av.ID, err)
			} else if pol.Fingerprint() != av.Fingerprint {
				s.logf("proxy: recovered active policy (version id %d) fingerprint mismatch, keeping startup policy", av.ID)
			} else if _, _, err := s.Checker.SetActivePolicy(pol); err != nil {
				s.logf("proxy: restore recovered active policy: %v", err)
			} else {
				s.logf("proxy: restored promoted policy (version id %d) over startup policy", av.ID)
			}
		}
		pol := s.Checker.Policy()
		views := make(map[string]string, len(pol.Views))
		for _, v := range pol.Views {
			views[v.Name] = v.SQL
		}
		id := durable.PolicyID{Fingerprint: pol.Fingerprint(), Views: views}
		if s.DB != nil {
			id.DBHash = s.DB.ContentHash()
		}
		if err := m.SetPolicy(id); err != nil {
			m.Close()
			return fmt.Errorf("proxy: persist policy snapshot: %w", err)
		}
		// A crash mid-trial restores the trial: re-stage the recovered
		// candidate in the checker. The WAL already holds its stage
		// record — the manager restored it at Open — so this is purely
		// in-memory.
		if cand := m.CandidateVersion(); cand != nil {
			if pol, err := policy.New(s.Checker.Policy().Schema, cand.Views); err != nil {
				s.logf("proxy: recovered candidate policy (version id %d) unusable, dropping: %v", cand.ID, err)
			} else if pol.Fingerprint() != cand.Fingerprint {
				s.logf("proxy: recovered candidate policy (version id %d) fingerprint mismatch, dropping", cand.ID)
			} else if _, err := s.Checker.StagePolicy(pol); err != nil {
				s.logf("proxy: re-stage recovered candidate: %v", err)
			} else {
				s.logf("proxy: restored staged candidate policy (version id %d); shadow dual-decide resumes", cand.ID)
			}
		}
	}
	// The cluster's ship hook must be live before the manager is
	// published — the first durable append may need replicating.
	if s.Cluster != nil {
		s.Cluster.WALOpened(m)
	}
	s.mu.Lock()
	s.wal = m
	s.mu.Unlock()
	return nil
}

// Durable exposes the WAL manager (nil when the server runs without
// one); acproxy's drain path and tests use it.
func (s *Server) Durable() *durable.Manager {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0").
// It returns the bound address immediately; connections are served on
// background goroutines until Close.
func (s *Server) Listen(addr string) (string, error) {
	s.initObs()
	if !s.LazyWAL {
		if err := s.OpenDurable(); err != nil {
			return "", err
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.closed = false
	s.ln = ln
	s.closeCtx, s.closeCancel = context.WithCancel(context.Background())
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener and drains in-flight connections: it
// cancels every in-flight request context (aborting checks and scans
// mid-decision), interrupts each connection's pending read, lets
// handlers write their final responses, and only then returns.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed && s.ln == nil {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	var err error
	if s.ln != nil {
		err = s.ln.Close()
		s.ln = nil
	}
	if s.closeCancel != nil {
		s.closeCancel()
	}
	// Wake blocked readers (and writers stuck on dead peers); handlers
	// mid-request finish normally and notice on the next read.
	for c := range s.conns {
		_ = c.SetDeadline(time.Now())
	}
	wal := s.wal
	s.wal = nil
	s.mu.Unlock()
	s.wg.Wait()
	// Drain complete: no handler can append again. Checkpoint and close
	// the WAL so a restart replays one small checkpoint, not the whole
	// tail. (A crash before this point is what recovery is for.)
	if wal != nil {
		if werr := wal.Close(); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mConnsTotal.Inc()
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if len(s.conns) >= s.maxConns() {
			s.mu.Unlock()
			s.mConnsRejected.Inc()
			_ = json.NewEncoder(conn).Encode(Response{
				Error: "server at connection limit",
				Code:  acerr.CodeTooManyConns,
			})
			conn.Close()
			s.logf("proxy: rejected %s: connection limit (%d) reached", conn.RemoteAddr(), s.maxConns())
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// session is per-connection (v1) or per-lane (v2) state: principal
// attributes and history.
type session struct {
	attrs map[string]sqlvalue.Value
	tr    *trace.Trace
	// name is the durable session name from hello ("" for ephemeral
	// sessions); shadow diff records carry it as the session identity.
	name string
	// Last-seen fact-cache counters, for delta aggregation into the
	// server totals (the trace is replaced on every hello).
	factReused, factTranslated uint64
	// remote, when set, marks this session as owned by a cluster peer:
	// queries relay through it instead of deciding locally
	// (cluster.go), so the session's history accrues on one node.
	remote RemoteSession
}

func (s *Server) newSessionState() *session {
	tr := &trace.Trace{}
	if s.HistoryWindow > 0 {
		tr.SetWindow(s.HistoryWindow)
	}
	return &session{attrs: map[string]sqlvalue.Value{}, tr: tr}
}

// pipeJob is one dispatched v2 request: the decoded request, its
// already-started context (the per-request deadline ticks from
// dispatch, so queue time counts), and the un-registration hook.
type pipeJob struct {
	req  *Request
	ctx  context.Context
	done func()
}

// lane is one session's ordered execution queue. At most one runner
// goroutine drains it at a time (the running flag), so requests within
// a session execute — and append to the session's history — in exactly
// the order the client sent them. The runner is spawned on demand by
// the dispatch that finds the lane idle and exits when the queue
// empties: an idle session costs its state, not a parked goroutine or
// a window-sized channel. That is what lets one connection multiplex
// hundreds of thousands of sessions (the open-loop harness drives 1M)
// while the goroutine count tracks the in-flight window, not the
// session count.
type lane struct {
	sess *session

	mu      sync.Mutex
	q       []pipeJob
	running bool
}

// push appends a job and reports whether the caller must start a
// runner (the lane was idle). The queue is bounded in practice by the
// connection's in-flight window: every push holds a window slot.
func (ln *lane) push(job pipeJob) (startRunner bool) {
	ln.mu.Lock()
	ln.q = append(ln.q, job)
	if !ln.running {
		ln.running = true
		startRunner = true
	}
	ln.mu.Unlock()
	return
}

// tryClaim atomically claims an idle lane (no runner live, nothing
// queued) for inline execution on the read goroutine. While the claim
// is held no runner can exist — push only starts one when running is
// false — and no new job can be pushed, because the only dispatcher is
// the read goroutine, which is the claim holder. Together that gives
// the inline fast path the same in-session total order the runner
// gives queued jobs.
func (ln *lane) tryClaim() bool {
	ln.mu.Lock()
	ok := !ln.running && len(ln.q) == 0
	if ok {
		ln.running = true
	}
	ln.mu.Unlock()
	return ok
}

// releaseClaim returns a claimed lane to idle.
func (ln *lane) releaseClaim() {
	ln.mu.Lock()
	ln.running = false
	ln.mu.Unlock()
}

// pop takes the oldest queued job; ok=false means the queue is empty
// and the runner has relinquished the lane (running=false) — the next
// push starts a fresh runner.
func (ln *lane) pop() (job pipeJob, ok bool) {
	ln.mu.Lock()
	if len(ln.q) == 0 {
		ln.running = false
		ln.mu.Unlock()
		return pipeJob{}, false
	}
	job = ln.q[0]
	ln.q[0] = pipeJob{} // drop references while the tail sits queued
	ln.q = ln.q[1:]
	ln.mu.Unlock()
	return job, true
}

// pipeConn is the per-connection pipelining state for protocol v2.
// The reader goroutine dispatches into session lanes; lane goroutines
// execute and hand responses (out of order across lanes) to a writer
// goroutine that coalesces bursts into single flushes; the sem
// channel is the in-flight window.
type pipeConn struct {
	s   *Server
	ctx context.Context

	writeMu sync.Mutex
	bw      *bufio.Writer
	enc     *json.Encoder
	scratch []byte
	// dirty marks responses encoded into bw by the inline fast path but
	// not yet flushed. The reader flushes them (flushPending) just
	// before it would block on the kernel read — see flushConn — so a
	// pipelined burst of K inline answers costs one write syscall.
	// Guarded by writeMu.
	dirty bool

	sem   chan struct{}
	out   chan *Response
	wdone chan struct{}

	mu       sync.Mutex
	lanes    map[uint64]*lane
	inflight map[uint64]context.CancelFunc

	wg sync.WaitGroup
}

func newPipeConn(s *Server, ctx context.Context, conn net.Conn) *pipeConn {
	bw := bufio.NewWriterSize(conn, 64*1024)
	return &pipeConn{
		s:        s,
		ctx:      ctx,
		bw:       bw,
		enc:      json.NewEncoder(bw),
		sem:      make(chan struct{}, s.maxInFlight()),
		lanes:    make(map[uint64]*lane),
		inflight: make(map[uint64]context.CancelFunc),
	}
}

// encodeResp writes one response into the buffered writer, using the
// hand-rolled encoder for common shapes. writeMu must be held.
func (pc *pipeConn) encodeResp(resp *Response) error {
	pc.s.mWriteFrames.Inc()
	if buf, ok := appendResponse(pc.scratch[:0], resp); ok {
		pc.scratch = buf[:0]
		_, err := pc.bw.Write(buf)
		return err
	}
	return pc.enc.Encode(resp)
}

// flush flushes the buffered writer and clears the inline dirty mark
// (a flush empties bw wholesale). writeMu must be held.
func (pc *pipeConn) flush() error {
	pc.dirty = false
	pc.s.mWriteFlushes.Inc()
	return pc.bw.Flush()
}

// write encodes and flushes one response synchronously. It is the
// serial (v1) path; after the v2 upgrade all writes go through send.
func (pc *pipeConn) write(resp *Response) error {
	pc.writeMu.Lock()
	defer pc.writeMu.Unlock()
	if err := pc.encodeResp(resp); err != nil {
		return err
	}
	return pc.flush()
}

// sendInline encodes one response into the buffered writer WITHOUT
// flushing, marking the connection dirty; the flush happens when the
// reader is about to block (flushConn → flushPending) or when the
// coalescing writer next flushes a lane response. Encode errors mean
// the connection is dying; the read side surfaces the drop, same
// policy as runWriter.
func (pc *pipeConn) sendInline(resp *Response) {
	pc.writeMu.Lock()
	if err := pc.encodeResp(resp); err == nil {
		pc.dirty = true
	}
	pc.writeMu.Unlock()
}

// flushPending flushes inline responses parked in the buffered writer,
// if any. Called by the reader just before it would block on the
// kernel read, so a client waiting for its answer always gets it
// before the server waits for the client.
func (pc *pipeConn) flushPending() {
	pc.writeMu.Lock()
	if pc.dirty {
		_ = pc.flush()
	}
	pc.writeMu.Unlock()
}

// startWriter begins coalesced (v2) output: responses queue on out
// and the writer goroutine batches every burst into one flush, so
// under a full window many responses share a single write syscall.
func (pc *pipeConn) startWriter() {
	pc.out = make(chan *Response, cap(pc.sem)+16)
	pc.wdone = make(chan struct{})
	go pc.runWriter()
}

// send queues a response for the coalescing writer (v2 mode only).
func (pc *pipeConn) send(resp *Response) {
	pc.out <- resp
}

func (pc *pipeConn) runWriter() {
	defer close(pc.wdone)
	pooled := !pc.s.DisableEncodePooling
	for resp := range pc.out {
		pc.writeMu.Lock()
		err := pc.encodeResp(resp)
		if pooled {
			releaseResponse(resp)
		}
		yielded := false
	drain:
		for err == nil {
			select {
			case more, ok := <-pc.out:
				if !ok {
					break drain
				}
				err = pc.encodeResp(more)
				if pooled {
					releaseResponse(more)
				}
			default:
				// Before paying a write syscall for a short batch,
				// yield once: lanes that are about to produce more
				// responses get to enqueue them into this flush.
				if !yielded {
					yielded = true
					runtime.Gosched()
					continue
				}
				break drain
			}
		}
		if err == nil {
			err = pc.flush()
		}
		pc.writeMu.Unlock()
		// A write failure means the connection is dying; keep
		// draining so lanes never block, the read side surfaces the
		// drop.
		_ = err
	}
}

// adoptDefaultSession installs the pre-upgrade serial session as lane
// 0, so a connection that talked v1 first keeps its history across
// the upgrade.
func (pc *pipeConn) adoptDefaultSession(sess *session) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if _, ok := pc.lanes[0]; !ok {
		pc.startLaneLocked(0, sess)
	}
}

// lane returns (creating on first use) the ordered queue for a
// session ID. Only the reader goroutine calls it, so creation never
// races with shutdown.
func (pc *pipeConn) lane(sid uint64) *lane {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	ln, ok := pc.lanes[sid]
	if !ok {
		ln = pc.startLaneLocked(sid, pc.s.newSessionState())
	}
	return ln
}

func (pc *pipeConn) startLaneLocked(sid uint64, sess *session) *lane {
	ln := &lane{sess: sess}
	pc.lanes[sid] = ln
	return ln
}

// enqueue hands a dispatched job to its lane, spawning the lane's
// runner if it is idle.
func (pc *pipeConn) enqueue(ln *lane, job pipeJob) {
	if ln.push(job) {
		pc.wg.Add(1)
		go pc.runLane(ln)
	}
}

// runLane drains one lane's queue in order and exits when it is empty.
// Strict in-session order holds because push only starts a runner when
// none is live, and pop relinquishes the lane under the same lock that
// guards the queue.
func (pc *pipeConn) runLane(ln *lane) {
	defer pc.wg.Done()
	pooled := !pc.s.DisableEncodePooling
	for {
		job, ok := ln.pop()
		if !ok {
			return
		}
		// Pooled response: HandleCtx's value result is copied into a
		// recycled struct (the writer releases it after encoding), so a
		// warm request costs zero response-object allocations.
		var resp *Response
		if pooled {
			resp = acquireResponse()
		} else {
			resp = new(Response)
		}
		*resp = pc.s.HandleCtx(job.ctx, job.req, ln.sess)
		job.done()
		pc.s.accumulateFactStats(ln.sess)
		resp.ID = job.req.ID
		releaseRequest(job.req)
		pc.send(resp)
		<-pc.sem
	}
}

// beginRequest derives the request context (per-request deadline on
// top of the connection context) and registers its cancel fn under
// the request ID so a "cancel" op can abort it mid-decision.
func (pc *pipeConn) beginRequest(req *Request) (context.Context, func()) {
	var ctx context.Context
	var cancel context.CancelFunc
	if req.TimeoutMillis > 0 {
		ctx, cancel = context.WithTimeout(pc.ctx, time.Duration(req.TimeoutMillis)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(pc.ctx)
	}
	id := req.ID
	if id != 0 {
		pc.mu.Lock()
		pc.inflight[id] = cancel
		pc.mu.Unlock()
	}
	return ctx, func() {
		if id != 0 {
			pc.mu.Lock()
			delete(pc.inflight, id)
			pc.mu.Unlock()
		}
		cancel()
	}
}

// cancelRequest aborts an in-flight (dispatched, possibly executing)
// request. Unknown IDs — already completed, or never dispatched — are
// a no-op.
func (pc *pipeConn) cancelRequest(target uint64) {
	pc.mu.Lock()
	cancel := pc.inflight[target]
	pc.mu.Unlock()
	if cancel != nil {
		pc.s.mReqsCanceled.Inc()
		cancel()
	}
}

// shutdown waits for every live lane runner to drain its queue. The
// caller has already stopped dispatching and canceled the connection
// context, so queued jobs finish quickly with canceled responses that
// fail to write — both are fine. Runners exit on their own once their
// queues empty; with no new dispatches there is nothing to close.
func (pc *pipeConn) shutdown() {
	pc.wg.Wait()
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	s.mu.Lock()
	base := s.closeCtx
	s.mu.Unlock()
	if base == nil {
		base = context.Background()
	}
	connCtx, connCancel := context.WithCancel(base)
	defer connCancel()

	pc := newPipeConn(s, connCtx, conn)
	sess := s.newSessionState()
	// The reader interposes flushPending before every kernel read, so
	// inline-fastpath responses parked in the write buffer always reach
	// the wire before the server blocks waiting for the client.
	lr := newLineReader(flushConn{c: conn, flush: pc.flushPending}, s.maxLineBytes())

	v2 := false
	var readErr error
	for {
		if s.ReadTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.ReadTimeout))
		}
		line, err := lr.ReadLine()
		if err != nil {
			if err != io.EOF {
				readErr = err
			}
			break
		}
		req := acquireRequest()
		if !decodeRequest(line, req) {
			*req = Request{}
			if err := decodeRequestJSON(line, req); err != nil {
				releaseRequest(req)
				bad := &Response{
					Error: fmt.Sprintf("bad request: %v", err),
					Code:  acerr.CodeBadRequest,
				}
				if v2 {
					pc.send(bad)
				} else {
					_ = pc.write(bad)
				}
				continue
			}
		}
		if !v2 {
			// Serial (v1) mode: read, handle, respond, in order. A
			// hello carrying MaxProto >= 2 upgrades the connection to
			// pipelined mode from the next request on.
			resp := s.HandleCtx(connCtx, req, sess)
			s.accumulateFactStats(sess)
			resp.ID = req.ID
			releaseRequest(req)
			if resp.Proto >= ProtoV2 {
				v2 = true
				pc.adoptDefaultSession(sess)
				pc.startWriter()
			}
			if err := pc.write(&resp); err != nil {
				break
			}
			continue
		}
		s.dispatchV2(pc, req)
	}
	// Reader is done: abort in-flight work for this connection, drain
	// the lanes, then retire the writer once no lane can send again.
	connCancel()
	pc.shutdown()
	if v2 {
		close(pc.out)
		<-pc.wdone
	}

	// A read failure (over-long line, read error or timeout) drops
	// the connection; surface the cause to the client where the write
	// side still works, and log the drop. A clean EOF stays silent,
	// as does the deliberate read interruption of a graceful Close.
	if readErr != nil {
		s.mu.Lock()
		closing := s.closed
		s.mu.Unlock()
		if !closing {
			_ = pc.write(&Response{Error: fmt.Sprintf("connection dropped: %v", readErr)})
			s.logf("proxy: dropping %s: %v", conn.RemoteAddr(), readErr)
		}
	}
}

// dispatchV2 routes one pipelined request. Control ops (cancel,
// stats) are answered inline from the read loop — they must overtake
// the queued work they report on or abort. Warm queries take the
// inline fast path (tryInlineQuery) when their lane is idle.
// Everything else acquires a window slot (the backpressure point) and
// joins its session lane.
func (s *Server) dispatchV2(pc *pipeConn, req *Request) {
	switch req.Op {
	case "cancel":
		pc.cancelRequest(req.Target)
		if req.ID != 0 {
			pc.send(&Response{ID: req.ID, OK: true})
		}
		releaseRequest(req)
		return
	case "stats":
		id := req.ID
		releaseRequest(req)
		pc.send(&Response{ID: id, OK: true, Stats: s.StatsSnapshot()})
		return
	case "query":
		if s.tryInlineQuery(pc, req) {
			return
		}
	}
	pc.sem <- struct{}{}
	ctx, done := pc.beginRequest(req)
	pc.enqueue(pc.lane(req.SID), pipeJob{req: req, ctx: ctx, done: done})
}

// tryInlineQuery is the v2 inline fast path: when a query's session
// lane is idle and the decision is already warm (a front-cache hit),
// executing it right here on the read goroutine skips the window slot,
// the queue handoff, the runner wakeup, and the writer-channel round
// trip — the whole request is one goroutine's straight-line code.
// Reporting false means "not eligible, dispatch normally"; the request
// is untouched in that case.
//
// In-session order is preserved: tryClaim only succeeds when no runner
// is live and nothing is queued, and while the reader executes inline
// it cannot dispatch the session's next request. Cancellation needs no
// registration — a "cancel" for this request cannot be read until the
// inline execution has already finished. Requests with a per-request
// timeout, and servers running a slow-log, a shadow trial, or with
// enforcement off, all take the general path: those features need the
// full handleQuery/dualDecide plumbing.
func (s *Server) tryInlineQuery(pc *pipeConn, req *Request) bool {
	if s.DisableInlineFast || req.TimeoutMillis != 0 || s.SlowLogThreshold > 0 ||
		s.Mode == Off || s.Checker == nil || s.Checker.ShadowStaged() {
		return false
	}
	ln := pc.lane(req.SID)
	if !ln.tryClaim() {
		return false
	}
	if ln.sess.remote != nil {
		// Forwarded session: the owner decides; take the general path.
		ln.releaseClaim()
		return false
	}
	args, err := buildArgs(req)
	if err != nil {
		ln.releaseClaim()
		return false
	}
	sel, err := sqlparser.ParseSelectNorm(req.SQL)
	if err != nil {
		ln.releaseClaim()
		return false
	}
	d, ok := s.Checker.CheckWarmBorrowed(sel, args, ln.sess.attrs)
	if !ok {
		// Cold or deep-tier decision: release the lane and let the
		// general path decide (and count the front miss) off the read
		// goroutine.
		ln.releaseClaim()
		s.mInlineBypass.Inc()
		return false
	}
	start := time.Now()
	s.mQueries.Inc()
	pooled := !s.DisableEncodePooling
	var resp *Response
	if pooled {
		resp = acquireResponse()
	} else {
		resp = new(Response)
	}
	*resp = s.finishQuery(pc.ctx, req, ln.sess, sel, args, d)
	s.mQueryLat.Observe(time.Since(start).Microseconds())
	s.accumulateFactStats(ln.sess)
	resp.ID = req.ID
	releaseRequest(req)
	ln.releaseClaim()
	s.mInlineHits.Inc()
	pc.sendInline(resp)
	if pooled {
		releaseResponse(resp)
	}
	return true
}

// reqPool recycles decoded Requests. The read loop owns a Request
// until dispatch hands it to a lane; the lane runner releases it after
// the handler returns (responses never alias request memory — args and
// session attributes are decoded into fresh sqlvalue slices, and the
// trace copies the SQL string by value).
var reqPool = sync.Pool{New: func() any { return new(Request) }}

func acquireRequest() *Request { return reqPool.Get().(*Request) }

func releaseRequest(req *Request) {
	*req = Request{}
	reqPool.Put(req)
}

// respPool recycles v2 Responses. A lane runner (or the inline fast
// path) fills a pooled struct; the encoder copies its bytes into the
// connection's buffered writer and releases it — nothing downstream
// retains the pointer, so the round trip is allocation-free.
// DisableEncodePooling bypasses the pool for ablation runs.
var respPool = sync.Pool{New: func() any { return new(Response) }}

func acquireResponse() *Response { return respPool.Get().(*Response) }

func releaseResponse(resp *Response) {
	*resp = Response{}
	respPool.Put(resp)
}

// accumulateFactStats folds the session trace's fact-cache counters
// into the server totals as deltas (traces are per-session and die
// with the connection or the next hello).
func (s *Server) accumulateFactStats(sess *session) {
	st := sess.tr.FactCacheStats()
	if d := st.Reused - sess.factReused; d > 0 {
		s.mFactReused.Add(int64(d))
	}
	if d := st.Translated - sess.factTranslated; d > 0 {
		s.mFactTrans.Add(int64(d))
	}
	sess.factReused, sess.factTranslated = st.Reused, st.Translated
}

// Handle processes one request against a session with a background
// context. It is exported so in-process callers (tests, benchmarks,
// the examples) can use the proxy logic without a socket.
func (s *Server) Handle(req *Request, sess *session) Response {
	return s.HandleCtx(context.Background(), req, sess)
}

// HandleCtx processes one request against a session. The ctx bounds
// the compliance check and the engine scan; cancellation yields a
// response with the "canceled" error code.
func (s *Server) HandleCtx(ctx context.Context, req *Request, sess *session) Response {
	s.initObs()
	if isClusterOp(req.Op) {
		return s.handleClusterOp(ctx, req)
	}
	// A session owned by a cluster peer relays its work there: history
	// must accrue on exactly one node for decisions to stay sound.
	if sess.remote != nil {
		switch req.Op {
		case "query", "exec", "batch":
			return s.forwardRemote(ctx, req, sess)
		}
	}
	switch req.Op {
	case "hello":
		attrs := make(map[string]sqlvalue.Value, len(req.Session))
		for k, v := range req.Session {
			sv, err := decodeValue(v)
			if err != nil {
				return Response{
					Error: fmt.Sprintf("session attribute %s: %v", k, err),
					Code:  acerr.CodeBadRequest,
				}
			}
			attrs[k] = sv
		}
		sess.attrs = attrs
		sess.name = req.Name
		if resp, forwarded := s.handleClusterHello(ctx, req, sess); forwarded {
			return resp
		}
		resp := Response{OK: true}
		if s.LazyWAL && req.Name != "" && s.WALDir != "" && s.Durable() == nil {
			// Deferred WAL open: the first durable hello pays for it; a
			// node that only forwards never does.
			if err := s.OpenDurable(); err != nil {
				return Response{Error: err.Error(), Code: acerr.CodeEngine}
			}
		}
		if wal := s.Durable(); wal != nil && req.Name != "" {
			// Durable session: the trace is shared, WAL-hooked, and —
			// after a restart — restored with its pre-crash history.
			tr, restored, err := wal.Session(req.Name, attrs)
			if err != nil {
				return Response{Error: err.Error(), Code: acerr.CodeEngine}
			}
			sess.tr = tr
			resp.Restored = restored
			if restored > 0 && s.Checker != nil {
				// Pre-derive the restored history's facts so the first
				// post-recovery decision pays cache extension, not a
				// full re-translation.
				s.Checker.WarmTrace(tr)
			}
		} else {
			sess.tr = &trace.Trace{}
			if s.HistoryWindow > 0 {
				sess.tr.SetWindow(s.HistoryWindow)
			}
		}
		// Baseline the fact-cache delta at the trace's current counters:
		// a restored (and possibly warmed) trace arrives with history
		// already translated, which is not this connection's work.
		fs := sess.tr.FactCacheStats()
		sess.factReused, sess.factTranslated = fs.Reused, fs.Translated
		if req.MaxProto >= ProtoV2 {
			resp.Proto = ProtoV2
		}
		return resp

	case "query":
		return s.handleQuery(ctx, req, sess)

	case "exec":
		return s.handleExec(ctx, req)

	case "batch":
		return s.handleBatch(ctx, req, sess)

	case "cancel":
		// Serial mode has nothing in flight to cancel; acknowledge.
		return Response{OK: true}

	case "stats":
		return Response{OK: true, Stats: s.StatsSnapshot()}

	case "policy.stage":
		if _, err := s.StagePolicy(req.Views); err != nil {
			return Response{Error: err.Error(), Code: acerr.CodeBadRequest}
		}
		return Response{OK: true, Policy: s.policyStatus(0, false)}

	case "policy.promote":
		if _, err := s.PromotePolicy(); err != nil {
			return Response{Error: err.Error(), Code: acerr.CodeBadRequest}
		}
		return Response{OK: true, Policy: s.policyStatus(0, false)}

	case "policy.rollback":
		if _, err := s.RollbackPolicy(); err != nil {
			return Response{Error: err.Error(), Code: acerr.CodeBadRequest}
		}
		return Response{OK: true, Policy: s.policyStatus(0, false)}

	case "policy.status":
		return Response{OK: true, Policy: s.policyStatus(0, false)}

	case "policy.diff":
		return Response{OK: true, Policy: s.policyStatus(req.Target, true)}
	}
	return Response{Error: fmt.Sprintf("unknown op %q", req.Op), Code: acerr.CodeBadRequest}
}

// StatsSnapshot assembles the extended server counters: decision and
// fact-cache hit rates, latency percentiles over the recent window,
// and connection accounting.
func (s *Server) StatsSnapshot() *StatsBody {
	s.initObs()
	cs := s.Checker.Stats()
	body := &StatsBody{
		Queries:    int(s.mQueries.Value()),
		Decisions:  cs.Decisions,
		Allowed:    cs.Allowed,
		Blocked:    cs.Blocked,
		CacheHits:  cs.CacheHits,
		Violations: int(s.mViolations.Value()),

		CacheEntries:          cs.CacheEntries,
		FactEntriesReused:     uint64(s.mFactReused.Value()),
		FactEntriesTranslated: uint64(s.mFactTrans.Value()),

		ColdViewsKept:   cs.ColdViewsKept,
		ColdViewsPruned: cs.ColdViewsPruned,
		ColdWorkersBusy: cs.ColdWorkersBusy,

		TotalConns:    int(s.mConnsTotal.Value()),
		RejectedConns: int(s.mConnsRejected.Value()),
		CanceledReqs:  int(s.mReqsCanceled.Value()),

		InlineHits:   int(s.mInlineHits.Value()),
		InlineBypass: int(s.mInlineBypass.Value()),
		WriteFrames:  int(s.mWriteFrames.Value()),
		WriteFlushes: int(s.mWriteFlushes.Value()),
	}
	if cs.Decisions > 0 {
		body.CacheHitRate = float64(cs.CacheHits) / float64(cs.Decisions)
	}
	if tot := body.FactEntriesReused + body.FactEntriesTranslated; tot > 0 {
		body.FactCacheHitRate = float64(body.FactEntriesReused) / float64(tot)
	}
	if tot := cs.ColdViewsKept + cs.ColdViewsPruned; tot > 0 {
		body.ColdPruneRatio = float64(cs.ColdViewsPruned) / float64(tot)
	}
	s.mu.Lock()
	body.ActiveConns = len(s.conns)
	wal := s.wal
	s.mu.Unlock()
	if wal != nil {
		ws := wal.Stats()
		body.WALEnabled = true
		body.WALAppends = ws.Appends
		body.WALBatches = ws.Batches
		body.WALFsyncs = ws.Fsyncs
		body.WALAppendedBytes = ws.AppendedBytes
		body.WALCheckpoints = ws.Checkpoints
		body.WALRecoveredSessions = wal.RecoveredSessionCount()
		body.WALRecoveredEntries = wal.RecoveredEntryCount()
	}
	hs := s.mQueryLat.Snapshot()
	body.LatencyP50Micros, body.LatencyP90Micros, body.LatencyP99Micros = hs.P50, hs.P90, hs.P99
	body.LatencySamples, body.LatencyMeanMicros = int(hs.Count), hs.Mean
	return body
}

// NewSession creates a fresh in-process session for Handle.
func NewSession(attrs map[string]sqlvalue.Value) *Session {
	if attrs == nil {
		attrs = map[string]sqlvalue.Value{}
	}
	return &Session{inner: &session{attrs: attrs, tr: &trace.Trace{}}}
}

// Session is the exported handle for in-process use.
type Session struct{ inner *session }

// Trace exposes the session's query history.
func (s *Session) Trace() *trace.Trace { return s.inner.tr }

// HandleIn processes a request against an exported session.
func (s *Server) HandleIn(req *Request, sess *Session) Response {
	return s.Handle(req, sess.inner)
}

// HandleInCtx processes a request against an exported session under a
// caller-supplied context.
func (s *Server) HandleInCtx(ctx context.Context, req *Request, sess *Session) Response {
	return s.HandleCtx(ctx, req, sess.inner)
}

func canceledResponse(ctx context.Context) Response {
	return Response{
		Error: fmt.Sprintf("canceled: %v", ctx.Err()),
		Code:  acerr.CodeCanceled,
	}
}

// handleQuery wraps the query path in timing: every query lands in the
// proxy.query.micros histogram, and — when SlowLogThreshold is set — a
// query that overruns it emits one structured slow-decision line with
// the verdict, the cache tier that answered, and the per-stage
// breakdown collected through the request's SpanSet.
func (s *Server) handleQuery(ctx context.Context, req *Request, sess *session) Response {
	start := time.Now()
	var spans *obsv.SpanSet
	if s.SlowLogThreshold > 0 {
		ctx, spans = obsv.WithSpanSet(ctx)
	}
	resp, d := s.runQuery(ctx, req, sess)
	elapsed := time.Since(start)
	s.mQueryLat.Observe(elapsed.Microseconds())
	if spans != nil && elapsed >= s.SlowLogThreshold {
		s.mSlowQueries.Inc()
		s.slowLog(req, &resp, d, elapsed, spans)
	}
	return resp
}

// slowLog emits one slow-decision record as a single JSON line through
// Logf. Schema: DESIGN.md §9.
func (s *Server) slowLog(req *Request, resp *Response, d checker.Decision, elapsed time.Duration, spans *obsv.SpanSet) {
	verdict := "allowed"
	switch {
	case resp.Blocked:
		verdict = "blocked"
	case resp.Error != "":
		verdict = "error"
	}
	rec := struct {
		Event       string           `json:"event"`
		SQL         string           `json:"sql"`
		TotalMicros int64            `json:"totalMicros"`
		Decision    string           `json:"decision"`
		Tier        string           `json:"tier,omitempty"`
		Reason      string           `json:"reason,omitempty"`
		StageMicros map[string]int64 `json:"stageMicros,omitempty"`
	}{
		Event:       "slow_query",
		SQL:         req.SQL,
		TotalMicros: elapsed.Microseconds(),
		Decision:    verdict,
		Tier:        d.Tier,
		Reason:      d.Reason,
		StageMicros: spans.Micros(),
	}
	if b, err := json.Marshal(rec); err == nil {
		s.logf("%s", b)
	}
}

// runQuery is the query path proper: check, execute, record history.
// The returned Decision is the checker's verdict (zero-valued when the
// request failed before or without a check).
func (s *Server) runQuery(ctx context.Context, req *Request, sess *session) (Response, checker.Decision) {
	var d checker.Decision
	s.mQueries.Inc()

	if ctx.Err() != nil {
		return canceledResponse(ctx), d
	}
	args, err := buildArgs(req)
	if err != nil {
		return Response{Error: err.Error(), Code: acerr.CodeBadRequest}, d
	}
	// Normalizing parse: `$N` / `:name` spellings alias to the same
	// shared statement as the canonical form, so decisions and the
	// checker's statement-identity caches agree across ingress surfaces
	// (v2 protocol, Postgres wire, database/sql driver).
	sel, err := sqlparser.ParseSelectNorm(req.SQL)
	if err != nil {
		return Response{Error: err.Error(), Code: acerr.CodeParse}, d
	}

	if s.Mode != Off {
		// Borrowed check: the proxy only reads the scalar verdict
		// (Allowed/Reason/Tier), never Decision.Views, so the zero-copy
		// variant is safe and keeps warm hits allocation-free. With a
		// candidate staged the dual-decide path checks both policies; the
		// active verdict always enforces.
		if s.Checker.ShadowStaged() {
			d = s.dualDecide(ctx, req, sel, args, sess)
		} else {
			d = s.Checker.CheckBorrowed(ctx, sel, args, sess.attrs, sess.tr)
		}
		if ctx.Err() != nil {
			return canceledResponse(ctx), d
		}
	}
	return s.finishQuery(ctx, req, sess, sel, args, d), d
}

// finishQuery is the post-decision half of the query path, shared by
// runQuery and the inline fast path: enforce the verdict, bind,
// execute, record history, build the response.
func (s *Server) finishQuery(ctx context.Context, req *Request, sess *session, sel *sqlparser.SelectStmt, args sqlparser.Args, d checker.Decision) Response {
	if s.Mode != Off && !d.Allowed {
		if s.Mode == Enforce {
			return Response{OK: true, Blocked: true, Reason: d.Reason, Code: acerr.CodeBlocked}
		}
		s.mViolations.Inc()
	}

	bound, err := sqlparser.Bind(sel, args)
	if err != nil {
		return Response{Error: err.Error(), Code: acerr.CodeBadRequest}
	}
	res, err := s.DB.QueryCtx(ctx, bound.(*sqlparser.SelectStmt))
	if err != nil {
		if errors.Is(err, acerr.ErrCanceled) {
			return Response{Error: err.Error(), Code: acerr.CodeCanceled}
		}
		return Response{Error: err.Error(), Code: acerr.CodeEngine}
	}

	// Record in history (queries the application actually saw answers
	// to are what future decisions may rely on). With enforcement off
	// nothing ever reads the trace, so don't grow it.
	rows := make([][]sqlvalue.Value, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = append([]sqlvalue.Value(nil), r...)
	}
	if s.Mode != Off {
		sess.tr.Append(trace.Entry{
			SQL: req.SQL, Stmt: sel, Args: args,
			Columns: res.Columns, Rows: rows,
		})
	}

	return Response{OK: true, Columns: res.Columns, Rows: encodeRows(rows)}
}

func (s *Server) handleExec(ctx context.Context, req *Request) Response {
	if ctx.Err() != nil {
		return canceledResponse(ctx)
	}
	args, err := buildArgs(req)
	if err != nil {
		return Response{Error: err.Error(), Code: acerr.CodeBadRequest}
	}
	// Writes pass through: the paper's setting controls data
	// revelation (reads); write authorization stays in the app.
	stmt, err := sqlparser.ParseNorm(req.SQL)
	if err != nil {
		return Response{Error: err.Error(), Code: acerr.CodeParse}
	}
	_, n, err := s.DB.ExecStmt(stmt, args)
	if err != nil {
		return Response{Error: err.Error(), Code: acerr.CodeEngine}
	}
	return Response{OK: true, Affected: n}
}

// handleBatch executes a batch's sub-requests in order on the batch's
// session and collects one sub-response each. Sub-requests share the
// batch's context; a blocked or failing sub-query records its outcome
// and the batch continues — the client decides what a partial batch
// means.
func (s *Server) handleBatch(ctx context.Context, req *Request, sess *session) Response {
	out := Response{OK: true, Batch: make([]Response, 0, len(req.Batch))}
	for i := range req.Batch {
		sub := &req.Batch[i]
		var r Response
		switch sub.Op {
		case "query":
			r = s.handleQuery(ctx, sub, sess)
		case "exec":
			r = s.handleExec(ctx, sub)
		default:
			r = Response{
				Error: fmt.Sprintf("batch: unsupported op %q", sub.Op),
				Code:  acerr.CodeBadRequest,
			}
		}
		r.ID = sub.ID
		out.Batch = append(out.Batch, r)
	}
	return out
}

func buildArgs(req *Request) (sqlparser.Args, error) {
	var args sqlparser.Args
	if len(req.Args) > 0 {
		vals, err := decodeValues(req.Args)
		if err != nil {
			return args, err
		}
		args.Positional = vals
	}
	if len(req.Named) > 0 {
		args.Named = make(map[string]sqlvalue.Value, len(req.Named))
		for k, v := range req.Named {
			sv, err := decodeValue(v)
			if err != nil {
				return args, err
			}
			args.Named[k] = sv
		}
	}
	return args, nil
}
