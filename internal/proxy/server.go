package proxy

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"repro/internal/checker"
	"repro/internal/engine"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// Server is the enforcement proxy: it owns the database engine and a
// compliance checker and serves the line protocol.
type Server struct {
	DB      *engine.DB
	Checker *checker.Checker
	Mode    Mode

	mu         sync.Mutex
	ln         net.Listener
	violations int
	queries    int
}

// NewServer builds a proxy server over the engine and checker.
func NewServer(db *engine.DB, c *checker.Checker, mode Mode) *Server {
	return &Server{DB: db, Checker: c, Mode: mode}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0").
// It returns the bound address immediately; connections are served on
// background goroutines until Close.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		err := s.ln.Close()
		s.ln = nil
		return err
	}
	return nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		go s.serveConn(conn)
	}
}

// session is per-connection state: principal attributes and history.
type session struct {
	attrs map[string]sqlvalue.Value
	tr    *trace.Trace
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	sess := &session{attrs: map[string]sqlvalue.Value{}, tr: &trace.Trace{}}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		var req Request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			_ = enc.Encode(Response{Error: fmt.Sprintf("bad request: %v", err)})
			continue
		}
		resp := s.Handle(&req, sess)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// Handle processes one request against a session. It is exported so
// in-process callers (tests, benchmarks, the examples) can use the
// proxy logic without a socket.
func (s *Server) Handle(req *Request, sess *session) Response {
	switch req.Op {
	case "hello":
		attrs := make(map[string]sqlvalue.Value, len(req.Session))
		for k, v := range req.Session {
			sv, err := decodeValue(v)
			if err != nil {
				return Response{Error: fmt.Sprintf("session attribute %s: %v", k, err)}
			}
			attrs[k] = sv
		}
		sess.attrs = attrs
		sess.tr = &trace.Trace{}
		return Response{OK: true}

	case "query":
		return s.handleQuery(req, sess)

	case "exec":
		return s.handleExec(req)

	case "stats":
		cs := s.Checker.Stats()
		s.mu.Lock()
		body := &StatsBody{
			Queries:    s.queries,
			Allowed:    cs.Allowed,
			Blocked:    cs.Blocked,
			CacheHits:  cs.CacheHits,
			Violations: s.violations,
		}
		s.mu.Unlock()
		return Response{OK: true, Stats: body}
	}
	return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
}

// NewSession creates a fresh in-process session for Handle.
func NewSession(attrs map[string]sqlvalue.Value) *Session {
	if attrs == nil {
		attrs = map[string]sqlvalue.Value{}
	}
	return &Session{inner: &session{attrs: attrs, tr: &trace.Trace{}}}
}

// Session is the exported handle for in-process use.
type Session struct{ inner *session }

// Trace exposes the session's query history.
func (s *Session) Trace() *trace.Trace { return s.inner.tr }

// HandleIn processes a request against an exported session.
func (s *Server) HandleIn(req *Request, sess *Session) Response {
	return s.Handle(req, sess.inner)
}

func (s *Server) handleQuery(req *Request, sess *session) Response {
	s.mu.Lock()
	s.queries++
	s.mu.Unlock()

	args, err := buildArgs(req)
	if err != nil {
		return Response{Error: err.Error()}
	}
	sel, err := sqlparser.ParseSelect(req.SQL)
	if err != nil {
		return Response{Error: err.Error()}
	}

	if s.Mode != Off {
		d := s.Checker.Check(sel, args, sess.attrs, sess.tr)
		if !d.Allowed {
			if s.Mode == Enforce {
				return Response{OK: true, Blocked: true, Reason: d.Reason}
			}
			s.mu.Lock()
			s.violations++
			s.mu.Unlock()
		}
	}

	bound, err := sqlparser.Bind(sel, args)
	if err != nil {
		return Response{Error: err.Error()}
	}
	res, err := s.DB.Query(bound.(*sqlparser.SelectStmt))
	if err != nil {
		return Response{Error: err.Error()}
	}

	// Record in history (queries the application actually saw answers
	// to are what future decisions may rely on).
	rows := make([][]sqlvalue.Value, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = append([]sqlvalue.Value(nil), r...)
	}
	sess.tr.Append(trace.Entry{
		SQL: req.SQL, Stmt: sel, Args: args,
		Columns: res.Columns, Rows: rows,
	})

	return Response{OK: true, Columns: res.Columns, Rows: encodeRows(rows)}
}

func (s *Server) handleExec(req *Request) Response {
	args, err := buildArgs(req)
	if err != nil {
		return Response{Error: err.Error()}
	}
	// Writes pass through: the paper's setting controls data
	// revelation (reads); write authorization stays in the app.
	_, n, err := s.DB.Exec(req.SQL, args)
	if err != nil {
		return Response{Error: err.Error()}
	}
	return Response{OK: true, Affected: n}
}

func buildArgs(req *Request) (sqlparser.Args, error) {
	var args sqlparser.Args
	if len(req.Args) > 0 {
		vals, err := decodeValues(req.Args)
		if err != nil {
			return args, err
		}
		args.Positional = vals
	}
	if len(req.Named) > 0 {
		args.Named = make(map[string]sqlvalue.Value, len(req.Named))
		for k, v := range req.Named {
			sv, err := decodeValue(v)
			if err != nil {
				return args, err
			}
			args.Named[k] = sv
		}
	}
	return args, nil
}
