package proxy

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checker"
	"repro/internal/engine"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// Default hardening knobs (overridable per Server before Listen).
const (
	// DefaultMaxConns bounds simultaneous connections.
	DefaultMaxConns = 1024
	// DefaultMaxLineBytes bounds one request line.
	DefaultMaxLineBytes = 16 * 1024 * 1024
	// latencyWindow is how many recent query latencies the percentile
	// estimator keeps.
	latencyWindow = 4096
)

// Server is the enforcement proxy: it owns the database engine and a
// compliance checker and serves the line protocol. The exported knob
// fields must be set before Listen.
type Server struct {
	DB      *engine.DB
	Checker *checker.Checker
	Mode    Mode

	// MaxConns bounds simultaneous connections; excess connections get
	// one error Response and are closed. 0 means DefaultMaxConns;
	// negative means unlimited.
	MaxConns int
	// ReadTimeout is the per-connection idle read deadline; a
	// connection that sends nothing for this long is dropped. 0
	// disables the deadline.
	ReadTimeout time.Duration
	// MaxLineBytes bounds one request line; an over-long line gets a
	// final error Response and the connection is closed. 0 means
	// DefaultMaxLineBytes.
	MaxLineBytes int
	// Logf, when set, receives connection-level diagnostics (dropped
	// connections, rejected dials). Defaults to log.Printf.
	Logf func(format string, args ...any)

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool

	violations    atomic.Int64
	queries       atomic.Int64
	totalConns    atomic.Int64
	rejectedConns atomic.Int64

	// Fact-cache counters aggregated across (short-lived) sessions.
	factReused     atomic.Uint64
	factTranslated atomic.Uint64

	lat latencyRing
}

// latencyRing keeps the most recent query latencies for percentile
// estimation — a fixed window so stats cost stays O(1) per query.
type latencyRing struct {
	mu    sync.Mutex
	buf   [latencyWindow]int64 // microseconds
	n     int                  // total recorded
	total int64                // sum over all recorded, microseconds
}

func (r *latencyRing) record(d time.Duration) {
	us := d.Microseconds()
	r.mu.Lock()
	r.buf[r.n%latencyWindow] = us
	r.n++
	r.total += us
	r.mu.Unlock()
}

// percentiles returns p50/p90/p99 over the window plus the sample
// count and overall mean.
func (r *latencyRing) percentiles() (p50, p90, p99 int64, samples int, mean float64) {
	r.mu.Lock()
	n := r.n
	if n > latencyWindow {
		n = latencyWindow
	}
	window := append([]int64(nil), r.buf[:n]...)
	total, count := r.total, r.n
	r.mu.Unlock()
	if n == 0 {
		return 0, 0, 0, count, 0
	}
	// Insertion sort is fine at window size; avoids importing sort for
	// int64 pre-1.21-slices idiom.
	for i := 1; i < len(window); i++ {
		for j := i; j > 0 && window[j] < window[j-1]; j-- {
			window[j], window[j-1] = window[j-1], window[j]
		}
	}
	at := func(p float64) int64 {
		i := int(p * float64(n-1))
		return window[i]
	}
	return at(0.50), at(0.90), at(0.99), count, float64(total) / float64(count)
}

// NewServer builds a proxy server over the engine and checker.
func NewServer(db *engine.DB, c *checker.Checker, mode Mode) *Server {
	return &Server{DB: db, Checker: c, Mode: mode, conns: make(map[net.Conn]struct{})}
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

func (s *Server) maxConns() int {
	switch {
	case s.MaxConns > 0:
		return s.MaxConns
	case s.MaxConns < 0:
		return int(^uint(0) >> 1) // unlimited
	default:
		return DefaultMaxConns
	}
}

func (s *Server) maxLineBytes() int {
	if s.MaxLineBytes > 0 {
		return s.MaxLineBytes
	}
	return DefaultMaxLineBytes
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0").
// It returns the bound address immediately; connections are served on
// background goroutines until Close.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.closed = false
	s.ln = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener and drains in-flight connections: it
// interrupts each connection's pending read, lets any request already
// being handled finish and write its response, and only then returns.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed && s.ln == nil {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	var err error
	if s.ln != nil {
		err = s.ln.Close()
		s.ln = nil
	}
	// Wake blocked readers (and writers stuck on dead peers); handlers
	// mid-request finish normally and notice on the next read.
	for c := range s.conns {
		_ = c.SetDeadline(time.Now())
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.totalConns.Add(1)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if len(s.conns) >= s.maxConns() {
			s.mu.Unlock()
			s.rejectedConns.Add(1)
			_ = json.NewEncoder(conn).Encode(Response{Error: "server at connection limit"})
			conn.Close()
			s.logf("proxy: rejected %s: connection limit (%d) reached", conn.RemoteAddr(), s.maxConns())
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// session is per-connection state: principal attributes and history.
type session struct {
	attrs map[string]sqlvalue.Value
	tr    *trace.Trace
	// Last-seen fact-cache counters, for delta aggregation into the
	// server totals (the trace is replaced on every hello).
	factReused, factTranslated uint64
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	sess := &session{attrs: map[string]sqlvalue.Value{}, tr: &trace.Trace{}}
	sc := bufio.NewScanner(conn)
	// The scanner's limit is max(cap(buf), limit), so the initial
	// buffer must not exceed the configured line bound.
	initial := 64 * 1024
	if m := s.maxLineBytes(); m < initial {
		initial = m
	}
	sc.Buffer(make([]byte, 0, initial), s.maxLineBytes())
	enc := json.NewEncoder(conn)
	for {
		if s.ReadTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.ReadTimeout))
		}
		if !sc.Scan() {
			break
		}
		var req Request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			_ = enc.Encode(Response{Error: fmt.Sprintf("bad request: %v", err)})
			continue
		}
		resp := s.Handle(&req, sess)
		s.accumulateFactStats(sess)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
	// A scanner failure (over-long line, read error or timeout) drops
	// the connection; surface the cause to the client where the write
	// side still works, and log the drop. A clean EOF stays silent,
	// as does the deliberate read interruption of a graceful Close.
	if err := sc.Err(); err != nil {
		s.mu.Lock()
		closing := s.closed
		s.mu.Unlock()
		if !closing {
			_ = enc.Encode(Response{Error: fmt.Sprintf("connection dropped: %v", err)})
			s.logf("proxy: dropping %s: %v", conn.RemoteAddr(), err)
		}
	}
}

// accumulateFactStats folds the session trace's fact-cache counters
// into the server totals as deltas (traces are per-session and die
// with the connection or the next hello).
func (s *Server) accumulateFactStats(sess *session) {
	st := sess.tr.FactCacheStats()
	if d := st.Reused - sess.factReused; d > 0 {
		s.factReused.Add(d)
	}
	if d := st.Translated - sess.factTranslated; d > 0 {
		s.factTranslated.Add(d)
	}
	sess.factReused, sess.factTranslated = st.Reused, st.Translated
}

// Handle processes one request against a session. It is exported so
// in-process callers (tests, benchmarks, the examples) can use the
// proxy logic without a socket.
func (s *Server) Handle(req *Request, sess *session) Response {
	switch req.Op {
	case "hello":
		attrs := make(map[string]sqlvalue.Value, len(req.Session))
		for k, v := range req.Session {
			sv, err := decodeValue(v)
			if err != nil {
				return Response{Error: fmt.Sprintf("session attribute %s: %v", k, err)}
			}
			attrs[k] = sv
		}
		sess.attrs = attrs
		sess.tr = &trace.Trace{}
		sess.factReused, sess.factTranslated = 0, 0
		return Response{OK: true}

	case "query":
		return s.handleQuery(req, sess)

	case "exec":
		return s.handleExec(req)

	case "stats":
		return Response{OK: true, Stats: s.StatsSnapshot()}
	}
	return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
}

// StatsSnapshot assembles the extended server counters: decision and
// fact-cache hit rates, latency percentiles over the recent window,
// and connection accounting.
func (s *Server) StatsSnapshot() *StatsBody {
	cs := s.Checker.Stats()
	body := &StatsBody{
		Queries:    int(s.queries.Load()),
		Decisions:  cs.Decisions,
		Allowed:    cs.Allowed,
		Blocked:    cs.Blocked,
		CacheHits:  cs.CacheHits,
		Violations: int(s.violations.Load()),

		CacheEntries:          cs.CacheEntries,
		FactEntriesReused:     s.factReused.Load(),
		FactEntriesTranslated: s.factTranslated.Load(),

		TotalConns:    int(s.totalConns.Load()),
		RejectedConns: int(s.rejectedConns.Load()),
	}
	if cs.Decisions > 0 {
		body.CacheHitRate = float64(cs.CacheHits) / float64(cs.Decisions)
	}
	if tot := body.FactEntriesReused + body.FactEntriesTranslated; tot > 0 {
		body.FactCacheHitRate = float64(body.FactEntriesReused) / float64(tot)
	}
	s.mu.Lock()
	body.ActiveConns = len(s.conns)
	s.mu.Unlock()
	body.LatencyP50Micros, body.LatencyP90Micros, body.LatencyP99Micros,
		body.LatencySamples, body.LatencyMeanMicros = s.lat.percentiles()
	return body
}

// NewSession creates a fresh in-process session for Handle.
func NewSession(attrs map[string]sqlvalue.Value) *Session {
	if attrs == nil {
		attrs = map[string]sqlvalue.Value{}
	}
	return &Session{inner: &session{attrs: attrs, tr: &trace.Trace{}}}
}

// Session is the exported handle for in-process use.
type Session struct{ inner *session }

// Trace exposes the session's query history.
func (s *Session) Trace() *trace.Trace { return s.inner.tr }

// HandleIn processes a request against an exported session.
func (s *Server) HandleIn(req *Request, sess *Session) Response {
	return s.Handle(req, sess.inner)
}

func (s *Server) handleQuery(req *Request, sess *session) Response {
	start := time.Now()
	defer func() { s.lat.record(time.Since(start)) }()
	s.queries.Add(1)

	args, err := buildArgs(req)
	if err != nil {
		return Response{Error: err.Error()}
	}
	sel, err := sqlparser.ParseSelect(req.SQL)
	if err != nil {
		return Response{Error: err.Error()}
	}

	if s.Mode != Off {
		d := s.Checker.Check(sel, args, sess.attrs, sess.tr)
		if !d.Allowed {
			if s.Mode == Enforce {
				return Response{OK: true, Blocked: true, Reason: d.Reason}
			}
			s.violations.Add(1)
		}
	}

	bound, err := sqlparser.Bind(sel, args)
	if err != nil {
		return Response{Error: err.Error()}
	}
	res, err := s.DB.Query(bound.(*sqlparser.SelectStmt))
	if err != nil {
		return Response{Error: err.Error()}
	}

	// Record in history (queries the application actually saw answers
	// to are what future decisions may rely on).
	rows := make([][]sqlvalue.Value, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = append([]sqlvalue.Value(nil), r...)
	}
	sess.tr.Append(trace.Entry{
		SQL: req.SQL, Stmt: sel, Args: args,
		Columns: res.Columns, Rows: rows,
	})

	return Response{OK: true, Columns: res.Columns, Rows: encodeRows(rows)}
}

func (s *Server) handleExec(req *Request) Response {
	args, err := buildArgs(req)
	if err != nil {
		return Response{Error: err.Error()}
	}
	// Writes pass through: the paper's setting controls data
	// revelation (reads); write authorization stays in the app.
	_, n, err := s.DB.Exec(req.SQL, args)
	if err != nil {
		return Response{Error: err.Error()}
	}
	return Response{OK: true, Affected: n}
}

func buildArgs(req *Request) (sqlparser.Args, error) {
	var args sqlparser.Args
	if len(req.Args) > 0 {
		vals, err := decodeValues(req.Args)
		if err != nil {
			return args, err
		}
		args.Positional = vals
	}
	if len(req.Named) > 0 {
		args.Named = make(map[string]sqlvalue.Value, len(req.Named))
		for k, v := range req.Named {
			sv, err := decodeValue(v)
			if err != nil {
				return args, err
			}
			args.Named[k] = sv
		}
	}
	return args, nil
}
