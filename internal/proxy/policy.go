package proxy

import (
	"context"
	"encoding/json"
	"time"

	"repro/internal/checker"
	"repro/internal/durable"
	"repro/internal/policy"
	"repro/internal/sqlparser"
)

// The online policy lifecycle, server side. A candidate policy staged
// through StagePolicy (or the v2 "policy.stage" op) puts the proxy in
// shadow mode: every live query decides under BOTH the active and the
// candidate policy. The active verdict enforces; a disagreement — the
// candidate would block what the active allows ("tighten") or allow
// what it blocks ("loosen") — becomes a ShadowDiff record that goes to
// the structured log, to any registered subscribers, and into a
// bounded ring the "policy.diff" op polls. Promote swaps the candidate
// in (its shadow-warmed caches come with it); Rollback discards it.
// With a WAL open, every lifecycle step is also a durable record, so a
// crash mid-trial restores both versions (see OpenDurable).

// shadowDiffRingMax bounds the divergence ring. Oldest records evict
// first; the monotone Seq lets a poller detect the gap.
const shadowDiffRingMax = 256

// StagePolicy builds a candidate policy from view SQL over the active
// policy's schema and stages it for shadow dual-decide. With a WAL
// open the stage is persisted before StagePolicy returns; a WAL
// failure un-stages the candidate so memory and log never disagree.
func (s *Server) StagePolicy(views map[string]string) (checker.PolicyVersion, error) {
	s.initObs()
	pol, err := policy.New(s.Checker.Policy().Schema, views)
	if err != nil {
		return checker.PolicyVersion{}, err
	}
	pv, err := s.Checker.StagePolicy(pol)
	if err != nil {
		return checker.PolicyVersion{}, err
	}
	if wal := s.Durable(); wal != nil {
		id := durable.PolicyID{Fingerprint: pv.Fingerprint, Views: views}
		if s.DB != nil {
			id.DBHash = s.DB.ContentHash()
		}
		if _, err := wal.StagePolicy(id); err != nil {
			_, _ = s.Checker.Rollback()
			return checker.PolicyVersion{}, err
		}
	}
	s.logf("proxy: staged candidate policy (epoch %d, %d views); shadow dual-decide on", pv.Epoch, pv.Views)
	return pv, nil
}

// PromotePolicy makes the staged candidate the enforcing policy. The
// promoted version keeps its epoch, so the cache entries its shadow
// decisions warmed serve enforcement immediately. The divergence ring
// is cleared — its records describe a trial that is over.
func (s *Server) PromotePolicy() (checker.PolicyVersion, error) {
	s.initObs()
	pv, err := s.Checker.Promote()
	if err != nil {
		return checker.PolicyVersion{}, err
	}
	if wal := s.Durable(); wal != nil {
		if _, werr := wal.PromotePolicy(); werr != nil {
			// The in-memory promote already happened and must not be
			// undone (decisions may be flowing under it); surface the
			// durability gap loudly instead.
			s.logf("proxy: WAL promote record lost (recovery will restore the pre-promote policy): %v", werr)
		}
	}
	s.clearShadowDiffs()
	s.logf("proxy: promoted candidate policy (epoch %d); shadow dual-decide off", pv.Epoch)
	return pv, nil
}

// RollbackPolicy discards the staged candidate and ends shadow mode.
func (s *Server) RollbackPolicy() (checker.PolicyVersion, error) {
	s.initObs()
	pv, err := s.Checker.Rollback()
	if err != nil {
		return checker.PolicyVersion{}, err
	}
	if wal := s.Durable(); wal != nil {
		if _, werr := wal.RollbackPolicy(); werr != nil {
			s.logf("proxy: WAL rollback record lost: %v", werr)
		}
	}
	s.clearShadowDiffs()
	s.logf("proxy: rolled back candidate policy (epoch %d); shadow dual-decide off", pv.Epoch)
	return pv, nil
}

// SubscribeShadow registers a callback invoked for every divergence
// record, after it is sequenced and ringed. Callbacks run on the
// query path — keep them fast or hand off. There is no unsubscribe.
func (s *Server) SubscribeShadow(fn func(ShadowDiff)) {
	s.shadowMu.Lock()
	s.shadowSubs = append(s.shadowSubs, fn)
	s.shadowMu.Unlock()
}

// ShadowDiffs returns the ringed divergence records with Seq > after
// (oldest first) and the newest sequence issued so far.
func (s *Server) ShadowDiffs(after uint64) (diffs []ShadowDiff, last uint64) {
	s.shadowMu.Lock()
	defer s.shadowMu.Unlock()
	for _, d := range s.diffRing {
		if d.Seq > after {
			diffs = append(diffs, d)
		}
	}
	return diffs, s.diffSeq
}

func (s *Server) clearShadowDiffs() {
	s.shadowMu.Lock()
	s.diffRing = s.diffRing[:0] // Seq stays monotone across trials
	s.shadowMu.Unlock()
}

// dualDecide is runQuery's shadow-mode check: one consistent decision
// under the (active, candidate) pair, divergence recording, and the
// overhead histogram. The active verdict is what enforcement uses.
func (s *Server) dualDecide(ctx context.Context, req *Request, sel *sqlparser.SelectStmt, args sqlparser.Args, sess *session) checker.Decision {
	start := time.Now()
	sd, staged := s.Checker.CheckShadowBorrowed(ctx, sel, args, sess.attrs, sess.tr)
	if !staged {
		// The candidate was promoted or rolled back between ShadowStaged
		// and the version-table load; the active verdict is all there is.
		return sd.Active
	}
	s.mShadowDecides.Inc()
	s.mShadowLat.Observe(time.Since(start).Microseconds())
	if sd.Diverged {
		s.recordDivergence(req, sess, sd)
	}
	return sd.Active
}

// recordDivergence sequences one diff record into the ring and fans it
// out to the log and subscribers.
func (s *Server) recordDivergence(req *Request, sess *session, sd checker.ShadowDecision) {
	s.mShadowDiverge.Inc()
	switch sd.Kind {
	case checker.DivergeTighten:
		s.mShadowTighten.Inc()
	case checker.DivergeLoosen:
		s.mShadowLoosen.Inc()
	}
	diff := ShadowDiff{
		SQL:           req.SQL,
		Session:       sess.name,
		ActiveAllowed: sd.Active.Allowed,
		ShadowAllowed: sd.Shadow.Allowed,
		ActiveReason:  sd.Active.Reason,
		ShadowReason:  sd.Shadow.Reason,
		Kind:          sd.Kind,
		ActiveEpoch:   sd.Active.Epoch,
		ShadowEpoch:   sd.Shadow.Epoch,
	}
	s.shadowMu.Lock()
	s.diffSeq++
	diff.Seq = s.diffSeq
	if len(s.diffRing) >= shadowDiffRingMax {
		copy(s.diffRing, s.diffRing[1:])
		s.diffRing = s.diffRing[:len(s.diffRing)-1]
	}
	s.diffRing = append(s.diffRing, diff)
	subs := s.shadowSubs
	s.shadowMu.Unlock()
	s.shadowDiffLog(&diff)
	for _, fn := range subs {
		fn(diff)
	}
}

// shadowDiffLog emits one divergence as a single JSON line through
// Logf, shaped like the slow-query log (DESIGN.md §14 for the schema).
func (s *Server) shadowDiffLog(diff *ShadowDiff) {
	rec := struct {
		Event string `json:"event"`
		ShadowDiff
	}{Event: "shadow_diff", ShadowDiff: *diff}
	if b, err := json.Marshal(rec); err == nil {
		s.logf("%s", b)
	}
}

// policyStatus assembles the PolicyBody for the policy.* ops.
// withDiffs additionally drains ringed records newer than after.
func (s *Server) policyStatus(after uint64, withDiffs bool) *PolicyBody {
	s.initObs()
	active, cand := s.Checker.Versions()
	pb := &PolicyBody{
		ActiveEpoch:       active.Epoch,
		ActiveFingerprint: active.Fingerprint,
		ActiveViews:       active.Views,
		ShadowDecides:     s.mShadowDecides.Value(),
		Divergences:       s.mShadowDiverge.Value(),
		DivergeTighten:    s.mShadowTighten.Value(),
		DivergeLoosen:     s.mShadowLoosen.Value(),
	}
	if cand != nil {
		pb.Staged = true
		pb.CandidateEpoch = cand.Epoch
		pb.CandidateParent = cand.Parent
		pb.CandidateFingerprint = cand.Fingerprint
		pb.CandidateViews = cand.Views
		if wal := s.Durable(); wal != nil {
			if cv := wal.CandidateVersion(); cv != nil {
				pb.CandidateVersionID = cv.ID
			}
		}
	}
	if withDiffs {
		pb.Diffs, pb.LastDiffSeq = s.ShadowDiffs(after)
	} else {
		s.shadowMu.Lock()
		pb.LastDiffSeq = s.diffSeq
		s.shadowMu.Unlock()
	}
	return pb
}

// --- client side ---

// PolicyStage stages a candidate policy (view SQL by name) for shadow
// dual-decide on the server.
func (c *Client) PolicyStage(ctx context.Context, views map[string]string) (*PolicyBody, error) {
	return c.policyOp(ctx, &Request{Op: "policy.stage", Views: views})
}

// PolicyPromote makes the staged candidate the enforcing policy.
func (c *Client) PolicyPromote(ctx context.Context) (*PolicyBody, error) {
	return c.policyOp(ctx, &Request{Op: "policy.promote"})
}

// PolicyRollback discards the staged candidate.
func (c *Client) PolicyRollback(ctx context.Context) (*PolicyBody, error) {
	return c.policyOp(ctx, &Request{Op: "policy.rollback"})
}

// PolicyStatus fetches the policy lifecycle state and shadow counters.
func (c *Client) PolicyStatus(ctx context.Context) (*PolicyBody, error) {
	return c.policyOp(ctx, &Request{Op: "policy.status"})
}

// PolicyDiff fetches divergence records with Seq > after. Pass the
// previous response's LastDiffSeq to poll incrementally; 0 for all
// ringed records.
func (c *Client) PolicyDiff(ctx context.Context, after uint64) (*PolicyBody, error) {
	return c.policyOp(ctx, &Request{Op: "policy.diff", Target: after})
}

func (c *Client) policyOp(ctx context.Context, req *Request) (*PolicyBody, error) {
	resp, err := c.dispatch(ctx, req)
	if err != nil {
		return nil, err
	}
	return resp.Policy, nil
}
