package proxy

import (
	"bufio"
	"errors"
	"io"
	"net"
)

// errLineTooLong drops a connection whose request line exceeds the
// configured bound. The message keeps the "too long" phrasing clients
// and tests have matched since the bufio.Scanner-based read loop.
var errLineTooLong = errors.New("request line too long")

// flushConn interposes on the connection's read side: just before any
// kernel read — i.e. exactly when the reader has drained every
// buffered request and is about to block waiting on the client — it
// flushes responses the inline fast path parked in the write buffer.
// Responses therefore coalesce across a pipelined burst (K answers,
// one write syscall) yet are always on the wire before the server
// waits for the client, so the interposition can never deadlock a
// request/response client.
type flushConn struct {
	c     net.Conn
	flush func()
}

func (f flushConn) Read(p []byte) (int, error) {
	f.flush()
	return f.c.Read(p)
}

// lineReader yields newline-delimited request lines with a hard length
// bound, replacing the previous bufio.Scanner loop (whose token limit
// machinery copied long lines an extra time and could not interpose a
// pre-block flush). Semantics match bufio.ScanLines: the returned line
// excludes the terminator, a single trailing \r is stripped, and a
// final unterminated line before EOF is returned as a line (with the
// EOF surfaced on the next call).
//
// The returned slice aliases internal buffers and is valid only until
// the next ReadLine call — the same contract Scanner.Bytes had.
type lineReader struct {
	r   *bufio.Reader
	max int
	acc []byte // continuation scratch for lines spanning buffer fills
	err error  // deferred error after a final unterminated line
}

func newLineReader(r io.Reader, max int) *lineReader {
	size := 64 * 1024
	if max < size {
		size = max
	}
	if size < 16 {
		size = 16
	}
	return &lineReader{r: bufio.NewReaderSize(r, size), max: max}
}

// trimEOL strips one trailing \n and then one trailing \r.
func trimEOL(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}

// ReadLine returns the next request line. A nil error means a line; a
// returned error of io.EOF means the stream ended cleanly, anything
// else (including errLineTooLong) drops the connection.
func (lr *lineReader) ReadLine() ([]byte, error) {
	if lr.err != nil {
		return nil, lr.err
	}
	lr.acc = lr.acc[:0]
	for {
		frag, err := lr.r.ReadSlice('\n')
		switch err {
		case nil:
			if len(lr.acc)+len(frag)-1 > lr.max {
				return nil, errLineTooLong
			}
			if len(lr.acc) == 0 {
				return trimEOL(frag), nil
			}
			lr.acc = append(lr.acc, frag...)
			return trimEOL(lr.acc), nil
		case bufio.ErrBufferFull:
			if len(lr.acc)+len(frag) > lr.max {
				return nil, errLineTooLong
			}
			lr.acc = append(lr.acc, frag...)
		case io.EOF:
			if len(lr.acc)+len(frag) > 0 {
				lr.err = io.EOF
				lr.acc = append(lr.acc, frag...)
				return trimEOL(lr.acc), nil
			}
			return nil, io.EOF
		default:
			return nil, err
		}
	}
}
