package proxy

import (
	"context"
	"errors"
	"testing"

	"repro/internal/checker"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/sqlvalue"
)

func testServer(t testing.TB, mode Mode) *Server {
	t.Helper()
	s, err := schema.NewBuilder().
		Table("Users").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("Name", sqlvalue.Text).
		PK("UId").Done().
		Table("Events").
		OpaqueCol("EId", sqlvalue.Int).
		NotNullCol("Title", sqlvalue.Text).
		Col("Notes", sqlvalue.Text).
		PK("EId").Done().
		Table("Attendance").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("EId", sqlvalue.Int).
		PK("UId", "EId").Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	db := engine.New(s)
	db.MustExec("INSERT INTO Users (UId, Name) VALUES (1, 'alice'), (2, 'bob')")
	db.MustExec("INSERT INTO Events (EId, Title, Notes) VALUES (2, 'retro', 'snacks'), (3, 'offsite', NULL)")
	db.MustExec("INSERT INTO Attendance (UId, EId) VALUES (1, 2), (2, 3)")
	pol := policy.MustNew(s, map[string]string{
		"V1": "SELECT EId FROM Attendance WHERE UId = ?MyUId",
		"V2": "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
	})
	return NewServer(db, checker.New(pol), mode)
}

func dialTest(t *testing.T, srv *Server) *Client {
	t.Helper()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestEndToEndExample21(t *testing.T) {
	srv := testServer(t, Enforce)
	cl := dialTest(t, srv)
	if err := cl.Hello(context.Background(), map[string]any{"MyUId": 1}); err != nil {
		t.Fatal(err)
	}

	// Q2 alone: blocked.
	_, err := cl.Query(context.Background(), "SELECT * FROM Events WHERE EId=2")
	if !errors.Is(err, ErrBlocked) {
		t.Fatalf("Q2 alone should be blocked, got %v", err)
	}

	// Q1: allowed, returns one row.
	rows, err := cl.Query(context.Background(), "SELECT 1 FROM Attendance WHERE UId=1 AND EId=2")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Empty() {
		t.Fatal("Q1 should match seeded attendance")
	}

	// Q2 after Q1: allowed by history.
	rows, err = cl.Query(context.Background(), "SELECT * FROM Events WHERE EId=2")
	if err != nil {
		t.Fatalf("Q2 after Q1 should be allowed: %v", err)
	}
	if len(rows.Rows) != 1 || rows.Rows[0][1].Text() != "retro" {
		t.Fatalf("Q2 result: %+v", rows)
	}
}

func TestSessionIsolation(t *testing.T) {
	srv := testServer(t, Enforce)
	cl1 := dialTest(t, srv)
	if err := cl1.Hello(context.Background(), map[string]any{"MyUId": 1}); err != nil {
		t.Fatal(err)
	}
	// Prime history on connection 1.
	if _, err := cl1.Query(context.Background(), "SELECT 1 FROM Attendance WHERE UId=1 AND EId=2"); err != nil {
		t.Fatal(err)
	}

	// A separate connection for user 2 must not inherit that history.
	cl2, err := Dial(srv.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if err := cl2.Hello(context.Background(), map[string]any{"MyUId": 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl2.Query(context.Background(), "SELECT * FROM Events WHERE EId=2"); !errors.Is(err, ErrBlocked) {
		t.Fatalf("user 2 must not benefit from user 1's history: %v", err)
	}
}

func TestLogOnlyMode(t *testing.T) {
	srv := testServer(t, LogOnly)
	cl := dialTest(t, srv)
	if err := cl.Hello(context.Background(), map[string]any{"MyUId": 1}); err != nil {
		t.Fatal(err)
	}
	rows, err := cl.Query(context.Background(), "SELECT * FROM Events WHERE EId=2")
	if err != nil {
		t.Fatalf("log-only must forward: %v", err)
	}
	if rows.Empty() {
		t.Fatal("expected data in log-only mode")
	}
	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Violations != 1 {
		t.Errorf("violations: %+v", st)
	}
}

func TestOffMode(t *testing.T) {
	srv := testServer(t, Off)
	cl := dialTest(t, srv)
	if err := cl.Hello(context.Background(), map[string]any{"MyUId": 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Query(context.Background(), "SELECT * FROM Attendance"); err != nil {
		t.Fatalf("off mode forwards everything: %v", err)
	}
}

func TestExecPassthrough(t *testing.T) {
	srv := testServer(t, Enforce)
	cl := dialTest(t, srv)
	if err := cl.Hello(context.Background(), map[string]any{"MyUId": 1}); err != nil {
		t.Fatal(err)
	}
	n, err := cl.Exec(context.Background(), "INSERT INTO Attendance (UId, EId) VALUES (?, ?)", 1, 3)
	if err != nil || n != 1 {
		t.Fatalf("exec: n=%d err=%v", n, err)
	}
	rows, err := cl.Query(context.Background(), "SELECT EId FROM Attendance WHERE UId = 1 ORDER BY EId")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 2 {
		t.Fatalf("after insert: %+v", rows)
	}
}

func TestQueryErrorsSurface(t *testing.T) {
	srv := testServer(t, Enforce)
	cl := dialTest(t, srv)
	if err := cl.Hello(context.Background(), map[string]any{"MyUId": 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Query(context.Background(), "SELECT nope FROM"); err == nil {
		t.Fatal("parse error should surface")
	}
	// Connection still usable afterwards.
	if _, err := cl.Query(context.Background(), "SELECT EId FROM Attendance WHERE UId = 1"); err != nil {
		t.Fatalf("connection should survive an error: %v", err)
	}
}

func TestInProcessHandle(t *testing.T) {
	srv := testServer(t, Enforce)
	sess := NewSession(map[string]sqlvalue.Value{"MyUId": sqlvalue.NewInt(1)})
	resp := srv.HandleIn(&Request{Op: "query", SQL: "SELECT EId FROM Attendance WHERE UId = 1"}, sess)
	if !resp.OK || resp.Blocked {
		t.Fatalf("in-process query: %+v", resp)
	}
	if sess.Trace().Len() != 1 {
		t.Errorf("trace length: %d", sess.Trace().Len())
	}
}

func TestStatsOverWire(t *testing.T) {
	srv := testServer(t, Enforce)
	cl := dialTest(t, srv)
	if err := cl.Hello(context.Background(), map[string]any{"MyUId": 1}); err != nil {
		t.Fatal(err)
	}
	_, _ = cl.Query(context.Background(), "SELECT EId FROM Attendance WHERE UId = 1")
	_, _ = cl.Query(context.Background(), "SELECT * FROM Attendance")
	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != 2 || st.Allowed != 1 || st.Blocked != 1 {
		t.Errorf("stats: %+v", st)
	}
}
