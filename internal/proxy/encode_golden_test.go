package proxy

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"repro/internal/sqlvalue"
)

// TestEncodeRowsGolden pins the exact wire line produced for a result
// set carrying every engine value kind — NULL, INTEGER, REAL, TEXT,
// BOOLEAN — through the full response encode path (engine values →
// encodeRows → appendResponse). The golden string is the literal v2
// frame; if either stage changes its rendering, this fails before any
// client notices.
func TestEncodeRowsGolden(t *testing.T) {
	rows := [][]sqlvalue.Value{
		{sqlvalue.NewNull(), sqlvalue.NewInt(-42), sqlvalue.NewReal(2.5)},
		{sqlvalue.NewText("standup"), sqlvalue.NewBool(true), sqlvalue.NewBool(false)},
		{sqlvalue.NewReal(3), sqlvalue.NewInt(0), sqlvalue.NewText("")},
	}
	resp := Response{
		ID:      9,
		OK:      true,
		Columns: []string{"a", "b", "c"},
		Rows:    encodeRows(rows),
	}
	const want = `{"id":9,"ok":true,"columns":["a","b","c"],` +
		`"rows":[[null,-42,2.5],["standup",true,false],[3,0,""]]}` + "\n"
	buf, ok := appendResponse(nil, &resp)
	if !ok {
		t.Fatalf("fast encoder refused the golden response: %+v", resp)
	}
	if string(buf) != want {
		t.Errorf("encoded frame:\n got  %q\n want %q", buf, want)
	}
	// The hand-rolled frame must also be exactly what encoding/json
	// would have produced (minus the trailing newline convention).
	js, err := json.Marshal(&resp)
	if err != nil {
		t.Fatal(err)
	}
	if got := bytes.TrimRight(buf, "\n"); !bytes.Equal(got, js) {
		t.Errorf("fast encoder diverges from encoding/json:\n fast %s\n json %s", got, js)
	}
}

// FuzzEncodeResponsePooled drives the pooled encode path — a recycled
// Response filled in place, encoded into a reused scratch buffer, then
// released — and requires its bytes to match both an unpooled fresh
// encode and encoding/json. This is the invariant that makes response
// pooling safe: recycling the struct and the buffer must never leak a
// previous response's bytes into the next frame.
func FuzzEncodeResponsePooled(f *testing.F) {
	f.Add(uint64(1), int64(7), math.Float64bits(2.5), "EId", "x", true)
	f.Add(uint64(0), int64(-1), math.Float64bits(3), "", "", false)
	f.Add(uint64(1<<63), int64(math.MinInt64), math.Float64bits(5e-324), "col", "tab\ttext", true)
	var scratch []byte
	f.Fuzz(func(t *testing.T, id uint64, i int64, fbits uint64, col, s string, b bool) {
		fv := math.Float64frombits(fbits)
		fill := func(resp *Response) {
			resp.ID = id
			resp.OK = b
			resp.Columns = []string{col}
			resp.Rows = [][]any{{nil, i, fv, s, b}}
		}

		// Pooled path: recycled struct, reused buffer.
		resp := acquireResponse()
		fill(resp)
		buf, ok := appendResponse(scratch[:0], resp)
		scratch = buf
		pooledBytes := append([]byte(nil), buf...)
		releaseResponse(resp)

		// Unpooled path: fresh struct, fresh buffer.
		fresh := new(Response)
		fill(fresh)
		freshBuf, freshOK := appendResponse(nil, fresh)
		if ok != freshOK {
			t.Fatalf("pooled and unpooled encoders disagree on representability: %v vs %v", ok, freshOK)
		}
		if !ok {
			// NaN/Inf cells have no JSON form; both paths bail to the
			// reflective encoder. Nothing further to compare.
			return
		}
		if !bytes.Equal(pooledBytes, freshBuf) {
			t.Fatalf("pooled encode differs from unpooled:\n pooled %q\n fresh  %q", pooledBytes, freshBuf)
		}
		// The frame must decode — through the same normalized decoder
		// clients use — to exactly what an encoding/json frame of the
		// same response decodes to. (Byte-comparing the frames would be
		// too strict: the fast path legitimately skips Marshal's HTML
		// escaping of &<>, and integral floats lose their ".0" in both
		// encoders, so equivalence is judged after normalization.)
		js, err := json.Marshal(fresh)
		if err != nil {
			t.Fatal(err)
		}
		var fromPooled, fromJSON Response
		if err := decodeResponseJSON(bytes.TrimRight(pooledBytes, "\n"), &fromPooled); err != nil {
			t.Fatalf("pooled encode is not valid JSON (%v): %q", err, pooledBytes)
		}
		if err := decodeResponseJSON(js, &fromJSON); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fromPooled, fromJSON) {
			t.Fatalf("pooled frame does not round-trip:\n pooled decode %#v\n json decode   %#v", fromPooled, fromJSON)
		}
	})
}
