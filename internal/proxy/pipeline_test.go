package proxy

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/acerr"
)

// dialV2 dials the server and negotiates protocol v2 as user 1.
func dialV2(t *testing.T, srv *Server, opts ...ClientOption) *Client {
	t.Helper()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(addr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if err := cl.Hello(context.Background(), map[string]any{"MyUId": 1}); err != nil {
		t.Fatal(err)
	}
	if cl.Proto() != ProtoV2 {
		t.Fatalf("negotiated proto %d, want %d", cl.Proto(), ProtoV2)
	}
	return cl
}

// seedWide inserts enough users that a 3-way cross join takes real
// time in the engine (with context ticks along the way).
func seedWide(t *testing.T, srv *Server, n int) {
	t.Helper()
	for i := 10; i < 10+n; i++ {
		srv.DB.MustExec(fmt.Sprintf("INSERT INTO Users (UId, Name) VALUES (%d, 'u%d')", i, i))
	}
}

const (
	slowJoin3 = "SELECT u1.UId FROM Users u1 CROSS JOIN Users u2 CROSS JOIN Users u3"
	slowJoin4 = "SELECT u1.UId FROM Users u1 CROSS JOIN Users u2 CROSS JOIN Users u3 CROSS JOIN Users u4"
)

func TestPipelinedOutOfOrderAcrossLanes(t *testing.T) {
	srv := testServer(t, Off)
	seedWide(t, srv, 80)
	cl := dialV2(t, srv)
	ctx := context.Background()

	slow, err := cl.Lane(1).QueryAsync(ctx, slowJoin3)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := cl.Lane(2).QueryAsync(ctx, "SELECT Name FROM Users WHERE UId = 1")
	if err != nil {
		t.Fatal(err)
	}

	var fastDone, slowDone time.Time
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := slow.Wait(ctx); err != nil {
			t.Errorf("slow query: %v", err)
		}
		slowDone = time.Now()
	}()
	go func() {
		defer wg.Done()
		if _, err := fast.Wait(ctx); err != nil {
			t.Errorf("fast query: %v", err)
		}
		fastDone = time.Now()
	}()
	wg.Wait()
	if !fastDone.Before(slowDone) {
		t.Fatalf("expected the fast lane to complete first (fast %v, slow %v): responses were not reordered",
			fastDone, slowDone)
	}
}

func TestPipelinedSessionOrderPreserved(t *testing.T) {
	// Example 2.1 pipelined: the access probe and the event fetch are
	// sent back-to-back without waiting. Because one lane serializes,
	// the probe's answer must be in the history by the time the fetch
	// is checked, so the fetch is allowed.
	srv := testServer(t, Enforce)
	cl := dialV2(t, srv)
	ctx := context.Background()

	probe, err := cl.QueryAsync(ctx, "SELECT 1 FROM Attendance WHERE UId=1 AND EId=2")
	if err != nil {
		t.Fatal(err)
	}
	fetch, err := cl.QueryAsync(ctx, "SELECT * FROM Events WHERE EId=2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probe.Wait(ctx); err != nil {
		t.Fatalf("probe: %v", err)
	}
	rows, err := fetch.Wait(ctx)
	if err != nil {
		t.Fatalf("pipelined fetch after probe must be allowed: %v", err)
	}
	if len(rows.Rows) != 1 {
		t.Fatalf("rows: %+v", rows.Rows)
	}
}

func TestBatchMidBlocked(t *testing.T) {
	srv := testServer(t, Enforce)
	cl := dialV2(t, srv)
	ctx := context.Background()

	res, err := cl.Batch(ctx, []BatchItem{
		{SQL: "SELECT 1 FROM Attendance WHERE UId=1 AND EId=2"},
		{SQL: "SELECT Name FROM Users WHERE UId = 2"}, // no view covers Users
		{SQL: "SELECT * FROM Events WHERE EId=2"},
		{SQL: "INSERT INTO Attendance (UId, EId) VALUES (1, 3)", Exec: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d results, want 4", len(res))
	}
	if res[0].Err != nil || len(res[0].Rows.Rows) != 1 {
		t.Fatalf("probe: %+v", res[0])
	}
	if !errors.Is(res[1].Err, ErrBlocked) {
		t.Fatalf("blocked item: %v", res[1].Err)
	}
	var be *BlockedError
	if !errors.As(res[1].Err, &be) || be.Reason == "" {
		t.Fatalf("blocked item should carry a reason: %v", res[1].Err)
	}
	// The block must not abort the rest, and the probe's history
	// applies to the later fetch.
	if res[2].Err != nil || len(res[2].Rows.Rows) != 1 {
		t.Fatalf("fetch after mid-batch block: %+v", res[2])
	}
	if res[3].Err != nil || res[3].Affected != 1 {
		t.Fatalf("exec item: %+v", res[3])
	}
}

func TestCancelAbortsSlowQuery(t *testing.T) {
	srv := testServer(t, Off)
	seedWide(t, srv, 80)
	cl := dialV2(t, srv)

	p, err := cl.QueryAsync(context.Background(), slowJoin4)
	if err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = p.Wait(waitCtx)
	if !errors.Is(err, acerr.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancel took %v", elapsed)
	}

	// The connection must stay usable, and the server must have
	// aborted the join (a 41M-row cross product would take far longer
	// than this query round trip).
	rows, err := cl.Query(context.Background(), "SELECT Name FROM Users WHERE UId = 1")
	if err != nil || len(rows.Rows) != 1 {
		t.Fatalf("connection unusable after cancel: %v %+v", err, rows)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := cl.Stats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.CanceledReqs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancel never reached the in-flight request: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestV1WireCompat drives the server with a raw v1 client: no hello
// negotiation, no IDs. Responses must come back strictly in order
// with v1 shapes.
func TestV1WireCompat(t *testing.T) {
	srv := testServer(t, Enforce)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	r := bufio.NewReader(conn)
	read := func() Response {
		t.Helper()
		line, err := r.ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		var resp Response
		if err := json.Unmarshal(line, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if err := enc.Encode(Request{Op: "hello", Session: map[string]any{"MyUId": 1}}); err != nil {
		t.Fatal(err)
	}
	h := read()
	if !h.OK || h.Proto != 0 || h.ID != 0 {
		t.Fatalf("v1 hello response changed shape: %+v", h)
	}

	// Two pipelined-on-the-wire requests: a v1 server loop still
	// answers them one at a time, in order.
	if err := enc.Encode(Request{Op: "query", SQL: "SELECT EId FROM Attendance WHERE UId = 1"}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(Request{Op: "query", SQL: "SELECT Name FROM Users WHERE UId = 2"}); err != nil {
		t.Fatal(err)
	}
	first := read()
	if !first.OK || first.Blocked || len(first.Rows) != 1 {
		t.Fatalf("first response: %+v", first)
	}
	second := read()
	if !second.OK || !second.Blocked {
		t.Fatalf("second response should be the policy block: %+v", second)
	}
}

func TestPipelineStress(t *testing.T) {
	srv := testServer(t, Enforce)
	cl := dialV2(t, srv, WithWindow(16))

	const (
		lanes   = 4
		perLane = 40
	)
	var wg sync.WaitGroup
	for l := 1; l <= lanes; l++ {
		wg.Add(1)
		go func(sid uint64) {
			defer wg.Done()
			ctx := context.Background()
			ln := cl.Lane(sid)
			if err := ln.Hello(ctx, map[string]any{"MyUId": int(sid)}); err != nil {
				t.Errorf("lane %d hello: %v", sid, err)
				return
			}
			for i := 0; i < perLane; i++ {
				if i%5 == 4 {
					// A blocked query mixed in.
					_, err := ln.Query(ctx, "SELECT Name FROM Users WHERE UId = 99")
					if !errors.Is(err, ErrBlocked) {
						t.Errorf("lane %d: want block, got %v", sid, err)
					}
					continue
				}
				rows, err := ln.Query(ctx, "SELECT EId FROM Attendance WHERE UId = ?", int(sid))
				if err != nil {
					t.Errorf("lane %d: %v", sid, err)
					return
				}
				_ = rows
			}
		}(uint64(l))
	}
	wg.Wait()
}

// TestMassLanesHelloAsync keys thousands of sessions over one
// connection with pipelined hellos, then verifies (a) idle lanes do
// not each hold a server goroutine — lane runners must exit when their
// queues drain — and (b) arbitrary lanes still answer on their own
// session state afterward.
func TestMassLanesHelloAsync(t *testing.T) {
	srv := testServer(t, Enforce)
	cl := dialV2(t, srv, WithWindow(32))
	ctx := context.Background()

	const lanes = 2000
	pending := make([]*PendingOK, 0, 64)
	flush := func() {
		for _, p := range pending {
			if err := p.Wait(ctx); err != nil {
				t.Fatal(err)
			}
		}
		pending = pending[:0]
	}
	for sid := 1; sid <= lanes; sid++ {
		p, err := cl.Lane(uint64(sid)).HelloAsync(ctx, map[string]any{"MyUId": sid%3 + 1})
		if err != nil {
			t.Fatal(err)
		}
		if pending = append(pending, p); len(pending) == cap(pending) {
			flush()
		}
	}
	flush()

	// Give the last runners a moment to notice empty queues, then pin
	// the design property: goroutine count tracks in-flight work, not
	// session count. The bound is loose (test scaffolding, GC workers)
	// but far below one-per-lane.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > 200 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > 200 {
		t.Fatalf("%d goroutines alive after %d idle lanes; lane runners should exit when drained", n, lanes)
	}

	for _, sid := range []int{1, lanes / 2, lanes} {
		uid := sid%3 + 1
		if _, err := cl.Lane(uint64(sid)).Query(ctx, "SELECT EId FROM Attendance WHERE UId = ?", uid); err != nil {
			t.Fatalf("lane %d: %v", sid, err)
		}
	}
}

func TestWindowBackpressure(t *testing.T) {
	// With a client window of 2, a third async send must block until a
	// response drains. Verify it completes rather than deadlocks.
	srv := testServer(t, Off)
	seedWide(t, srv, 40)
	cl := dialV2(t, srv, WithWindow(2))
	ctx := context.Background()

	var pending []*PendingRows
	for i := 0; i < 8; i++ {
		lane := cl.Lane(uint64(i%2 + 1))
		p, err := lane.QueryAsync(ctx, "SELECT Name FROM Users WHERE UId = 1")
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, p)
		if i == 1 {
			// Drain the first two so later sends can proceed.
			for _, q := range pending {
				if _, err := q.Wait(ctx); err != nil {
					t.Fatal(err)
				}
			}
			pending = pending[:0]
		}
	}
	for _, q := range pending {
		if _, err := q.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

func TestServerMaxInFlightBackpressure(t *testing.T) {
	// Server window of 2, client window of 8: the server stops reading
	// past two queued requests, TCP pushes back, and everything still
	// completes in order per lane.
	srv := testServer(t, Enforce)
	srv.MaxInFlight = 2 // before Listen: the per-connection window is sized at accept
	cl := dialV2(t, srv, WithWindow(8))
	ctx := context.Background()

	var pending []*PendingRows
	for i := 0; i < 12; i++ {
		p, err := cl.QueryAsync(ctx, "SELECT EId FROM Attendance WHERE UId = 1")
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, p)
	}
	for _, p := range pending {
		rows, err := p.Wait(ctx)
		if err != nil || len(rows.Rows) != 1 {
			t.Fatalf("under server backpressure: %v %+v", err, rows)
		}
	}
}
