package proxy

import (
	"reflect"
	"testing"
)

// FuzzWireDecode throws arbitrary lines at the hand-rolled decoders
// and holds them to the codec's one invariant: whenever the fast path
// accepts a line, the normalized reflective fallback must accept it
// too and produce the identical struct — same fields, same number
// types (int64/uint64 for integral tokens, float64 otherwise). The
// fast path is free to bail on anything; it is never free to disagree.
func FuzzWireDecode(f *testing.F) {
	seeds := []string{
		`{"op":"query","id":3,"sid":1,"sql":"SELECT 1","args":[4,"x",true,null]}`,
		`{"op":"hello","maxProto":2,"session":{"MyUId":7}}`,
		`{"op":"exec","sql":"DELETE FROM T","timeoutMillis":100}`,
		`{"op":"query","sql":"SELECT 1","named":{"a":1}}`,
		`{"op":"cancel","id":5,"target":3}`,
		// Integer-precision seeds: the first value float64 cannot hold,
		// MaxInt64, MaxUint64, and near-boundary negatives.
		`{"op":"query","sql":"S","args":[9007199254740993]}`,
		`{"op":"query","sql":"S","args":[9223372036854775807,-9223372036854775808]}`,
		`{"op":"query","sql":"S","args":[18446744073709551615]}`,
		`{"op":"query","sql":"S","args":[1.5,-0.25,2e3,1e-3]}`,
		`{"id":7,"ok":true,"proto":2}`,
		`{"id":1,"ok":true,"columns":["a"],"rows":[[9007199254740993,"x"]]}`,
		`{"id":3,"ok":false,"code":"blocked","blocked":true,"reason":"no view"}`,
		// Malformed / bail-worthy shapes.
		`{"op":"query","sql":"SELECT 1"`,
		`{"op":"query","args":[{"nested":1}]}`,
		`{"op":"query","sql":"quote \" inside"}`,
		``,
		`not json at all`,
		`{"op":"query","args":[00]}`,
		`{"op":"query","args":[1e999]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		var fastReq Request
		if decodeRequest(line, &fastReq) {
			var slowReq Request
			if err := decodeRequestJSON(line, &slowReq); err != nil {
				t.Fatalf("fast request decoder accepted a line the fallback rejects (%v): %q", err, line)
			}
			if !reflect.DeepEqual(fastReq, slowReq) {
				t.Fatalf("request decoders disagree on %q:\n fast %#v\n slow %#v", line, fastReq, slowReq)
			}
		}
		var fastResp Response
		if decodeResponse(line, &fastResp) {
			var slowResp Response
			if err := decodeResponseJSON(line, &slowResp); err != nil {
				t.Fatalf("fast response decoder accepted a line the fallback rejects (%v): %q", err, line)
			}
			if !reflect.DeepEqual(fastResp, slowResp) {
				t.Fatalf("response decoders disagree on %q:\n fast %#v\n slow %#v", line, fastResp, slowResp)
			}
		}
	})
}
