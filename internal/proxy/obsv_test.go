package proxy

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sqlvalue"
)

// TestStatsBackedByObsv pins that the proxy's stats (both the wire
// `stats` body and the registry snapshot) come from the shared obsv
// registry: the one the checker hands out, with proxy.* instruments
// alongside checker.* ones and the latency quantiles computed by the
// obsv histogram rather than proxy-local code.
func TestStatsBackedByObsv(t *testing.T) {
	srv := testServer(t, Enforce)
	cl := dialTest(t, srv)
	ctx := context.Background()
	if err := cl.Hello(ctx, map[string]any{"MyUId": 1}); err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := cl.Query(ctx, "SELECT EId FROM Attendance WHERE UId = 1"); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != n {
		t.Fatalf("stats queries = %d, want %d", st.Queries, n)
	}
	if st.LatencySamples != n {
		t.Fatalf("latency samples = %d, want %d", st.LatencySamples, n)
	}
	if st.LatencyP50Micros <= 0 || st.LatencyP99Micros < st.LatencyP50Micros {
		t.Fatalf("implausible latency quantiles: %+v", st)
	}

	reg := srv.MetricsRegistry()
	if reg != srv.Checker.Metrics() {
		t.Fatal("server must default to the checker's registry")
	}
	if got := reg.Counter("proxy.queries").Value(); got != n {
		t.Fatalf("proxy.queries = %d, want %d", got, n)
	}
	if got := reg.Histogram("proxy.query.micros").Snapshot().Count; got != n {
		t.Fatalf("proxy.query.micros count = %d, want %d", got, n)
	}
	snap := reg.Snapshot()
	for _, key := range []string{
		"proxy.queries", "proxy.conns.total", "proxy.query.micros",
		"checker.decisions", "pipeline.decide.total.micros",
		"engine.queries", "engine.scan.micros",
	} {
		if _, ok := snap[key]; !ok {
			t.Errorf("registry snapshot missing %q", key)
		}
	}
	if got := reg.Counter("engine.queries").Value(); got != n {
		t.Fatalf("engine.queries = %d, want %d", got, n)
	}
}

// slowRecord mirrors the slow-decision log schema (DESIGN.md §9).
type slowRecord struct {
	Event       string           `json:"event"`
	SQL         string           `json:"sql"`
	TotalMicros int64            `json:"totalMicros"`
	Decision    string           `json:"decision"`
	Tier        string           `json:"tier"`
	Reason      string           `json:"reason"`
	StageMicros map[string]int64 `json:"stageMicros"`
}

// TestSlowDecisionLog drives queries through a server whose slow-log
// threshold is zero-ish so every query qualifies, and checks the
// structured record: decision verdict, per-stage breakdown, and the
// cache tier on a repeat.
func TestSlowDecisionLog(t *testing.T) {
	srv := testServer(t, Enforce)
	var mu sync.Mutex
	var lines []string
	srv.Logf = func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	srv.SlowLogThreshold = time.Nanosecond

	sess := NewSession(map[string]sqlvalue.Value{"MyUId": sqlvalue.NewInt(1)})
	records := func() []slowRecord {
		mu.Lock()
		defer mu.Unlock()
		var out []slowRecord
		for _, ln := range lines {
			if !strings.Contains(ln, "slow_query") {
				continue
			}
			var rec slowRecord
			if err := json.Unmarshal([]byte(ln), &rec); err != nil {
				t.Fatalf("slow-log line is not one JSON object: %q: %v", ln, err)
			}
			out = append(out, rec)
		}
		return out
	}

	// An allowed decision with a full pipeline pass.
	resp := srv.HandleIn(&Request{Op: "query", SQL: "SELECT EId FROM Attendance WHERE UId = 1"}, sess)
	if !resp.OK || resp.Blocked {
		t.Fatalf("query failed: %+v", resp)
	}
	recs := records()
	if len(recs) != 1 {
		t.Fatalf("want 1 slow record, got %d (%v)", len(recs), lines)
	}
	if recs[0].Decision != "allowed" || recs[0].SQL == "" || recs[0].TotalMicros <= 0 {
		t.Fatalf("allowed record: %+v", recs[0])
	}
	// This template is allowed with zero facts, so the pipeline stops
	// at the history-free stage; cover never runs.
	for _, stage := range []string{"front", "bind", "histfree"} {
		if _, ok := recs[0].StageMicros[stage]; !ok {
			t.Errorf("record missing stage %q: %v", stage, recs[0].StageMicros)
		}
	}

	// The repeat answers from a cache tier and says which.
	srv.HandleIn(&Request{Op: "query", SQL: "SELECT EId FROM Attendance WHERE UId = 1"}, sess)
	recs = records()
	if len(recs) != 2 {
		t.Fatalf("want 2 slow records, got %d", len(recs))
	}
	if recs[1].Tier == "" {
		t.Fatalf("repeat record must name the answering cache tier: %+v", recs[1])
	}

	// A blocked decision reports the verdict and reason.
	srv.HandleIn(&Request{Op: "query", SQL: "SELECT * FROM Events WHERE EId=3"}, sess)
	recs = records()
	last := recs[len(recs)-1]
	if last.Decision != "blocked" || last.Reason == "" {
		t.Fatalf("blocked record: %+v", last)
	}
}

// TestSlowLogOffByDefault pins that with no threshold set, nothing is
// logged and no SpanSet is allocated per query.
func TestSlowLogOffByDefault(t *testing.T) {
	srv := testServer(t, Enforce)
	var mu sync.Mutex
	var lines []string
	srv.Logf = func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	sess := NewSession(map[string]sqlvalue.Value{"MyUId": sqlvalue.NewInt(1)})
	srv.HandleIn(&Request{Op: "query", SQL: "SELECT EId FROM Attendance WHERE UId = 1"}, sess)
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 0 {
		t.Fatalf("no slow log expected: %v", lines)
	}
}
