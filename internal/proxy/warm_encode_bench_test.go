package proxy

import (
	"context"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// BenchmarkWarmEncode measures the v2 serving surface's warm
// steady-state minus the engine scan: a front-tier warm-probe decide
// (CheckWarmBorrowed), a pooled Response filled in place, the
// hand-rolled frame encode into a reused scratch buffer, and the
// release back to the pool — exactly the per-request work the inline
// fast path does around executing the query. The engine scan is
// excluded because result rows are freshly materialized by design;
// everything the proxy adds around it is pinned at 0 allocs/op by
// TestWarmEncodeAllocBudget.
func BenchmarkWarmEncode(b *testing.B) {
	srv := testServer(b, Enforce)
	attrs := map[string]sqlvalue.Value{"MyUId": sqlvalue.NewInt(1)}
	tr := &trace.Trace{}
	args := sqlparser.PositionalArgs(1)
	sel, err := sqlparser.ParseSelectNorm("SELECT EId FROM Attendance WHERE UId = ?")
	if err != nil {
		b.Fatal(err)
	}
	// Prime the front cache, then confirm the warm probe answers.
	if d := srv.Checker.CheckBorrowed(context.Background(), sel, args, attrs, tr); !d.Allowed {
		b.Fatalf("prime: %+v", d)
	}
	if _, ok := srv.Checker.CheckWarmBorrowed(sel, args, attrs); !ok {
		b.Fatal("prime: warm probe missed after a front-tier fill")
	}

	// The result set a warm hit would carry, pre-materialized: the
	// benchmark charges the proxy's decide+encode work, not the
	// engine's row building.
	cols := []string{"EId"}
	rows := [][]any{{int64(2)}}
	var scratch []byte

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, ok := srv.Checker.CheckWarmBorrowed(sel, args, attrs)
		if !ok || !d.Allowed {
			b.Fatalf("warm probe lost the decision: %+v %v", d, ok)
		}
		resp := acquireResponse()
		resp.ID = uint64(i) + 1
		resp.OK = true
		resp.Columns = cols
		resp.Rows = rows
		buf, encOK := appendResponse(scratch[:0], resp)
		if !encOK {
			b.Fatal("fast encoder bailed on the warm response shape")
		}
		scratch = buf[:0]
		releaseResponse(resp)
	}
}

// TestWarmEncodeAllocBudget turns BenchmarkWarmEncode's -benchmem
// number into a CI gate: the pooled encode path end-to-end — warm
// decide through wire bytes — must allocate exactly nothing per
// request. Any regression (a new per-response string, slice, or
// closure) fails loudly here before it shows up as a saturation-knee
// regression.
func TestWarmEncodeAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budgets are a CI gate; skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation accounting")
	}
	res := testing.Benchmark(BenchmarkWarmEncode)
	if got := res.AllocsPerOp(); got != 0 {
		t.Errorf("warm decide+encode: %d allocs/op, contract is exactly 0 (%d B/op)",
			got, res.AllocedBytesPerOp())
	}
}
