package proxy

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/sqlvalue"
)

// ErrBlocked is returned by Client.Query when the proxy blocks the
// query for policy violation.
var ErrBlocked = errors.New("query blocked by policy")

// BlockedError carries the proxy's explanation.
type BlockedError struct{ Reason string }

// Error implements error.
func (e *BlockedError) Error() string {
	return fmt.Sprintf("%v: %s", ErrBlocked, e.Reason)
}

// Unwrap makes errors.Is(err, ErrBlocked) work.
func (e *BlockedError) Unwrap() error { return ErrBlocked }

// Client is a connection to the proxy server.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	enc  *json.Encoder
}

// Dial connects to the proxy.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), enc: json.NewEncoder(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return nil, errors.New(resp.Error)
	}
	return &resp, nil
}

// Hello establishes the session principal.
func (c *Client) Hello(attrs map[string]any) error {
	_, err := c.roundTrip(&Request{Op: "hello", Session: attrs})
	return err
}

// Rows is a client-side result set.
type Rows struct {
	Columns []string
	Rows    [][]sqlvalue.Value
}

// Empty reports whether no rows were returned.
func (r *Rows) Empty() bool { return len(r.Rows) == 0 }

// Query runs a SELECT with positional args; a policy block surfaces as
// a *BlockedError.
func (c *Client) Query(sql string, args ...any) (*Rows, error) {
	resp, err := c.roundTrip(&Request{Op: "query", SQL: sql, Args: args})
	if err != nil {
		return nil, err
	}
	if resp.Blocked {
		return nil, &BlockedError{Reason: resp.Reason}
	}
	out := &Rows{Columns: resp.Columns}
	for _, r := range resp.Rows {
		vals, err := decodeValues(r)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, vals)
	}
	return out, nil
}

// Exec runs a DML statement with positional args.
func (c *Client) Exec(sql string, args ...any) (int, error) {
	resp, err := c.roundTrip(&Request{Op: "exec", SQL: sql, Args: args})
	if err != nil {
		return 0, err
	}
	return resp.Affected, nil
}

// Stats fetches server counters.
func (c *Client) Stats() (*StatsBody, error) {
	resp, err := c.roundTrip(&Request{Op: "stats"})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}
