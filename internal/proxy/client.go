package proxy

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"

	"repro/internal/acerr"
	"repro/internal/sqlvalue"
)

// ErrBlocked is returned by Client.Query when the proxy blocks the
// query for policy violation. It aliases acerr.ErrBlocked so code can
// errors.Is against either.
var ErrBlocked = acerr.ErrBlocked

// BlockedError carries the proxy's explanation.
type BlockedError struct{ Reason string }

// Error implements error.
func (e *BlockedError) Error() string {
	return fmt.Sprintf("%v: %s", ErrBlocked, e.Reason)
}

// Unwrap makes errors.Is(err, ErrBlocked) work.
func (e *BlockedError) Unwrap() error { return ErrBlocked }

// ClientOption configures a Client at dial time.
type ClientOption func(*Client)

// WithWindow bounds how many requests the client keeps in flight when
// pipelining (protocol v2). Additional sends block until a response
// frees a slot. Defaults to DefaultMaxInFlight; n < 1 is treated as 1.
func WithWindow(n int) ClientOption {
	if n < 1 {
		n = 1
	}
	return func(c *Client) { c.window = n }
}

// Client is a connection to the proxy server. Until Hello negotiates
// protocol v2 it speaks strict request/response; after negotiation it
// pipelines: sends and receives run on separate goroutines, responses
// demux by request ID, and QueryAsync/Batch become available.
type Client struct {
	conn   net.Conn
	window int

	// Serial-mode state (also used for the one negotiating Hello).
	mu  sync.Mutex
	r   *bufio.Reader
	enc *json.Encoder

	// Pipelined-mode state.
	pmu     sync.Mutex
	proto   int
	nextID  uint64
	pending map[uint64]chan *Response
	dead    error
	sem     chan struct{}

	// Pipelined-mode coalescing writer: requests queue on out and the
	// writer goroutine batches each burst into a single flush.
	bw       *bufio.Writer
	wenc     *json.Encoder
	scratch  []byte
	out      chan *Request
	quit     chan struct{}
	quitOnce sync.Once
}

// Dial connects to the proxy.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	return DialContext(context.Background(), addr, opts...)
}

// DialContext connects to the proxy under a context (dial timeout or
// cancellation).
func DialContext(ctx context.Context, addr string, opts ...ClientOption) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:   conn,
		window: DefaultMaxInFlight,
		r:      bufio.NewReader(conn),
		enc:    json.NewEncoder(conn),
		proto:  ProtoV1,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Close closes the connection; outstanding pipelined calls fail.
func (c *Client) Close() error {
	c.quitOnce.Do(func() {
		if c.quit != nil {
			close(c.quit)
		}
	})
	return c.conn.Close()
}

// Proto reports the negotiated protocol version (ProtoV1 until a
// Hello negotiates higher).
func (c *Client) Proto() int {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.proto
}

func (c *Client) pipelined() bool { return c.Proto() >= ProtoV2 }

// roundTrip is the serial-mode exchange: one request, then block for
// its response on the caller's goroutine.
func (c *Client) roundTrip(ctx context.Context, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, acerr.Canceled(err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	var resp Response
	if !decodeResponse(line, &resp) {
		resp = Response{}
		if err := decodeResponseJSON(line, &resp); err != nil {
			return nil, err
		}
	}
	if resp.Error != "" {
		return nil, acerr.FromCode(resp.Code, resp.Error)
	}
	return &resp, nil
}

// Hello establishes the session principal and negotiates the
// protocol: it advertises v2, and if the server agrees the client
// switches to pipelined mode. Calling Hello again re-keys the default
// session (lane 0).
func (c *Client) Hello(ctx context.Context, attrs map[string]any) error {
	_, err := c.hello(ctx, &Request{Op: "hello", Session: attrs, MaxProto: ProtoV2})
	return err
}

// HelloDurable establishes a named durable session: on a server
// running with a WAL, the session's history is persisted under name
// and survives proxy restarts. It returns how many history entries the
// server restored for the name (0 on a fresh session or a server
// without durability). Like Hello, it negotiates protocol v2.
func (c *Client) HelloDurable(ctx context.Context, name string, attrs map[string]any) (restored int, err error) {
	resp, err := c.hello(ctx, &Request{Op: "hello", Session: attrs, MaxProto: ProtoV2, Name: name})
	if err != nil {
		return 0, err
	}
	return resp.Restored, nil
}

func (c *Client) hello(ctx context.Context, req *Request) (*Response, error) {
	if c.pipelined() {
		resp, err := c.call(ctx, req)
		if err != nil {
			return nil, err
		}
		if resp.Error != "" {
			return nil, acerr.FromCode(resp.Code, resp.Error)
		}
		return resp, nil
	}
	resp, err := c.roundTrip(ctx, req)
	if err != nil {
		return nil, err
	}
	if resp.Proto >= ProtoV2 {
		c.pmu.Lock()
		if c.proto < ProtoV2 {
			c.proto = resp.Proto
			c.pending = make(map[uint64]chan *Response)
			c.sem = make(chan struct{}, c.window)
			c.bw = bufio.NewWriterSize(c.conn, 32*1024)
			c.wenc = json.NewEncoder(c.bw)
			c.out = make(chan *Request, c.window+64)
			c.quit = make(chan struct{})
			go c.demux()
			go c.writer()
		}
		c.pmu.Unlock()
	}
	return resp, nil
}

// writer is the pipelined-mode send loop: it drains bursts of queued
// requests and flushes each burst with one write syscall.
func (c *Client) writer() {
	for {
		var req *Request
		select {
		case req = <-c.out:
		case <-c.quit:
			return
		}
		err := c.encodeReq(req)
		yielded := false
	drain:
		for err == nil {
			select {
			case more := <-c.out:
				err = c.encodeReq(more)
			default:
				// Yield once before flushing a short batch so callers
				// mid-send can join this write syscall.
				if !yielded {
					yielded = true
					runtime.Gosched()
					continue
				}
				break drain
			}
		}
		if err == nil {
			err = c.bw.Flush()
		}
		if err != nil {
			c.fail(fmt.Errorf("proxy connection lost: %w", err))
			// Keep draining so senders never block; quit unsticks us.
		}
	}
}

// encodeReq writes one request into the buffered writer, using the
// hand-rolled encoder for common shapes. Only the writer goroutine
// calls it.
func (c *Client) encodeReq(req *Request) error {
	if buf, ok := appendRequest(c.scratch[:0], req); ok {
		c.scratch = buf[:0]
		_, err := c.bw.Write(buf)
		return err
	}
	return c.wenc.Encode(req)
}

// enqueue hands a request to the coalescing writer.
func (c *Client) enqueue(req *Request) error {
	select {
	case c.out <- req:
		return nil
	case <-c.quit:
		return errors.New("proxy client closed")
	}
}

// demux is the pipelined-mode read loop: it routes each response to
// the pending call with the matching ID. On read failure every
// outstanding and future call gets the error.
func (c *Client) demux() {
	for {
		line, err := c.r.ReadBytes('\n')
		if err != nil {
			c.fail(fmt.Errorf("proxy connection lost: %w", err))
			return
		}
		var resp Response
		if !decodeResponse(line, &resp) {
			resp = Response{}
			if err := decodeResponseJSON(line, &resp); err != nil {
				c.fail(fmt.Errorf("proxy protocol error: %w", err))
				return
			}
		}
		c.pmu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.pmu.Unlock()
		if ch != nil {
			// A window slot is owned by the pending entry; removing
			// the entry frees the slot, so senders blocked in start
			// can proceed before anyone calls Wait.
			<-c.sem
			ch <- &resp
		}
	}
}

func (c *Client) fail(err error) {
	c.pmu.Lock()
	if c.dead == nil {
		c.dead = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan *Response)
	c.pmu.Unlock()
	for _, ch := range pending {
		<-c.sem // each dropped entry held one window slot
		close(ch)
	}
}

// Pending is an in-flight pipelined request; Wait blocks for its
// response.
type Pending struct {
	c   *Client
	id  uint64
	ch  chan *Response
	sql string
}

// respChanPool recycles the one-shot channels that carry a demuxed
// response to its waiter — one per request on the pipelined hot path.
// A channel goes back to the pool only on the clean path (exactly one
// send, received by Wait); failure paths close or abandon their
// channel, which must never be reused.
var respChanPool = sync.Pool{New: func() any { return make(chan *Response, 1) }}

// start sends a pipelined request and registers it for demuxing. It
// blocks while the in-flight window is full.
func (c *Client) start(ctx context.Context, req *Request) (*Pending, error) {
	if !c.pipelined() {
		return nil, errors.New("pipelining requires protocol v2 (call Hello first)")
	}
	select {
	case c.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, acerr.Canceled(ctx.Err())
	}
	ch := respChanPool.Get().(chan *Response)
	c.pmu.Lock()
	if err := c.dead; err != nil {
		c.pmu.Unlock()
		<-c.sem
		return nil, err
	}
	c.nextID++
	id := c.nextID
	req.ID = id
	c.pending[id] = ch
	c.pmu.Unlock()

	if err := c.enqueue(req); err != nil {
		c.pmu.Lock()
		_, present := c.pending[id]
		delete(c.pending, id)
		c.pmu.Unlock()
		if present {
			<-c.sem
		}
		return nil, err
	}
	return &Pending{c: c, id: id, ch: ch, sql: req.SQL}, nil
}

// Wait blocks until the response arrives or ctx is done. On ctx
// cancellation it fires a best-effort server-side cancel for the
// request and returns an error wrapping acerr.ErrCanceled.
func (p *Pending) Wait(ctx context.Context) (*Response, error) {
	if p.ch == nil {
		return nil, errors.New("proxy: response already consumed")
	}
	select {
	case resp, ok := <-p.ch:
		if !ok {
			p.c.pmu.Lock()
			err := p.c.dead
			p.c.pmu.Unlock()
			if err == nil {
				err = errors.New("proxy connection closed")
			}
			return nil, err
		}
		respChanPool.Put(p.ch)
		p.ch = nil
		return resp, nil
	case <-ctx.Done():
		p.c.pmu.Lock()
		_, present := p.c.pending[p.id]
		delete(p.c.pending, p.id)
		p.c.pmu.Unlock()
		if present {
			<-p.c.sem
		}
		// Fire-and-forget: tell the server to stop working on it.
		_ = p.c.enqueue(&Request{Op: "cancel", Target: p.id})
		return nil, acerr.Canceled(ctx.Err())
	}
}

// call runs one pipelined request to completion.
func (c *Client) call(ctx context.Context, req *Request) (*Response, error) {
	p, err := c.start(ctx, req)
	if err != nil {
		return nil, err
	}
	return p.Wait(ctx)
}

// Do sends one raw request and returns the raw response:
// application-level errors stay in Response.Error instead of becoming
// Go errors. Cluster forwarding uses it to relay a peer's responses
// verbatim.
func (c *Client) Do(ctx context.Context, req *Request) (*Response, error) {
	if !c.pipelined() {
		return c.roundTrip(ctx, req)
	}
	return c.call(ctx, req)
}

// Do sends one raw request on this lane; see Client.Do. Requires
// protocol v2.
func (l *Lane) Do(ctx context.Context, req *Request) (*Response, error) {
	req.SID = l.sid
	return l.c.call(ctx, req)
}

// dispatch runs a request in whichever mode the connection is in.
func (c *Client) dispatch(ctx context.Context, req *Request) (*Response, error) {
	if c.pipelined() {
		resp, err := c.call(ctx, req)
		if err != nil {
			return nil, err
		}
		if resp.Error != "" {
			return nil, acerr.FromCode(resp.Code, resp.Error)
		}
		return resp, nil
	}
	return c.roundTrip(ctx, req)
}

// Rows is a client-side result set.
type Rows struct {
	Columns []string
	Rows    [][]sqlvalue.Value
}

// Empty reports whether no rows were returned.
func (r *Rows) Empty() bool { return len(r.Rows) == 0 }

func respToRows(resp *Response) (*Rows, error) {
	if resp.Blocked {
		return nil, &BlockedError{Reason: resp.Reason}
	}
	out := &Rows{Columns: resp.Columns}
	for _, r := range resp.Rows {
		vals, err := decodeValues(r)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, vals)
	}
	return out, nil
}

// Query runs a SELECT with positional args; a policy block surfaces
// as a *BlockedError (errors.Is(err, ErrBlocked)).
func (c *Client) Query(ctx context.Context, sql string, args ...any) (*Rows, error) {
	resp, err := c.dispatch(ctx, &Request{Op: "query", SQL: sql, Args: args})
	if err != nil {
		return nil, err
	}
	return respToRows(resp)
}

// PendingRows is an in-flight pipelined query.
type PendingRows struct{ p *Pending }

// Wait blocks for the query's result.
func (pr *PendingRows) Wait(ctx context.Context) (*Rows, error) {
	resp, err := pr.p.Wait(ctx)
	if err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return nil, acerr.FromCode(resp.Code, resp.Error)
	}
	return respToRows(resp)
}

// QueryAsync sends a SELECT without waiting for its response,
// pipelining it behind earlier requests. Requires protocol v2 (call
// Hello first). Responses may complete out of order relative to other
// sessions' queries; within this client's default session the server
// still executes in send order.
func (c *Client) QueryAsync(ctx context.Context, sql string, args ...any) (*PendingRows, error) {
	if !c.pipelined() {
		return nil, errors.New("QueryAsync requires protocol v2 (call Hello first)")
	}
	p, err := c.start(ctx, &Request{Op: "query", SQL: sql, Args: args})
	if err != nil {
		return nil, err
	}
	return &PendingRows{p: p}, nil
}

// Exec runs a DML statement with positional args.
func (c *Client) Exec(ctx context.Context, sql string, args ...any) (int, error) {
	resp, err := c.dispatch(ctx, &Request{Op: "exec", SQL: sql, Args: args})
	if err != nil {
		return 0, err
	}
	return resp.Affected, nil
}

// Stats fetches server counters.
func (c *Client) Stats(ctx context.Context) (*StatsBody, error) {
	resp, err := c.dispatch(ctx, &Request{Op: "stats"})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}

// BatchItem is one statement of a Batch call.
type BatchItem struct {
	SQL  string
	Args []any
	// Exec marks the item as DML instead of a SELECT.
	Exec bool
}

// BatchResult is one statement's outcome. Exactly one of Rows /
// Affected / Err is meaningful: Err carries blocks (as *BlockedError)
// and failures, Rows the result set of a SELECT, Affected the row
// count of an exec.
type BatchResult struct {
	Rows     *Rows
	Affected int
	Err      error
}

// Batch submits the items in one round trip. They execute in order on
// this client's default session; a blocked or failing item records
// its error and the rest still run. Requires protocol v2.
func (c *Client) Batch(ctx context.Context, items []BatchItem) ([]BatchResult, error) {
	if !c.pipelined() {
		return nil, errors.New("Batch requires protocol v2 (call Hello first)")
	}
	req := &Request{Op: "batch", Batch: make([]Request, len(items))}
	for i, it := range items {
		op := "query"
		if it.Exec {
			op = "exec"
		}
		req.Batch[i] = Request{Op: op, SQL: it.SQL, Args: it.Args}
	}
	resp, err := c.call(ctx, req)
	if err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return nil, acerr.FromCode(resp.Code, resp.Error)
	}
	out := make([]BatchResult, len(resp.Batch))
	for i := range resp.Batch {
		sub := &resp.Batch[i]
		switch {
		case sub.Error != "":
			out[i].Err = acerr.FromCode(sub.Code, sub.Error)
		case sub.Blocked:
			out[i].Err = &BlockedError{Reason: sub.Reason}
		case items[i].Exec:
			out[i].Affected = sub.Affected
		default:
			rows, rerr := respToRows(sub)
			out[i].Rows, out[i].Err = rows, rerr
		}
	}
	return out, nil
}

// Lane is a handle for one multiplexed session (SID) over a shared
// pipelined connection. Requests on different lanes execute
// concurrently server-side; requests within a lane stay ordered.
type Lane struct {
	c   *Client
	sid uint64
}

// Lane returns the handle for session id sid (0 is the default
// session). Requires protocol v2.
func (c *Client) Lane(sid uint64) *Lane { return &Lane{c: c, sid: sid} }

func (l *Lane) call(ctx context.Context, req *Request) (*Response, error) {
	req.SID = l.sid
	resp, err := l.c.call(ctx, req)
	if err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return nil, acerr.FromCode(resp.Code, resp.Error)
	}
	return resp, nil
}

// Hello keys the lane's session principal.
func (l *Lane) Hello(ctx context.Context, attrs map[string]any) error {
	_, err := l.call(ctx, &Request{Op: "hello", Session: attrs})
	return err
}

// PendingOK is an in-flight pipelined request whose response carries
// no payload beyond success or failure (a lane hello).
type PendingOK struct{ p *Pending }

// Wait blocks for the request's outcome.
func (po *PendingOK) Wait(ctx context.Context) error {
	resp, err := po.p.Wait(ctx)
	if err != nil {
		return err
	}
	if resp.Error != "" {
		return acerr.FromCode(resp.Code, resp.Error)
	}
	return nil
}

// HelloAsync pipelines the lane's session hello without waiting for
// its response, so mass session setup — the open-loop harness keys
// hundreds of thousands of lanes before driving load — proceeds at
// window depth instead of one round trip per session.
func (l *Lane) HelloAsync(ctx context.Context, attrs map[string]any) (*PendingOK, error) {
	p, err := l.c.start(ctx, &Request{Op: "hello", SID: l.sid, Session: attrs})
	if err != nil {
		return nil, err
	}
	return &PendingOK{p: p}, nil
}

// HelloDurable keys the lane to a named durable session (see
// Client.HelloDurable); it returns how many history entries the server
// restored for the name.
func (l *Lane) HelloDurable(ctx context.Context, name string, attrs map[string]any) (int, error) {
	resp, err := l.call(ctx, &Request{Op: "hello", Session: attrs, Name: name})
	if err != nil {
		return 0, err
	}
	return resp.Restored, nil
}

// Query runs a SELECT on this lane's session.
func (l *Lane) Query(ctx context.Context, sql string, args ...any) (*Rows, error) {
	resp, err := l.call(ctx, &Request{Op: "query", SQL: sql, Args: args})
	if err != nil {
		return nil, err
	}
	return respToRows(resp)
}

// QueryAsync pipelines a SELECT on this lane's session.
func (l *Lane) QueryAsync(ctx context.Context, sql string, args ...any) (*PendingRows, error) {
	p, err := l.c.start(ctx, &Request{Op: "query", SID: l.sid, SQL: sql, Args: args})
	if err != nil {
		return nil, err
	}
	return &PendingRows{p: p}, nil
}

// Exec runs a DML statement on this lane's session.
func (l *Lane) Exec(ctx context.Context, sql string, args ...any) (int, error) {
	resp, err := l.call(ctx, &Request{Op: "exec", SQL: sql, Args: args})
	if err != nil {
		return 0, err
	}
	return resp.Affected, nil
}
