// Package proxy implements the SQL enforcement proxy of the paper's
// §2.2: a network server that intercepts each application-issued
// query, vets it against the policy with the compliance checker
// (considering the session's query history), and either forwards it to
// the database engine as-is or blocks it outright.
//
// The wire protocol is line-delimited JSON over TCP: one Request per
// line from the client, one Response per line back. Sessions are
// established with a "hello" carrying the principal's attributes
// (e.g. MyUId), which bind the policy's parameters.
//
// # Protocol v2 (pipelining)
//
// A client that sends "hello" with MaxProto >= 2 upgrades the
// connection to protocol v2, negotiated in the hello response's Proto
// field. Under v2:
//
//   - Every request carries a client-assigned sequence ID, echoed in
//     its response. Responses may return OUT OF ORDER; clients demux
//     by ID.
//   - A connection multiplexes independent sessions ("lanes") keyed
//     by the request's SID. Requests within one session are executed
//     strictly in arrival order — the history-dependence of compliance
//     decisions requires it — while different sessions' checks run
//     concurrently on a bounded per-connection worker pool.
//   - The server stops reading when Server.MaxInFlight requests are
//     queued or executing (TCP backpressure).
//   - "batch" submits sub-requests (query/exec) in one round trip;
//     they execute in order on the batch's session and return one
//     sub-response each, in order, inside the enclosing response. A
//     blocked or failing sub-query does not abort the rest.
//   - "cancel" (Target = an in-flight request ID) cancels that
//     request's context; the canceled request responds with the
//     "canceled" error code.
//   - Per-request TimeoutMillis bounds queueing plus execution.
//   - Error responses carry a stable machine-readable Code (see
//     internal/acerr) alongside the human-readable Error string.
//
// v1 clients are untouched: without the MaxProto >= 2 hello the
// server keeps the serial read-handle-respond loop, in-order
// responses, and v1 response shapes.
package proxy

import (
	"encoding/json"
	"fmt"

	"repro/internal/sqlvalue"
)

// Mode selects the proxy's enforcement behaviour.
type Mode int

// Enforcement modes.
const (
	// Enforce blocks non-compliant queries.
	Enforce Mode = iota
	// LogOnly decides but always forwards, recording violations.
	LogOnly
	// Off forwards everything without deciding.
	Off
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Enforce:
		return "enforce"
	case LogOnly:
		return "log-only"
	case Off:
		return "off"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Protocol versions. ProtoV1 is the implicit version of clients that
// never negotiate; ProtoV2 adds pipelining, sessions lanes, batch,
// and cancel.
const (
	ProtoV1 = 1
	ProtoV2 = 2
)

// Request is one client message.
type Request struct {
	// Op is "hello", "query", "exec", "stats", "batch", or "cancel".
	Op string `json:"op"`
	// ID is the client-assigned sequence number (v2). Echoed in the
	// response; 0 means "no ID" (v1 clients).
	ID uint64 `json:"id,omitempty"`
	// SID selects the session lane this request executes on (v2).
	// Lane 0 is the connection's default session.
	SID uint64 `json:"sid,omitempty"`
	// MaxProto, on "hello", is the highest protocol version the client
	// speaks; the server answers with the negotiated version.
	MaxProto int `json:"maxProto,omitempty"`
	// Name, on "hello", declares a durable session: when the server
	// runs with a WAL, the session's query history is persisted under
	// this name and restored across proxy restarts. Empty means an
	// ephemeral session (the v1 behaviour). Ignored when the server has
	// no WAL.
	Name string `json:"name,omitempty"`
	// Session attributes for "hello" (policy parameter values).
	Session map[string]any `json:"session,omitempty"`
	// SQL and arguments for "query"/"exec".
	SQL   string         `json:"sql,omitempty"`
	Args  []any          `json:"args,omitempty"`
	Named map[string]any `json:"named,omitempty"`
	// Batch holds the sub-requests of a "batch" op (query/exec only).
	Batch []Request `json:"batch,omitempty"`
	// Views, on "policy.stage", carries the candidate policy's view SQL
	// by name. On "policy.diff", Target is the last diff sequence the
	// client has seen (only newer records return).
	Views map[string]string `json:"views,omitempty"`
	// Target is the in-flight request ID a "cancel" op aborts, or the
	// after-sequence cursor of a "policy.diff".
	Target uint64 `json:"target,omitempty"`
	// TimeoutMillis bounds this request's queueing plus execution; 0
	// means no per-request deadline.
	TimeoutMillis int64 `json:"timeoutMillis,omitempty"`

	// Cluster fields (cluster.* ops between peer nodes; DESIGN.md §16).
	// Node identifies the sending node; Epoch its membership epoch.
	// Term and TTLMillis carry the lease a shipping owner asserts on
	// "cluster.ship"; Ship is the shipped WAL record batch.
	Node      string       `json:"node,omitempty"`
	Epoch     uint64       `json:"epoch,omitempty"`
	Term      uint64       `json:"term,omitempty"`
	TTLMillis int64        `json:"ttlMillis,omitempty"`
	Ship      []ShipRecord `json:"ship,omitempty"`
}

// ShipRecord is one WAL record in flight between cluster peers: the
// session it belongs to, the durable record type byte, and the exact
// payload bytes the owner's WAL logged (base64 on the wire).
type ShipRecord struct {
	Session string `json:"session"`
	Type    byte   `json:"type"`
	Payload []byte `json:"payload"`
}

// Response is one server message.
type Response struct {
	// ID echoes the request's sequence number (v2).
	ID uint64 `json:"id,omitempty"`
	OK bool   `json:"ok"`
	// Proto, on a hello response, is the negotiated protocol version.
	Proto int    `json:"proto,omitempty"`
	Error string `json:"error,omitempty"`
	// Code is the stable machine-readable error code (internal/acerr
	// wire codes); set alongside Error, and to "blocked" on policy
	// blocks.
	Code string `json:"code,omitempty"`
	// Restored, on a durable hello response, is how many history
	// entries the session came back with from the WAL.
	Restored int        `json:"restored,omitempty"`
	Blocked  bool       `json:"blocked,omitempty"`
	Reason   string     `json:"reason,omitempty"`
	Views    []string   `json:"views,omitempty"`
	Columns  []string   `json:"columns,omitempty"`
	Rows     [][]any    `json:"rows,omitempty"`
	Affected int        `json:"affected,omitempty"`
	Stats    *StatsBody `json:"stats,omitempty"`
	// Policy reports the policy lifecycle state (policy.* ops).
	Policy *PolicyBody `json:"policy,omitempty"`
	// Batch holds sub-responses of a "batch" op, in request order.
	Batch []Response `json:"batch,omitempty"`
	// Cluster reports cluster state (cluster.* ops).
	Cluster *ClusterBody `json:"cluster,omitempty"`
}

// ClusterBody is the payload of the cluster.* ops: this node's
// identity and membership view, the sessions it serves vs forwards,
// ship-stream accounting, and the leases it currently holds as a
// follower.
type ClusterBody struct {
	Self     string `json:"self"`
	Epoch    uint64 `json:"epoch"`
	Draining bool   `json:"draining,omitempty"`

	Members []MemberStatus `json:"members,omitempty"`
	Leases  []LeaseStatus  `json:"leases,omitempty"`

	// Session placement: hellos served locally vs forwarded to an
	// owner, and the queries relayed over forwarded sessions.
	LocalSessions     int64 `json:"localSessions,omitempty"`
	ForwardedSessions int64 `json:"forwardedSessions,omitempty"`
	ForwardedOps      int64 `json:"forwardedOps,omitempty"`
	ForwardErrors     int64 `json:"forwardErrors,omitempty"`

	// Ship-stream accounting (this node as an owner): records and bytes
	// enqueued for followers, acknowledged by them, and dropped under
	// backpressure. Lag is enqueued minus acknowledged.
	ShipEnqueued int64 `json:"shipEnqueued,omitempty"`
	ShipAcked    int64 `json:"shipAcked,omitempty"`
	ShipDropped  int64 `json:"shipDropped,omitempty"`
	ShipBytes    int64 `json:"shipBytes,omitempty"`

	// Takeovers counts sessions this node adopted after an owner's
	// lease expired.
	Takeovers int64 `json:"takeovers,omitempty"`
}

// MemberStatus is one peer in a node's membership view.
type MemberStatus struct {
	ID       string `json:"id"`
	Addr     string `json:"addr"`
	Self     bool   `json:"self,omitempty"`
	Alive    bool   `json:"alive"`
	Draining bool   `json:"draining,omitempty"`
	// Epoch is the member's own epoch as last reported by its probe
	// response (0 until first contact).
	Epoch uint64 `json:"epoch,omitempty"`
}

// LeaseStatus is one lease this node holds as a follower: it accepts
// shipped records from Origin under Term until the lease expires.
type LeaseStatus struct {
	Origin string `json:"origin"`
	Term   uint64 `json:"term"`
	// ExpiresInMillis is the remaining validity (negative: expired).
	ExpiresInMillis int64 `json:"expiresInMillis"`
}

// PolicyBody is the payload of the policy.* admin ops: the resident
// policy versions (the enforcing active and, when a shadow trial is
// running, the staged candidate), the cumulative shadow counters, and
// — for policy.diff — recent divergence records.
type PolicyBody struct {
	ActiveEpoch       uint64 `json:"activeEpoch"`
	ActiveFingerprint string `json:"activeFingerprint"`
	ActiveViews       int    `json:"activeViews"`

	Staged               bool   `json:"staged"`
	CandidateEpoch       uint64 `json:"candidateEpoch,omitempty"`
	CandidateParent      uint64 `json:"candidateParent,omitempty"`
	CandidateFingerprint string `json:"candidateFingerprint,omitempty"`
	CandidateViews       int    `json:"candidateViews,omitempty"`
	// CandidateVersionID is the WAL-scoped version id of the staged
	// candidate (0 when the proxy runs without durability).
	CandidateVersionID uint64 `json:"candidateVersionId,omitempty"`

	// Shadow accounting (cumulative across trials): dual-decides
	// executed, divergences total and by kind, and the newest diff
	// sequence issued so far (the cursor a policy.diff resumes from).
	ShadowDecides  int64  `json:"shadowDecides,omitempty"`
	Divergences    int64  `json:"divergences,omitempty"`
	DivergeTighten int64  `json:"divergeTighten,omitempty"`
	DivergeLoosen  int64  `json:"divergeLoosen,omitempty"`
	LastDiffSeq    uint64 `json:"lastDiffSeq,omitempty"`

	// Diffs holds divergence records newer than the request's Target
	// cursor (policy.diff only), oldest first.
	Diffs []ShadowDiff `json:"diffs,omitempty"`
}

// ShadowDiff is one dual-decide divergence: a live query the active
// and candidate policies decided differently. Records stream to the
// structured log and to subscribers, and a bounded ring retains the
// most recent ones for policy.diff polling.
type ShadowDiff struct {
	// Seq orders diffs; the ring evicts oldest-first, so gaps in Seq
	// tell a poller it missed records.
	Seq     uint64 `json:"seq"`
	SQL     string `json:"sql"`
	Session string `json:"session,omitempty"`
	// Active / Shadow are the two verdicts; Kind classifies the
	// divergence ("tighten": active allows, candidate blocks;
	// "loosen": the reverse).
	ActiveAllowed bool   `json:"activeAllowed"`
	ShadowAllowed bool   `json:"shadowAllowed"`
	ActiveReason  string `json:"activeReason,omitempty"`
	ShadowReason  string `json:"shadowReason,omitempty"`
	Kind          string `json:"kind"`
	ActiveEpoch   uint64 `json:"activeEpoch,omitempty"`
	ShadowEpoch   uint64 `json:"shadowEpoch,omitempty"`
}

// StatsBody reports server counters over the wire: decision counts,
// cache effectiveness (decision templates and the per-session
// trace-fact cache), recent-window latency percentiles, and
// connection accounting.
type StatsBody struct {
	Queries    int `json:"queries"`
	Decisions  int `json:"decisions"`
	Allowed    int `json:"allowed"`
	Blocked    int `json:"blocked"`
	CacheHits  int `json:"cacheHits"`
	Violations int `json:"violations"` // log-only mode

	// Cache effectiveness.
	CacheHitRate          float64 `json:"cacheHitRate"`
	CacheEntries          int     `json:"cacheEntries"`
	FactEntriesReused     uint64  `json:"factEntriesReused"`
	FactEntriesTranslated uint64  `json:"factEntriesTranslated"`
	FactCacheHitRate      float64 `json:"factCacheHitRate"`

	// Cold-path effectiveness: candidate policy views the compiled
	// index searched vs pruned before any embedding search, and the
	// pool's currently-busy extra workers (all decisions — session
	// lanes and the batch op alike — dispatch onto the checker's one
	// pool).
	ColdViewsKept   int     `json:"coldViewsKept"`
	ColdViewsPruned int     `json:"coldViewsPruned"`
	ColdPruneRatio  float64 `json:"coldPruneRatio"`
	ColdWorkersBusy int     `json:"coldWorkersBusy"`

	// Latency over the recent-query window, in microseconds.
	LatencyP50Micros  int64   `json:"latencyP50Micros"`
	LatencyP90Micros  int64   `json:"latencyP90Micros"`
	LatencyP99Micros  int64   `json:"latencyP99Micros"`
	LatencyMeanMicros float64 `json:"latencyMeanMicros"`
	LatencySamples    int     `json:"latencySamples"`

	// Connection accounting.
	ActiveConns   int `json:"activeConns"`
	TotalConns    int `json:"totalConns"`
	RejectedConns int `json:"rejectedConns"`
	// CanceledReqs counts in-flight requests aborted by a v2 "cancel"
	// op.
	CanceledReqs int `json:"canceledReqs,omitempty"`

	// Inline fast path and write coalescing (v2): queries executed on
	// the read goroutine (warm lane-idle hits), warm probes that fell
	// back to the lane queue, response frames encoded, and flush
	// syscalls issued — frames/flushes is the write batching factor.
	InlineHits   int `json:"inlineHits,omitempty"`
	InlineBypass int `json:"inlineBypass,omitempty"`
	WriteFrames  int `json:"writeFrames,omitempty"`
	WriteFlushes int `json:"writeFlushes,omitempty"`

	// Durability (WAL) accounting; zero / absent when the proxy runs
	// without a WAL.
	WALEnabled       bool  `json:"walEnabled,omitempty"`
	WALAppends       int64 `json:"walAppends,omitempty"`
	WALBatches       int64 `json:"walBatches,omitempty"`
	WALFsyncs        int64 `json:"walFsyncs,omitempty"`
	WALAppendedBytes int64 `json:"walAppendedBytes,omitempty"`
	WALCheckpoints   int64 `json:"walCheckpoints,omitempty"`
	// WALRecoveredSessions / WALRecoveredEntries report what the last
	// Open replayed from disk.
	WALRecoveredSessions int `json:"walRecoveredSessions,omitempty"`
	WALRecoveredEntries  int `json:"walRecoveredEntries,omitempty"`
}

// encodeRows converts engine values to JSON-friendly values.
func encodeRows(rows [][]sqlvalue.Value) [][]any {
	out := make([][]any, len(rows))
	for i, r := range rows {
		row := make([]any, len(r))
		for j, v := range r {
			row[j] = v.Any()
		}
		out[i] = row
	}
	return out
}

// decodeValues converts JSON-decoded values to engine values.
// encoding/json decodes numbers as float64; integral floats become
// INTEGERs to keep key comparisons exact.
func decodeValues(vals []any) ([]sqlvalue.Value, error) {
	out := make([]sqlvalue.Value, len(vals))
	for i, v := range vals {
		sv, err := decodeValue(v)
		if err != nil {
			return nil, err
		}
		out[i] = sv
	}
	return out, nil
}

func decodeValue(v any) (sqlvalue.Value, error) {
	switch x := v.(type) {
	case float64:
		if x == float64(int64(x)) {
			return sqlvalue.NewInt(int64(x)), nil
		}
		return sqlvalue.NewReal(x), nil
	case json.Number:
		// Normally normalized away by the wire decoders; handled here
		// so a stray Number from any other decode path stays exact.
		return decodeValue(normalizeWireNumber(x))
	}
	return sqlvalue.FromAny(v)
}
