// Package proxy implements the SQL enforcement proxy of the paper's
// §2.2: a network server that intercepts each application-issued
// query, vets it against the policy with the compliance checker
// (considering the session's query history), and either forwards it to
// the database engine as-is or blocks it outright.
//
// The wire protocol is line-delimited JSON over TCP: one Request per
// line from the client, one Response per line back. Sessions are
// established with a "hello" carrying the principal's attributes
// (e.g. MyUId), which bind the policy's parameters.
package proxy

import (
	"fmt"

	"repro/internal/sqlvalue"
)

// Mode selects the proxy's enforcement behaviour.
type Mode int

// Enforcement modes.
const (
	// Enforce blocks non-compliant queries.
	Enforce Mode = iota
	// LogOnly decides but always forwards, recording violations.
	LogOnly
	// Off forwards everything without deciding.
	Off
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Enforce:
		return "enforce"
	case LogOnly:
		return "log-only"
	case Off:
		return "off"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Request is one client message.
type Request struct {
	// Op is "hello", "query", "exec", or "stats".
	Op string `json:"op"`
	// Session attributes for "hello" (policy parameter values).
	Session map[string]any `json:"session,omitempty"`
	// SQL and arguments for "query"/"exec".
	SQL   string         `json:"sql,omitempty"`
	Args  []any          `json:"args,omitempty"`
	Named map[string]any `json:"named,omitempty"`
}

// Response is one server message.
type Response struct {
	OK       bool       `json:"ok"`
	Error    string     `json:"error,omitempty"`
	Blocked  bool       `json:"blocked,omitempty"`
	Reason   string     `json:"reason,omitempty"`
	Views    []string   `json:"views,omitempty"`
	Columns  []string   `json:"columns,omitempty"`
	Rows     [][]any    `json:"rows,omitempty"`
	Affected int        `json:"affected,omitempty"`
	Stats    *StatsBody `json:"stats,omitempty"`
}

// StatsBody reports server counters over the wire: decision counts,
// cache effectiveness (decision templates and the per-session
// trace-fact cache), recent-window latency percentiles, and
// connection accounting.
type StatsBody struct {
	Queries    int `json:"queries"`
	Decisions  int `json:"decisions"`
	Allowed    int `json:"allowed"`
	Blocked    int `json:"blocked"`
	CacheHits  int `json:"cacheHits"`
	Violations int `json:"violations"` // log-only mode

	// Cache effectiveness.
	CacheHitRate          float64 `json:"cacheHitRate"`
	CacheEntries          int     `json:"cacheEntries"`
	FactEntriesReused     uint64  `json:"factEntriesReused"`
	FactEntriesTranslated uint64  `json:"factEntriesTranslated"`
	FactCacheHitRate      float64 `json:"factCacheHitRate"`

	// Latency over the recent-query window, in microseconds.
	LatencyP50Micros  int64   `json:"latencyP50Micros"`
	LatencyP90Micros  int64   `json:"latencyP90Micros"`
	LatencyP99Micros  int64   `json:"latencyP99Micros"`
	LatencyMeanMicros float64 `json:"latencyMeanMicros"`
	LatencySamples    int     `json:"latencySamples"`

	// Connection accounting.
	ActiveConns   int `json:"activeConns"`
	TotalConns    int `json:"totalConns"`
	RejectedConns int `json:"rejectedConns"`
}

// encodeRows converts engine values to JSON-friendly values.
func encodeRows(rows [][]sqlvalue.Value) [][]any {
	out := make([][]any, len(rows))
	for i, r := range rows {
		row := make([]any, len(r))
		for j, v := range r {
			row[j] = v.Any()
		}
		out[i] = row
	}
	return out
}

// decodeValues converts JSON-decoded values to engine values.
// encoding/json decodes numbers as float64; integral floats become
// INTEGERs to keep key comparisons exact.
func decodeValues(vals []any) ([]sqlvalue.Value, error) {
	out := make([]sqlvalue.Value, len(vals))
	for i, v := range vals {
		sv, err := decodeValue(v)
		if err != nil {
			return nil, err
		}
		out[i] = sv
	}
	return out, nil
}

func decodeValue(v any) (sqlvalue.Value, error) {
	if f, ok := v.(float64); ok {
		if f == float64(int64(f)) {
			return sqlvalue.NewInt(int64(f)), nil
		}
		return sqlvalue.NewReal(f), nil
	}
	return sqlvalue.FromAny(v)
}
