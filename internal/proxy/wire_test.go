package proxy

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// The hand-rolled wire codec is an optimization, not a format: every
// message it encodes must be byte-compatible JSON, and every message
// it decodes must produce exactly what encoding/json would. These
// tests pin that equivalence; anything the fast path cannot represent
// must bail (second return false) rather than guess.

func TestWireEncodeResponseMatchesJSON(t *testing.T) {
	cases := []Response{
		{ID: 7, OK: true, Proto: 2},
		{OK: true},
		{ID: 1, OK: true, Columns: []string{"EId", "Title"}, Rows: [][]any{{int64(3), "standup"}, {int64(4), "retro"}}},
		{ID: 2, OK: true, Affected: 5},
		{ID: 3, OK: false, Blocked: true, Reason: "not covered by any view", Code: "blocked"},
		{ID: 9, OK: true, Rows: [][]any{{nil, true, 1.5, int64(-12)}}},
		{ID: 10, OK: true, Columns: []string{"n"}, Rows: [][]any{}},
		{ID: 11, OK: true, Columns: []string{"quote\"here"}, Rows: [][]any{{"tab\tnewline\n"}}},
	}
	for i, resp := range cases {
		buf, ok := appendResponse(nil, &resp)
		if !ok {
			t.Fatalf("case %d: fast encoder refused a representable response: %+v", i, resp)
		}
		want, err := json.Marshal(&resp)
		if err != nil {
			t.Fatal(err)
		}
		if got := bytes.TrimRight(buf, "\n"); !bytes.Equal(got, want) {
			t.Errorf("case %d:\n fast %s\n json %s", i, got, want)
		}
	}
}

func TestWireEncodeResponseBailsOnComplex(t *testing.T) {
	cases := []Response{
		{ID: 1, Error: "boom"},
		{ID: 2, OK: true, Stats: &StatsBody{}},
		{ID: 3, OK: true, Batch: []Response{{OK: true}}},
		{ID: 4, OK: true, Rows: [][]any{{map[string]any{"k": 1}}}},
	}
	for i, resp := range cases {
		if _, ok := appendResponse(nil, &resp); ok {
			t.Errorf("case %d: fast encoder should have bailed: %+v", i, resp)
		}
	}
}

func TestWireEncodeRequestMatchesJSON(t *testing.T) {
	cases := []Request{
		{Op: "query", ID: 3, SID: 1, SQL: "SELECT EId FROM Attendance WHERE UId = ?", Args: []any{int64(4)}},
		{Op: "hello", MaxProto: 2, Session: map[string]any{"MyUId": int64(7)}},
		{Op: "cancel", ID: 12, Target: 9},
		{Op: "exec", ID: 4, SQL: "UPDATE Users SET Name = ? WHERE UId = ?", Args: []any{"bob", int64(2)}, TimeoutMillis: 250},
		{Op: "stats"},
	}
	for i, req := range cases {
		buf, ok := appendRequest(nil, &req)
		if !ok {
			t.Fatalf("case %d: fast encoder refused a representable request: %+v", i, req)
		}
		want, err := json.Marshal(&req)
		if err != nil {
			t.Fatal(err)
		}
		if got := bytes.TrimRight(buf, "\n"); !bytes.Equal(got, want) {
			t.Errorf("case %d:\n fast %s\n json %s", i, got, want)
		}
	}
}

// roundTripEquivalence asserts the fast decoder agrees field-for-field
// with the normalized reflective fallback (decodeRequestJSON) on the
// same line. The fallback — not raw encoding/json — is the reference
// because both paths must agree on number typing: integral tokens
// decode as int64/uint64 so values past 2^53 survive, where plain
// encoding/json would round them through float64.
func decodeBothRequest(t *testing.T, line []byte) (fast Request, ok bool, slow Request) {
	t.Helper()
	ok = decodeRequest(line, &fast)
	if err := decodeRequestJSON(line, &slow); err != nil {
		t.Fatalf("reference decode failed: %v\n%s", err, line)
	}
	return
}

func TestWireDecodeRequestMatchesJSON(t *testing.T) {
	lines := []string{
		`{"op":"query","id":3,"sid":1,"sql":"SELECT 1","args":[4,"x",true,null]}`,
		`{"op":"hello","maxProto":2,"session":{"MyUId":7}}`,
		`{"op":"cancel","id":5,"target":3}`,
		`{"op":"exec","sql":"DELETE FROM T","timeoutMillis":100}`,
		`{"op":"query","sql":"SELECT 1","named":{"a":1}}`,
		`{"op":"query","sql":"SELECT 1","args":[9007199254740993,-9007199254740993,18446744073709551615,1.5,-0.25,2e3]}`,
	}
	for _, l := range lines {
		fast, ok, slow := decodeBothRequest(t, []byte(l))
		if !ok {
			t.Errorf("fast decoder refused: %s", l)
			continue
		}
		if !reflect.DeepEqual(fast, slow) {
			t.Errorf("decode mismatch on %s:\n fast %+v\n json %+v", l, fast, slow)
		}
	}
}

func TestWireDecodeRequestBailsOnComplex(t *testing.T) {
	lines := []string{
		`{"op":"batch","batch":[{"op":"query","sql":"SELECT 1"}]}`,
		`{"op":"query","sql":"quote \" inside"}`,
		`{"op":"query","args":[{"nested":1}]}`,
		`{"op":"query","sql":"SELECT 1"`,
	}
	for _, l := range lines {
		var req Request
		if decodeRequest([]byte(l), &req) {
			t.Errorf("fast decoder should have bailed: %s", l)
		}
	}
}

func TestWireDecodeResponseMatchesJSON(t *testing.T) {
	lines := []string{
		`{"id":7,"ok":true,"proto":2}`,
		`{"id":1,"ok":true,"columns":["a","b"],"rows":[[1,"x"],[2,null]]}`,
		`{"id":3,"ok":false,"code":"blocked","blocked":true,"reason":"no view"}`,
		`{"id":4,"ok":false,"error":"parse: bad","code":"parse"}`,
		`{"id":5,"ok":true,"affected":2}`,
		`{"id":6,"ok":true,"rows":[[9007199254740993,18446744073709551615,-9007199254740993,0.5]]}`,
	}
	for _, l := range lines {
		var fast, slow Response
		if !decodeResponse([]byte(l), &fast) {
			t.Errorf("fast decoder refused: %s", l)
			continue
		}
		if err := decodeResponseJSON([]byte(l), &slow); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fast, slow) {
			t.Errorf("decode mismatch on %s:\n fast %+v\n json %+v", l, fast, slow)
		}
	}
}

// TestWireBigIntegerRoundTrip pins the satellite bugfix: integers past
// 2^53 must survive encode → decode exactly. Before the int64/uint64
// decode path, every number came back as float64 and 9007199254740993
// silently became 9007199254740992 — a corrupted argument the policy
// check and the engine would then both act on.
func TestWireBigIntegerRoundTrip(t *testing.T) {
	args := []any{
		int64(1) << 53,             // first float64-exact boundary
		int64(1)<<53 + 1,           // first value float64 CANNOT hold
		int64(9223372036854775807), // MaxInt64
		int64(-9223372036854775808),
		uint64(18446744073709551615), // MaxUint64
	}
	req := Request{Op: "query", ID: 1, SQL: "SELECT 1", Args: args}
	line, ok := appendRequest(nil, &req)
	if !ok {
		t.Fatalf("fast encoder refused big integers: %+v", req)
	}
	for name, decode := range map[string]func([]byte, *Request) bool{
		"fast": decodeRequest,
		"fallback": func(b []byte, r *Request) bool {
			return decodeRequestJSON(b, r) == nil
		},
	} {
		var got Request
		if !decode(line, &got) {
			t.Fatalf("%s decoder refused: %s", name, line)
		}
		if !reflect.DeepEqual(got.Args, args) {
			t.Errorf("%s decoder corrupted big integers:\n sent %v\n got  %v", name, args, got.Args)
		}
	}

	resp := Response{ID: 1, OK: true, Columns: []string{"n"}, Rows: [][]any{args}}
	rline, ok := appendResponse(nil, &resp)
	if !ok {
		t.Fatalf("fast encoder refused big-integer rows")
	}
	var gotResp Response
	if !decodeResponse(rline, &gotResp) {
		t.Fatalf("fast decoder refused: %s", rline)
	}
	if !reflect.DeepEqual(gotResp.Rows, resp.Rows) {
		t.Errorf("response rows corrupted:\n sent %v\n got  %v", resp.Rows, gotResp.Rows)
	}
}

func TestWireDecodeResponseBailsOnComplex(t *testing.T) {
	lines := []string{
		`{"id":1,"ok":true,"stats":{"conns":1}}`,
		`{"id":2,"ok":true,"batch":[{"ok":true}]}`,
		`{"id":3,"ok":true,"views":["V1"],"rows":[[1]]}`,
		`{"id":4,"ok":true,"columns":["\u0041"]}`,
	}
	for _, l := range lines {
		var resp Response
		if decodeResponse([]byte(l), &resp) {
			t.Errorf("fast decoder should have bailed: %s", l)
		}
	}
}
