package proxy

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentClients drives many sessions in parallel against one
// server; per-connection histories must not interfere (run with -race
// in CI).
func TestConcurrentClients(t *testing.T) {
	srv := testServer(t, Enforce)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(uid int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			if err := cl.Hello(context.Background(), map[string]any{"MyUId": uid}); err != nil {
				errs <- err
				return
			}
			for i := 0; i < 20; i++ {
				rows, err := cl.Query(context.Background(), "SELECT EId FROM Attendance WHERE UId = ?", uid)
				if err != nil {
					errs <- fmt.Errorf("uid %d: %w", uid, err)
					return
				}
				_ = rows
				// Cross-user access must block on every iteration.
				if _, err := cl.Query(context.Background(), "SELECT EId FROM Attendance WHERE UId = ?", uid+1); err == nil {
					errs <- fmt.Errorf("uid %d: cross-user query was not blocked", uid)
					return
				}
			}
		}(g%2 + 1)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestMalformedRequests: garbage lines get error responses and the
// connection keeps serving.
func TestMalformedRequests(t *testing.T) {
	srv := testServer(t, Enforce)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	send := func(line string) Response {
		t.Helper()
		if _, err := conn.Write([]byte(line + "\n")); err != nil {
			t.Fatal(err)
		}
		raw, err := r.ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		var resp Response
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatalf("bad response %q: %v", raw, err)
		}
		return resp
	}

	if resp := send("this is not json"); resp.Error == "" {
		t.Fatal("garbage line should produce an error response")
	}
	if resp := send(`{"op":"frobnicate"}`); resp.Error == "" {
		t.Fatal("unknown op should error")
	}
	if resp := send(`{"op":"query","sql":"SELECT FROM"}`); resp.Error == "" {
		t.Fatal("parse error should surface")
	}
	// Still alive afterwards.
	if resp := send(`{"op":"hello","session":{"MyUId":1}}`); !resp.OK {
		t.Fatalf("hello after errors: %+v", resp)
	}
	if resp := send(`{"op":"query","sql":"SELECT EId FROM Attendance WHERE UId = 1"}`); !resp.OK || resp.Blocked {
		t.Fatalf("query after errors: %+v", resp)
	}
}

// TestLargeResultOverWire: a result bigger than the default scanner
// buffer round-trips.
func TestLargeResultOverWire(t *testing.T) {
	srv := testServer(t, Off)
	// Seed many rows with long text.
	long := strings.Repeat("x", 2048)
	for i := 10; i < 200; i++ {
		srv.DB.MustExec("INSERT INTO Events (EId, Title, Notes) VALUES (?, ?, ?)", i, long, long)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Hello(context.Background(), map[string]any{"MyUId": 1}); err != nil {
		t.Fatal(err)
	}
	rows, err := cl.Query(context.Background(), "SELECT * FROM Events")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) < 190 {
		t.Fatalf("large result truncated: %d rows", len(rows.Rows))
	}
	if rows.Rows[len(rows.Rows)-1][1].Text() != long {
		t.Fatal("long text corrupted over the wire")
	}
}

// TestSessionAttributeTypes: non-integer session attributes survive
// the JSON round trip with correct types.
func TestSessionAttributeTypes(t *testing.T) {
	srv := testServer(t, Enforce)
	sess := NewSession(nil)
	resp := srv.HandleIn(&Request{Op: "hello", Session: map[string]any{
		"MyUId": 3, "MyRole": "admin", "MyScore": 1.5,
	}}, sess)
	if !resp.OK {
		t.Fatalf("hello: %+v", resp)
	}
	attrs := sess.inner.attrs
	if attrs["MyUId"].Int() != 3 {
		t.Errorf("int attr: %v", attrs["MyUId"])
	}
	if attrs["MyRole"].Text() != "admin" {
		t.Errorf("text attr: %v", attrs["MyRole"])
	}
	if attrs["MyScore"].Real() != 1.5 {
		t.Errorf("real attr: %v", attrs["MyScore"])
	}
}
