package proxy

import (
	"bytes"
	"encoding/json"
	"strconv"
	"sync"
	"unicode/utf8"
)

// The proxy frames v2 traffic as one JSON object per line, and the
// overwhelming majority of those objects have a tiny, flat shape:
// {"op":"query","id":7,"sid":3,"sql":"...","args":[1]} one way and
// {"id":7,"ok":true,"columns":["EId"],"rows":[["i:2"]]} back. The
// reflection-based encoding/json round trip costs more than the
// access check it transports, so the helpers below hand-encode and
// hand-decode exactly those shapes. Anything they do not fully
// understand — batches, stats bodies, nested values, escaped strings
// — falls back to encoding/json, so the wire format stays identical
// and the fallback is always correct.

// plainJSONString reports whether s can be emitted between quotes
// with no escaping.
func plainJSONString(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c == '"' || c == '\\' || c >= 0x80 {
			return false
		}
	}
	return true
}

// appendString appends s as a JSON string, delegating to
// encoding/json when escaping is needed.
func appendString(buf []byte, s string) []byte {
	if plainJSONString(s) {
		buf = append(buf, '"')
		buf = append(buf, s...)
		return append(buf, '"')
	}
	b, _ := json.Marshal(s)
	return append(buf, b...)
}

// appendResponse hand-encodes the common response shapes. It returns
// ok=false when resp needs the reflective encoder (stats, policy,
// batch, views, or an error payload).
func appendResponse(buf []byte, resp *Response) ([]byte, bool) {
	if resp.Error != "" || resp.Stats != nil || resp.Policy != nil || resp.Batch != nil || resp.Views != nil || resp.Cluster != nil {
		return buf, false
	}
	buf = append(buf, '{')
	if resp.ID != 0 {
		buf = append(buf, `"id":`...)
		buf = strconv.AppendUint(buf, resp.ID, 10)
		buf = append(buf, ',')
	}
	buf = append(buf, `"ok":`...)
	buf = strconv.AppendBool(buf, resp.OK)
	if resp.Proto != 0 {
		buf = append(buf, `,"proto":`...)
		buf = strconv.AppendInt(buf, int64(resp.Proto), 10)
	}
	if resp.Restored != 0 {
		buf = append(buf, `,"restored":`...)
		buf = strconv.AppendInt(buf, int64(resp.Restored), 10)
	}
	if resp.Code != "" {
		buf = append(buf, `,"code":`...)
		buf = appendString(buf, resp.Code)
	}
	if resp.Blocked {
		buf = append(buf, `,"blocked":true,"reason":`...)
		buf = appendString(buf, resp.Reason)
	}
	if len(resp.Columns) > 0 {
		buf = append(buf, `,"columns":[`...)
		for i, c := range resp.Columns {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendString(buf, c)
		}
		buf = append(buf, ']')
	}
	if len(resp.Rows) > 0 {
		buf = append(buf, `,"rows":[`...)
		for i, row := range resp.Rows {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, '[')
			for j, cell := range row {
				if j > 0 {
					buf = append(buf, ',')
				}
				var ok bool
				buf, ok = appendScalar(buf, cell)
				if !ok {
					return buf, false
				}
			}
			buf = append(buf, ']')
		}
		buf = append(buf, ']')
	}
	if resp.Affected != 0 {
		buf = append(buf, `,"affected":`...)
		buf = strconv.AppendInt(buf, int64(resp.Affected), 10)
	}
	buf = append(buf, '}', '\n')
	return buf, true
}

// appendRequest hand-encodes the common request shapes (flat scalar
// args and session attrs). ok=false falls back to encoding/json.
func appendRequest(buf []byte, req *Request) ([]byte, bool) {
	if req.Batch != nil || req.Named != nil || req.Views != nil ||
		req.Node != "" || req.Ship != nil || req.Epoch != 0 || req.Term != 0 || req.TTLMillis != 0 {
		return buf, false
	}
	buf = append(buf, `{"op":`...)
	buf = appendString(buf, req.Op)
	if req.ID != 0 {
		buf = append(buf, `,"id":`...)
		buf = strconv.AppendUint(buf, req.ID, 10)
	}
	if req.SID != 0 {
		buf = append(buf, `,"sid":`...)
		buf = strconv.AppendUint(buf, req.SID, 10)
	}
	if req.MaxProto != 0 {
		buf = append(buf, `,"maxProto":`...)
		buf = strconv.AppendInt(buf, int64(req.MaxProto), 10)
	}
	if req.Name != "" {
		buf = append(buf, `,"name":`...)
		buf = appendString(buf, req.Name)
	}
	if len(req.Session) > 0 {
		buf = append(buf, `,"session":{`...)
		first := true
		for k, v := range req.Session {
			cell, ok := appendScalar(nil, v)
			if !ok {
				return buf, false
			}
			if !first {
				buf = append(buf, ',')
			}
			first = false
			buf = appendString(buf, k)
			buf = append(buf, ':')
			buf = append(buf, cell...)
		}
		buf = append(buf, '}')
	}
	if req.SQL != "" {
		buf = append(buf, `,"sql":`...)
		buf = appendString(buf, req.SQL)
	}
	if len(req.Args) > 0 {
		buf = append(buf, `,"args":[`...)
		for i, a := range req.Args {
			if i > 0 {
				buf = append(buf, ',')
			}
			var ok bool
			buf, ok = appendScalar(buf, a)
			if !ok {
				return buf, false
			}
		}
		buf = append(buf, ']')
	}
	if req.Target != 0 {
		buf = append(buf, `,"target":`...)
		buf = strconv.AppendUint(buf, req.Target, 10)
	}
	if req.TimeoutMillis != 0 {
		buf = append(buf, `,"timeoutMillis":`...)
		buf = strconv.AppendInt(buf, req.TimeoutMillis, 10)
	}
	buf = append(buf, '}', '\n')
	return buf, true
}

func appendScalar(buf []byte, v any) ([]byte, bool) {
	switch x := v.(type) {
	case nil:
		return append(buf, `null`...), true
	case bool:
		return strconv.AppendBool(buf, x), true
	case int:
		return strconv.AppendInt(buf, int64(x), 10), true
	case int64:
		return strconv.AppendInt(buf, x, 10), true
	case uint64:
		return strconv.AppendUint(buf, x, 10), true
	case float64:
		if x != x || x > 1e308 || x < -1e308 {
			return buf, false // NaN/Inf have no JSON form
		}
		if x == float64(int64(x)) && x >= -1e15 && x <= 1e15 {
			return strconv.AppendInt(buf, int64(x), 10), true
		}
		return strconv.AppendFloat(buf, x, 'g', -1, 64), true
	case string:
		return appendString(buf, x), true
	}
	return buf, false
}

// wireScanner is a minimal scanner over one line of JSON for the
// hand-rolled decoders. Any syntax it does not expect aborts the fast
// path; the caller then re-parses with encoding/json, which also
// produces the proper error for genuinely malformed input.
type wireScanner struct {
	b   []byte
	pos int
}

func (s *wireScanner) ws() {
	for s.pos < len(s.b) {
		switch s.b[s.pos] {
		case ' ', '\t', '\r', '\n':
			s.pos++
		default:
			return
		}
	}
}

func (s *wireScanner) eat(c byte) bool {
	s.ws()
	if s.pos < len(s.b) && s.b[s.pos] == c {
		s.pos++
		return true
	}
	return false
}

func (s *wireScanner) peek() byte {
	s.ws()
	if s.pos < len(s.b) {
		return s.b[s.pos]
	}
	return 0
}

// str scans a JSON string with no escapes; ok=false on escapes or
// syntax errors.
func (s *wireScanner) str() (string, bool) {
	b, ok := s.strBytes()
	if !ok {
		return "", false
	}
	return string(b), true
}

// strBytes scans a JSON string with no escapes and returns a VIEW into
// the line buffer — valid only until the caller's next read into that
// buffer. Callers either copy (str), compare against literals (opLit),
// or intern (sqlIntern), so no view escapes the decode.
func (s *wireScanner) strBytes() ([]byte, bool) {
	if !s.eat('"') {
		return nil, false
	}
	start := s.pos
	ascii := true
	for s.pos < len(s.b) {
		c := s.b[s.pos]
		if c == '"' {
			out := s.b[start:s.pos]
			s.pos++
			if !ascii && !utf8.Valid(out) {
				// encoding/json rewrites invalid UTF-8 to U+FFFD;
				// rather than replicate that, bail to the fallback.
				return nil, false
			}
			return out, true
		}
		if c == '\\' || c < 0x20 {
			return nil, false
		}
		if c >= 0x80 {
			ascii = false
		}
		s.pos++
	}
	return nil, false
}

// numTok scans a numeric token and returns its bytes (a view). The
// token is validated against the JSON number grammar (RFC 8259) here,
// not left to strconv: ParseInt/ParseFloat accept forms JSON forbids
// ("00", "+5", ".5", "1."), and the fast path must never accept a line
// the reflective fallback would reject.
func (s *wireScanner) numTok() ([]byte, bool) {
	s.ws()
	start := s.pos
	for s.pos < len(s.b) {
		switch c := s.b[s.pos]; {
		case c >= '0' && c <= '9', c == '-', c == '+', c == '.', c == 'e', c == 'E':
			s.pos++
		default:
			goto done
		}
	}
done:
	tok := s.b[start:s.pos]
	if !jsonNumber(tok) {
		return nil, false
	}
	return tok, true
}

// jsonNumber reports whether tok matches RFC 8259's number production:
// -?(0|[1-9][0-9]*)(.[0-9]+)?([eE][+-]?[0-9]+)?
func jsonNumber(tok []byte) bool {
	i, n := 0, len(tok)
	if i < n && tok[i] == '-' {
		i++
	}
	switch {
	case i < n && tok[i] == '0':
		i++
	case i < n && tok[i] >= '1' && tok[i] <= '9':
		for i < n && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
	default:
		return false
	}
	if i < n && tok[i] == '.' {
		i++
		d := i
		for i < n && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
		if i == d {
			return false
		}
	}
	if i < n && (tok[i] == 'e' || tok[i] == 'E') {
		i++
		if i < n && (tok[i] == '+' || tok[i] == '-') {
			i++
		}
		d := i
		for i < n && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
		if i == d {
			return false
		}
	}
	return i == n
}

func (s *wireScanner) number() (float64, bool) {
	tok, ok := s.numTok()
	if !ok {
		return 0, false
	}
	f, err := strconv.ParseFloat(string(tok), 64)
	return f, err == nil
}

// integralToken reports whether tok is a plain (optionally signed)
// decimal integer — no fraction, no exponent.
func integralToken(tok []byte) bool {
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		if c == '-' && i == 0 && len(tok) > 1 {
			continue
		}
		if c < '0' || c > '9' {
			return false
		}
	}
	return len(tok) > 0
}

// numValue decodes a numeric token the way appendScalar encodes one:
// integral tokens become int64 (uint64 when they exceed MaxInt64),
// everything else float64. Routing integers through float64 — what the
// decoder did before — silently corrupted values above 2^53 on
// round-trip; sqlvalue compares INTEGER keys exactly, so a corrupted
// argument is a wrong enforcement answer, not just a cosmetic loss.
func (s *wireScanner) numValue() (any, bool) {
	tok, ok := s.numTok()
	if !ok {
		return nil, false
	}
	if integralToken(tok) {
		if i, err := strconv.ParseInt(string(tok), 10, 64); err == nil {
			return i, true
		}
		if tok[0] != '-' {
			if u, err := strconv.ParseUint(string(tok), 10, 64); err == nil {
				return u, true
			}
		}
		// Magnitude beyond 64 bits: approximate as float, like
		// encoding/json's default decode would.
	}
	f, err := strconv.ParseFloat(string(tok), 64)
	return f, err == nil
}

func (s *wireScanner) lit(word string) bool {
	s.ws()
	if len(s.b)-s.pos < len(word) || string(s.b[s.pos:s.pos+len(word)]) != word {
		return false
	}
	s.pos += len(word)
	return true
}

// scalar scans null / bool / number / escape-free string.
func (s *wireScanner) scalar() (any, bool) {
	switch s.peek() {
	case '"':
		v, ok := s.str()
		return v, ok
	case 't':
		return true, s.lit("true")
	case 'f':
		return false, s.lit("false")
	case 'n':
		return nil, s.lit("null")
	default:
		return s.numValue()
	}
}

// uintVal decodes an ID-like field exactly: integral token parsed as
// uint64, full 64-bit range (the old float64 route rounded IDs above
// 2^53). Exponent/fraction forms bail to the reflective decoder.
func (s *wireScanner) uintVal() (uint64, bool) {
	tok, ok := s.numTok()
	if !ok || !integralToken(tok) || tok[0] == '-' {
		return 0, false
	}
	u, err := strconv.ParseUint(string(tok), 10, 64)
	return u, err == nil
}

// intVal decodes a small signed integral field exactly.
func (s *wireScanner) intVal() (int64, bool) {
	tok, ok := s.numTok()
	if !ok || !integralToken(tok) {
		return 0, false
	}
	i, err := strconv.ParseInt(string(tok), 10, 64)
	return i, err == nil
}

// opLit maps the protocol's known op tokens to canonical strings
// without copying out of the line buffer (a switch on string(b)
// compares in place). Unknown ops return "" and the caller copies.
func opLit(b []byte) string {
	switch string(b) {
	case "hello":
		return "hello"
	case "query":
		return "query"
	case "exec":
		return "exec"
	case "stats":
		return "stats"
	case "batch":
		return "batch"
	case "cancel":
		return "cancel"
	}
	return ""
}

// sqlIntern maps repeated statement text to one canonical string:
// applications issue the same statement shapes over and over, so after
// the first sighting the decoder's SQL "copy" is a no-alloc map hit on
// the in-place view. Bounded by wholesale reset; giant one-off
// statements are never retained.
var sqlIntern struct {
	sync.RWMutex
	m map[string]string
}

const (
	sqlInternMax       = 4096
	sqlInternMaxSQLLen = 4096
)

func internSQL(b []byte) string {
	if len(b) > sqlInternMaxSQLLen {
		return string(b)
	}
	sqlIntern.RLock()
	s, ok := sqlIntern.m[string(b)]
	sqlIntern.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	sqlIntern.Lock()
	if sqlIntern.m == nil || len(sqlIntern.m) >= sqlInternMax {
		sqlIntern.m = make(map[string]string, 64)
	}
	sqlIntern.m[s] = s
	sqlIntern.Unlock()
	return s
}

// decodeRequest hand-decodes a flat request line. ok=false (shape or
// syntax beyond the fast path) means: fall back to decodeRequestJSON.
// String views from the scanner never escape: op resolves to a
// canonical literal, sql to an interned string, and everything else is
// copied — by the time the caller reuses the line buffer the Request
// owns (or shares immutably) all of its strings.
func decodeRequest(line []byte, req *Request) bool {
	s := wireScanner{b: line}
	if !s.eat('{') {
		return false
	}
	if s.eat('}') {
		return s.end()
	}
	for {
		key, ok := s.strBytes()
		if !ok || !s.eat(':') {
			return false
		}
		switch string(key) {
		case "op":
			tok, ok := s.strBytes()
			if !ok {
				return false
			}
			if req.Op = opLit(tok); req.Op == "" {
				req.Op = string(tok)
			}
		case "sql":
			tok, ok := s.strBytes()
			if !ok {
				return false
			}
			req.SQL = internSQL(tok)
		case "name":
			if req.Name, ok = s.str(); !ok {
				return false
			}
		case "id":
			if req.ID, ok = s.uintVal(); !ok {
				return false
			}
		case "sid":
			if req.SID, ok = s.uintVal(); !ok {
				return false
			}
		case "target":
			if req.Target, ok = s.uintVal(); !ok {
				return false
			}
		case "maxProto":
			n, ok := s.intVal()
			if !ok {
				return false
			}
			req.MaxProto = int(n)
		case "timeoutMillis":
			if req.TimeoutMillis, ok = s.intVal(); !ok {
				return false
			}
		case "args":
			if req.Args, ok = s.scalarArray(); !ok {
				return false
			}
		case "session":
			if req.Session, ok = s.scalarMap(); !ok {
				return false
			}
		case "named":
			if req.Named, ok = s.scalarMap(); !ok {
				return false
			}
		default:
			// batch or an unknown field: let encoding/json handle it.
			return false
		}
		if s.eat(',') {
			continue
		}
		if s.eat('}') {
			return s.end()
		}
		return false
	}
}

func (s *wireScanner) scalarArray() ([]any, bool) {
	if !s.eat('[') {
		return nil, false
	}
	out := []any{}
	if s.eat(']') {
		return out, true
	}
	for {
		v, ok := s.scalar()
		if !ok {
			return nil, false
		}
		out = append(out, v)
		if s.eat(',') {
			continue
		}
		if s.eat(']') {
			return out, true
		}
		return nil, false
	}
}

func (s *wireScanner) scalarMap() (map[string]any, bool) {
	if !s.eat('{') {
		return nil, false
	}
	out := map[string]any{}
	if s.eat('}') {
		return out, true
	}
	for {
		k, ok := s.str()
		if !ok || !s.eat(':') {
			return nil, false
		}
		v, ok := s.scalar()
		if !ok {
			return nil, false
		}
		out[k] = v
		if s.eat(',') {
			continue
		}
		if s.eat('}') {
			return out, true
		}
		return nil, false
	}
}

func (s *wireScanner) stringArray() ([]string, bool) {
	if !s.eat('[') {
		return nil, false
	}
	out := []string{}
	if s.eat(']') {
		return out, true
	}
	for {
		v, ok := s.str()
		if !ok {
			return nil, false
		}
		out = append(out, v)
		if s.eat(',') {
			continue
		}
		if s.eat(']') {
			return out, true
		}
		return nil, false
	}
}

// end verifies only whitespace remains.
func (s *wireScanner) end() bool {
	s.ws()
	return s.pos == len(s.b)
}

// decodeResponse hand-decodes the common response line shapes (rows,
// blocks, plain acks). ok=false falls back to encoding/json.
func decodeResponse(line []byte, resp *Response) bool {
	s := wireScanner{b: line}
	if !s.eat('{') {
		return false
	}
	if s.eat('}') {
		return s.end()
	}
	for {
		key, ok := s.str()
		if !ok || !s.eat(':') {
			return false
		}
		switch key {
		case "id":
			if resp.ID, ok = s.uintVal(); !ok {
				return false
			}
		case "ok":
			switch s.peek() {
			case 't':
				resp.OK = true
				ok = s.lit("true")
			case 'f':
				resp.OK = false
				ok = s.lit("false")
			default:
				ok = false
			}
			if !ok {
				return false
			}
		case "blocked":
			if !s.lit("true") {
				return false
			}
			resp.Blocked = true
		case "proto":
			n, ok := s.intVal()
			if !ok {
				return false
			}
			resp.Proto = int(n)
		case "restored":
			n, ok := s.intVal()
			if !ok {
				return false
			}
			resp.Restored = int(n)
		case "affected":
			n, ok := s.intVal()
			if !ok {
				return false
			}
			resp.Affected = int(n)
		case "reason":
			if resp.Reason, ok = s.str(); !ok {
				return false
			}
		case "error":
			if resp.Error, ok = s.str(); !ok {
				return false
			}
		case "code":
			if resp.Code, ok = s.str(); !ok {
				return false
			}
		case "columns":
			if resp.Columns, ok = s.stringArray(); !ok {
				return false
			}
		case "rows":
			if !s.eat('[') {
				return false
			}
			resp.Rows = [][]any{}
			if !s.eat(']') {
				for {
					row, ok := s.scalarArray()
					if !ok {
						return false
					}
					resp.Rows = append(resp.Rows, row)
					if s.eat(',') {
						continue
					}
					if s.eat(']') {
						break
					}
					return false
				}
			}
		default:
			// stats, batch, views: reflective decode.
			return false
		}
		if s.eat(',') {
			continue
		}
		if s.eat('}') {
			return s.end()
		}
		return false
	}
}

// --- reflective fallback ---
//
// Lines the fast path does not fully understand re-parse with
// encoding/json. A plain json.Unmarshal would decode every number in
// an `any` position as float64 — disagreeing with the fast path (and
// corrupting integers above 2^53) depending on which decoder handled a
// line. The helpers below decode with UseNumber and normalize numeric
// tokens by the same rule as the scanner's numValue, so both decoders
// produce identical values on every line.

// normalizeWireNumber maps a json.Number to the fast path's decode:
// integral → int64 (uint64 past MaxInt64), otherwise float64.
func normalizeWireNumber(n json.Number) any {
	s := string(n)
	if integralToken([]byte(s)) {
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			return i
		}
		if s[0] != '-' {
			if u, err := strconv.ParseUint(s, 10, 64); err == nil {
				return u
			}
		}
	}
	if f, err := n.Float64(); err == nil {
		return f
	}
	return s // unparseable exotic literal: keep the token text
}

func normalizeWireValue(v any) any {
	if n, ok := v.(json.Number); ok {
		return normalizeWireNumber(n)
	}
	return v
}

func normalizeWireSlice(vals []any) {
	for i, v := range vals {
		vals[i] = normalizeWireValue(v)
	}
}

func normalizeWireMap(m map[string]any) {
	for k, v := range m {
		if n, ok := v.(json.Number); ok {
			m[k] = normalizeWireNumber(n)
		}
	}
}

func normalizeRequest(req *Request) {
	normalizeWireSlice(req.Args)
	normalizeWireMap(req.Session)
	normalizeWireMap(req.Named)
	for i := range req.Batch {
		normalizeRequest(&req.Batch[i])
	}
}

func normalizeResponse(resp *Response) {
	for _, row := range resp.Rows {
		normalizeWireSlice(row)
	}
	for i := range resp.Batch {
		normalizeResponse(&resp.Batch[i])
	}
}

// decodeRequestJSON is the reflective request decode, normalized to
// agree with the fast path on every numeric value.
func decodeRequestJSON(line []byte, req *Request) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.UseNumber()
	if err := dec.Decode(req); err != nil {
		return err
	}
	normalizeRequest(req)
	return nil
}

// decodeResponseJSON is the reflective response decode, normalized to
// agree with the fast path on every numeric value.
func decodeResponseJSON(line []byte, resp *Response) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.UseNumber()
	if err := dec.Decode(resp); err != nil {
		return err
	}
	normalizeResponse(resp)
	return nil
}
