package proxy

import (
	"encoding/json"
	"strconv"
)

// The proxy frames v2 traffic as one JSON object per line, and the
// overwhelming majority of those objects have a tiny, flat shape:
// {"op":"query","id":7,"sid":3,"sql":"...","args":[1]} one way and
// {"id":7,"ok":true,"columns":["EId"],"rows":[["i:2"]]} back. The
// reflection-based encoding/json round trip costs more than the
// access check it transports, so the helpers below hand-encode and
// hand-decode exactly those shapes. Anything they do not fully
// understand — batches, stats bodies, nested values, escaped strings
// — falls back to encoding/json, so the wire format stays identical
// and the fallback is always correct.

// plainJSONString reports whether s can be emitted between quotes
// with no escaping.
func plainJSONString(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c == '"' || c == '\\' || c >= 0x80 {
			return false
		}
	}
	return true
}

// appendString appends s as a JSON string, delegating to
// encoding/json when escaping is needed.
func appendString(buf []byte, s string) []byte {
	if plainJSONString(s) {
		buf = append(buf, '"')
		buf = append(buf, s...)
		return append(buf, '"')
	}
	b, _ := json.Marshal(s)
	return append(buf, b...)
}

// appendResponse hand-encodes the common response shapes. It returns
// ok=false when resp needs the reflective encoder (stats, batch,
// views, or an error payload).
func appendResponse(buf []byte, resp *Response) ([]byte, bool) {
	if resp.Error != "" || resp.Stats != nil || resp.Batch != nil || resp.Views != nil {
		return buf, false
	}
	buf = append(buf, '{')
	if resp.ID != 0 {
		buf = append(buf, `"id":`...)
		buf = strconv.AppendUint(buf, resp.ID, 10)
		buf = append(buf, ',')
	}
	buf = append(buf, `"ok":`...)
	buf = strconv.AppendBool(buf, resp.OK)
	if resp.Proto != 0 {
		buf = append(buf, `,"proto":`...)
		buf = strconv.AppendInt(buf, int64(resp.Proto), 10)
	}
	if resp.Restored != 0 {
		buf = append(buf, `,"restored":`...)
		buf = strconv.AppendInt(buf, int64(resp.Restored), 10)
	}
	if resp.Code != "" {
		buf = append(buf, `,"code":`...)
		buf = appendString(buf, resp.Code)
	}
	if resp.Blocked {
		buf = append(buf, `,"blocked":true,"reason":`...)
		buf = appendString(buf, resp.Reason)
	}
	if len(resp.Columns) > 0 {
		buf = append(buf, `,"columns":[`...)
		for i, c := range resp.Columns {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendString(buf, c)
		}
		buf = append(buf, ']')
	}
	if len(resp.Rows) > 0 {
		buf = append(buf, `,"rows":[`...)
		for i, row := range resp.Rows {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, '[')
			for j, cell := range row {
				if j > 0 {
					buf = append(buf, ',')
				}
				var ok bool
				buf, ok = appendScalar(buf, cell)
				if !ok {
					return buf, false
				}
			}
			buf = append(buf, ']')
		}
		buf = append(buf, ']')
	}
	if resp.Affected != 0 {
		buf = append(buf, `,"affected":`...)
		buf = strconv.AppendInt(buf, int64(resp.Affected), 10)
	}
	buf = append(buf, '}', '\n')
	return buf, true
}

// appendRequest hand-encodes the common request shapes (flat scalar
// args and session attrs). ok=false falls back to encoding/json.
func appendRequest(buf []byte, req *Request) ([]byte, bool) {
	if req.Batch != nil || req.Named != nil {
		return buf, false
	}
	buf = append(buf, `{"op":`...)
	buf = appendString(buf, req.Op)
	if req.ID != 0 {
		buf = append(buf, `,"id":`...)
		buf = strconv.AppendUint(buf, req.ID, 10)
	}
	if req.SID != 0 {
		buf = append(buf, `,"sid":`...)
		buf = strconv.AppendUint(buf, req.SID, 10)
	}
	if req.MaxProto != 0 {
		buf = append(buf, `,"maxProto":`...)
		buf = strconv.AppendInt(buf, int64(req.MaxProto), 10)
	}
	if req.Name != "" {
		buf = append(buf, `,"name":`...)
		buf = appendString(buf, req.Name)
	}
	if len(req.Session) > 0 {
		buf = append(buf, `,"session":{`...)
		first := true
		for k, v := range req.Session {
			cell, ok := appendScalar(nil, v)
			if !ok {
				return buf, false
			}
			if !first {
				buf = append(buf, ',')
			}
			first = false
			buf = appendString(buf, k)
			buf = append(buf, ':')
			buf = append(buf, cell...)
		}
		buf = append(buf, '}')
	}
	if req.SQL != "" {
		buf = append(buf, `,"sql":`...)
		buf = appendString(buf, req.SQL)
	}
	if len(req.Args) > 0 {
		buf = append(buf, `,"args":[`...)
		for i, a := range req.Args {
			if i > 0 {
				buf = append(buf, ',')
			}
			var ok bool
			buf, ok = appendScalar(buf, a)
			if !ok {
				return buf, false
			}
		}
		buf = append(buf, ']')
	}
	if req.Target != 0 {
		buf = append(buf, `,"target":`...)
		buf = strconv.AppendUint(buf, req.Target, 10)
	}
	if req.TimeoutMillis != 0 {
		buf = append(buf, `,"timeoutMillis":`...)
		buf = strconv.AppendInt(buf, req.TimeoutMillis, 10)
	}
	buf = append(buf, '}', '\n')
	return buf, true
}

func appendScalar(buf []byte, v any) ([]byte, bool) {
	switch x := v.(type) {
	case nil:
		return append(buf, `null`...), true
	case bool:
		return strconv.AppendBool(buf, x), true
	case int:
		return strconv.AppendInt(buf, int64(x), 10), true
	case int64:
		return strconv.AppendInt(buf, x, 10), true
	case uint64:
		return strconv.AppendUint(buf, x, 10), true
	case float64:
		if x != x || x > 1e308 || x < -1e308 {
			return buf, false // NaN/Inf have no JSON form
		}
		if x == float64(int64(x)) && x >= -1e15 && x <= 1e15 {
			return strconv.AppendInt(buf, int64(x), 10), true
		}
		return strconv.AppendFloat(buf, x, 'g', -1, 64), true
	case string:
		return appendString(buf, x), true
	}
	return buf, false
}

// wireScanner is a minimal scanner over one line of JSON for the
// hand-rolled decoders. Any syntax it does not expect aborts the fast
// path; the caller then re-parses with encoding/json, which also
// produces the proper error for genuinely malformed input.
type wireScanner struct {
	b   []byte
	pos int
}

func (s *wireScanner) ws() {
	for s.pos < len(s.b) {
		switch s.b[s.pos] {
		case ' ', '\t', '\r', '\n':
			s.pos++
		default:
			return
		}
	}
}

func (s *wireScanner) eat(c byte) bool {
	s.ws()
	if s.pos < len(s.b) && s.b[s.pos] == c {
		s.pos++
		return true
	}
	return false
}

func (s *wireScanner) peek() byte {
	s.ws()
	if s.pos < len(s.b) {
		return s.b[s.pos]
	}
	return 0
}

// str scans a JSON string with no escapes; ok=false on escapes or
// syntax errors.
func (s *wireScanner) str() (string, bool) {
	if !s.eat('"') {
		return "", false
	}
	start := s.pos
	for s.pos < len(s.b) {
		c := s.b[s.pos]
		if c == '"' {
			out := string(s.b[start:s.pos])
			s.pos++
			return out, true
		}
		if c == '\\' || c < 0x20 {
			return "", false
		}
		s.pos++
	}
	return "", false
}

func (s *wireScanner) number() (float64, bool) {
	s.ws()
	start := s.pos
	for s.pos < len(s.b) {
		switch c := s.b[s.pos]; {
		case c >= '0' && c <= '9', c == '-', c == '+', c == '.', c == 'e', c == 'E':
			s.pos++
		default:
			goto done
		}
	}
done:
	if s.pos == start {
		return 0, false
	}
	f, err := strconv.ParseFloat(string(s.b[start:s.pos]), 64)
	return f, err == nil
}

func (s *wireScanner) lit(word string) bool {
	s.ws()
	if len(s.b)-s.pos < len(word) || string(s.b[s.pos:s.pos+len(word)]) != word {
		return false
	}
	s.pos += len(word)
	return true
}

// scalar scans null / bool / number / escape-free string.
func (s *wireScanner) scalar() (any, bool) {
	switch s.peek() {
	case '"':
		v, ok := s.str()
		return v, ok
	case 't':
		return true, s.lit("true")
	case 'f':
		return false, s.lit("false")
	case 'n':
		return nil, s.lit("null")
	default:
		v, ok := s.number()
		return v, ok
	}
}

func (s *wireScanner) uintVal() (uint64, bool) {
	f, ok := s.number()
	if !ok || f < 0 || f != float64(uint64(f)) {
		return 0, false
	}
	return uint64(f), true
}

// decodeRequest hand-decodes a flat request line. ok=false (shape or
// syntax beyond the fast path) means: fall back to encoding/json.
func decodeRequest(line []byte, req *Request) bool {
	s := wireScanner{b: line}
	if !s.eat('{') {
		return false
	}
	if s.eat('}') {
		return s.end()
	}
	for {
		key, ok := s.str()
		if !ok || !s.eat(':') {
			return false
		}
		switch key {
		case "op":
			if req.Op, ok = s.str(); !ok {
				return false
			}
		case "sql":
			if req.SQL, ok = s.str(); !ok {
				return false
			}
		case "name":
			if req.Name, ok = s.str(); !ok {
				return false
			}
		case "id":
			if req.ID, ok = s.uintVal(); !ok {
				return false
			}
		case "sid":
			if req.SID, ok = s.uintVal(); !ok {
				return false
			}
		case "target":
			if req.Target, ok = s.uintVal(); !ok {
				return false
			}
		case "maxProto":
			f, ok := s.number()
			if !ok {
				return false
			}
			req.MaxProto = int(f)
		case "timeoutMillis":
			f, ok := s.number()
			if !ok {
				return false
			}
			req.TimeoutMillis = int64(f)
		case "args":
			if req.Args, ok = s.scalarArray(); !ok {
				return false
			}
		case "session":
			if req.Session, ok = s.scalarMap(); !ok {
				return false
			}
		case "named":
			if req.Named, ok = s.scalarMap(); !ok {
				return false
			}
		default:
			// batch or an unknown field: let encoding/json handle it.
			return false
		}
		if s.eat(',') {
			continue
		}
		if s.eat('}') {
			return s.end()
		}
		return false
	}
}

func (s *wireScanner) scalarArray() ([]any, bool) {
	if !s.eat('[') {
		return nil, false
	}
	out := []any{}
	if s.eat(']') {
		return out, true
	}
	for {
		v, ok := s.scalar()
		if !ok {
			return nil, false
		}
		out = append(out, v)
		if s.eat(',') {
			continue
		}
		if s.eat(']') {
			return out, true
		}
		return nil, false
	}
}

func (s *wireScanner) scalarMap() (map[string]any, bool) {
	if !s.eat('{') {
		return nil, false
	}
	out := map[string]any{}
	if s.eat('}') {
		return out, true
	}
	for {
		k, ok := s.str()
		if !ok || !s.eat(':') {
			return nil, false
		}
		v, ok := s.scalar()
		if !ok {
			return nil, false
		}
		out[k] = v
		if s.eat(',') {
			continue
		}
		if s.eat('}') {
			return out, true
		}
		return nil, false
	}
}

func (s *wireScanner) stringArray() ([]string, bool) {
	if !s.eat('[') {
		return nil, false
	}
	out := []string{}
	if s.eat(']') {
		return out, true
	}
	for {
		v, ok := s.str()
		if !ok {
			return nil, false
		}
		out = append(out, v)
		if s.eat(',') {
			continue
		}
		if s.eat(']') {
			return out, true
		}
		return nil, false
	}
}

// end verifies only whitespace remains.
func (s *wireScanner) end() bool {
	s.ws()
	return s.pos == len(s.b)
}

// decodeResponse hand-decodes the common response line shapes (rows,
// blocks, plain acks). ok=false falls back to encoding/json.
func decodeResponse(line []byte, resp *Response) bool {
	s := wireScanner{b: line}
	if !s.eat('{') {
		return false
	}
	if s.eat('}') {
		return s.end()
	}
	for {
		key, ok := s.str()
		if !ok || !s.eat(':') {
			return false
		}
		switch key {
		case "id":
			if resp.ID, ok = s.uintVal(); !ok {
				return false
			}
		case "ok":
			switch s.peek() {
			case 't':
				resp.OK = true
				ok = s.lit("true")
			case 'f':
				resp.OK = false
				ok = s.lit("false")
			default:
				ok = false
			}
			if !ok {
				return false
			}
		case "blocked":
			if !s.lit("true") {
				return false
			}
			resp.Blocked = true
		case "proto":
			f, ok := s.number()
			if !ok {
				return false
			}
			resp.Proto = int(f)
		case "restored":
			f, ok := s.number()
			if !ok {
				return false
			}
			resp.Restored = int(f)
		case "affected":
			f, ok := s.number()
			if !ok {
				return false
			}
			resp.Affected = int(f)
		case "reason":
			if resp.Reason, ok = s.str(); !ok {
				return false
			}
		case "error":
			if resp.Error, ok = s.str(); !ok {
				return false
			}
		case "code":
			if resp.Code, ok = s.str(); !ok {
				return false
			}
		case "columns":
			if resp.Columns, ok = s.stringArray(); !ok {
				return false
			}
		case "rows":
			if !s.eat('[') {
				return false
			}
			resp.Rows = [][]any{}
			if !s.eat(']') {
				for {
					row, ok := s.scalarArray()
					if !ok {
						return false
					}
					resp.Rows = append(resp.Rows, row)
					if s.eat(',') {
						continue
					}
					if s.eat(']') {
						break
					}
					return false
				}
			}
		default:
			// stats, batch, views: reflective decode.
			return false
		}
		if s.eat(',') {
			continue
		}
		if s.eat('}') {
			return s.end()
		}
		return false
	}
}
