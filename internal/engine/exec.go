package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/acerr"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

// Query runs a SELECT whose parameters are already bound.
func (db *DB) Query(sel *sqlparser.SelectStmt) (*Result, error) {
	return db.QueryCtx(context.Background(), sel)
}

// QueryCtx runs a SELECT whose parameters are already bound, aborting
// mid-scan when ctx is canceled or its deadline passes. The returned
// error then satisfies errors.Is(err, acerr.ErrCanceled).
func (db *DB) QueryCtx(ctx context.Context, sel *sqlparser.SelectStmt) (*Result, error) {
	obs := db.obs.Load()
	var start time.Time
	if obs != nil {
		obs.queries.Inc()
		start = time.Now()
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	ev := &evaluator{db: db, ctx: ctx}
	res, err := ev.execSelect(sel, nil)
	if obs != nil {
		obs.scan.ObserveSince(start)
	}
	return res, err
}

// QuerySQL parses, binds, and runs a SELECT.
func (db *DB) QuerySQL(sql string, args sqlparser.Args) (*Result, error) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	bound, err := sqlparser.Bind(sel, args)
	if err != nil {
		return nil, err
	}
	return db.Query(bound.(*sqlparser.SelectStmt))
}

// scope maps table names/aliases to column ranges of a combined row.
type scope struct {
	entries []scopeEntry
	width   int
}

type scopeEntry struct {
	name   string // lower-cased alias or table name
	table  *schema.Table
	offset int
}

func newScope(entries []scopeEntry) *scope {
	s := &scope{entries: entries}
	for _, e := range entries {
		if end := e.offset + len(e.table.Columns); end > s.width {
			s.width = end
		}
	}
	return s
}

func (s *scope) addTable(t *schema.Table, name string, offset int) {
	s.entries = append(s.entries, scopeEntry{name: name, table: t, offset: offset})
	if end := offset + len(t.Columns); end > s.width {
		s.width = end
	}
}

// resolve finds the combined-row position for a column reference.
func (s *scope) resolve(table, column string) (int, bool, error) {
	tl, cl := strings.ToLower(table), strings.ToLower(column)
	found, at := false, 0
	for _, e := range s.entries {
		if tl != "" && e.name != tl {
			continue
		}
		if p, ok := e.table.ColumnIndex(cl); ok {
			if found {
				return 0, false, fmt.Errorf("engine: ambiguous column reference %q", column)
			}
			found, at = true, e.offset+p
		}
	}
	return at, found, nil
}

// env chains a scope+row with the enclosing query's environment for
// correlated subqueries.
type env struct {
	scope  *scope
	row    Row
	parent *env
}

type evaluator struct {
	db  *DB
	ctx context.Context
	ops int
}

// tick is called once per row produced or filtered in the hot loops;
// every 1024 ticks it polls the context so a canceled query stops
// scanning within a bounded number of rows.
func (ev *evaluator) tick() error {
	ev.ops++
	if ev.ops&1023 != 0 || ev.ctx == nil {
		return nil
	}
	if err := ev.ctx.Err(); err != nil {
		return fmt.Errorf("engine: query %w", acerr.Canceled(err))
	}
	return nil
}

// execSelect runs a SELECT against the (already read-locked) storage,
// including any UNION arms: arms are evaluated with the same parent
// environment, concatenated (deduplicating unless UNION ALL), and the
// head select's ORDER BY / LIMIT / OFFSET apply to the combined rows.
func (ev *evaluator) execSelect(sel *sqlparser.SelectStmt, parent *env) (*Result, error) {
	if len(sel.Union) == 0 {
		return ev.execSingleSelect(sel, parent)
	}
	head := *sel
	head.Union = nil
	orderBy, limit, offset := head.OrderBy, head.Limit, head.Offset
	head.OrderBy, head.Limit, head.Offset = nil, nil, nil

	res, err := ev.execSingleSelect(&head, parent)
	if err != nil {
		return nil, err
	}
	allDup := false
	for _, u := range sel.Union {
		arm, err := ev.execSelect(u.Select, parent)
		if err != nil {
			return nil, err
		}
		if len(arm.Columns) != len(res.Columns) {
			return nil, fmt.Errorf("engine: UNION arms have %d and %d columns",
				len(res.Columns), len(arm.Columns))
		}
		res.Rows = append(res.Rows, arm.Rows...)
		if u.All {
			allDup = true
		}
	}
	if !allDup {
		seen := make(map[string]bool, len(res.Rows))
		var rows []Row
		for _, r := range res.Rows {
			k := r.key(rangeInts(len(r)))
			if seen[k] {
				continue
			}
			seen[k] = true
			rows = append(rows, r)
		}
		res.Rows = rows
	}
	// Apply the hoisted ORDER BY / LIMIT / OFFSET on the union result.
	if len(orderBy) > 0 {
		keys := make([][]sqlvalue.Value, len(res.Rows))
		for i, row := range res.Rows {
			keys[i] = make([]sqlvalue.Value, len(orderBy))
			for oi, o := range orderBy {
				v, err := ev.orderValue(o.Expr, res.Columns, row, func(sqlparser.Expr) (sqlvalue.Value, error) {
					return sqlvalue.Value{}, fmt.Errorf("engine: UNION ORDER BY must reference output columns or positions")
				})
				if err != nil {
					return nil, err
				}
				keys[i][oi] = v
			}
		}
		idx := make([]int, len(res.Rows))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			ka, kb := keys[idx[a]], keys[idx[b]]
			for i, o := range orderBy {
				if sqlvalue.Identical(ka[i], kb[i]) {
					continue
				}
				less := sqlvalue.Less(ka[i], kb[i])
				if o.Desc {
					return !less
				}
				return less
			}
			return false
		})
		sorted := make([]Row, len(res.Rows))
		for i, j := range idx {
			sorted[i] = res.Rows[j]
		}
		res.Rows = sorted
	}
	if offset != nil {
		v, err := ev.eval(offset, &scope{}, nil)
		if err != nil {
			return nil, err
		}
		n := int(v.Int())
		if n > len(res.Rows) {
			n = len(res.Rows)
		}
		if n > 0 {
			res.Rows = res.Rows[n:]
		}
	}
	if limit != nil {
		v, err := ev.eval(limit, &scope{}, nil)
		if err != nil {
			return nil, err
		}
		if n := int(v.Int()); n >= 0 && n < len(res.Rows) {
			res.Rows = res.Rows[:n]
		}
	}
	return res, nil
}

func (ev *evaluator) execSingleSelect(sel *sqlparser.SelectStmt, parent *env) (*Result, error) {
	// 0. The bound equality-scan fast path: the dominant serving shape
	// (single table, AND-of-comparisons WHERE, plain projection) with
	// every column reference resolved once per query instead of once
	// per row. Saturation profiling showed the generic evaluator's
	// per-row env allocation and name resolution as the serving
	// ceiling; this path removes both without changing semantics
	// (ineligible shapes fall through untouched).
	if !ev.db.DisableEqScan {
		if res, ok, err := ev.tryEqScan(sel); err != nil {
			return nil, err
		} else if ok {
			return res, nil
		}
	}

	// 1. FROM: build the combined-row stream and its scope. A
	// single-table query whose WHERE pins the whole primary key takes
	// the hash-index fast path instead of a scan.
	sc := &scope{}
	rows := []Row{{}} // one empty row: SELECT without FROM yields a single tuple
	if fast, ok := ev.tryPointLookup(sel, sc); ok {
		rows = fast
	} else {
		for _, te := range sel.From {
			teRows, err := ev.tableRows(te, sc, parent)
			if err != nil {
				return nil, err
			}
			rows, err = ev.crossProduct(rows, teRows)
			if err != nil {
				return nil, err
			}
		}
	}

	// 2. WHERE.
	if sel.Where != nil {
		var kept []Row
		for _, r := range rows {
			if err := ev.tick(); err != nil {
				return nil, err
			}
			ok, err := ev.predicateEnv(sel.Where, &env{scope: sc, row: r, parent: parent})
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, r)
			}
		}
		rows = kept
	}

	// 3. Aggregation or plain projection.
	aggregated := len(sel.GroupBy) > 0 || sel.Having != nil
	if !aggregated {
		for _, it := range sel.Items {
			if it.Expr != nil && sqlparser.IsAggregate(it.Expr) {
				aggregated = true
				break
			}
		}
	}

	res := &Result{}
	var orderKeys [][]sqlvalue.Value

	if aggregated {
		groups, err := ev.groupRows(sel, sc, parent, rows)
		if err != nil {
			return nil, err
		}
		res.Columns = ev.outputColumns(sel, sc)
		for _, g := range groups {
			genv := &groupEnv{scope: sc, rows: g, parent: parent}
			if sel.Having != nil {
				v, err := ev.evalAggregate(sel.Having, genv)
				if err != nil {
					return nil, err
				}
				if truth(v) != sqlvalue.True {
					continue
				}
			}
			out, err := ev.projectGroup(sel, sc, genv)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, out)
			if len(sel.OrderBy) > 0 {
				keys, err := ev.orderKeysGroup(sel, sc, genv, out, res.Columns)
				if err != nil {
					return nil, err
				}
				orderKeys = append(orderKeys, keys)
			}
		}
	} else {
		res.Columns = ev.outputColumns(sel, sc)
		for _, r := range rows {
			e := &env{scope: sc, row: r, parent: parent}
			out, err := ev.projectRow(sel, sc, e)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, out)
			if len(sel.OrderBy) > 0 {
				keys, err := ev.orderKeysRow(sel, e, out, res.Columns)
				if err != nil {
					return nil, err
				}
				orderKeys = append(orderKeys, keys)
			}
		}
	}

	// 4. DISTINCT.
	if sel.Distinct {
		seen := make(map[string]bool)
		var outRows []Row
		var outKeys [][]sqlvalue.Value
		for i, r := range res.Rows {
			k := r.key(rangeInts(len(r)))
			if seen[k] {
				continue
			}
			seen[k] = true
			outRows = append(outRows, r)
			if orderKeys != nil {
				outKeys = append(outKeys, orderKeys[i])
			}
		}
		res.Rows = outRows
		orderKeys = outKeys
	}

	// 5. ORDER BY.
	if len(sel.OrderBy) > 0 {
		idx := make([]int, len(res.Rows))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			ka, kb := orderKeys[idx[a]], orderKeys[idx[b]]
			for i, o := range sel.OrderBy {
				if sqlvalue.Identical(ka[i], kb[i]) {
					continue
				}
				less := sqlvalue.Less(ka[i], kb[i])
				if o.Desc {
					return !less
				}
				return less
			}
			return false
		})
		sorted := make([]Row, len(res.Rows))
		for i, j := range idx {
			sorted[i] = res.Rows[j]
		}
		res.Rows = sorted
	}

	// 6. LIMIT/OFFSET.
	if sel.Offset != nil {
		v, err := ev.eval(sel.Offset, sc, nil)
		if err != nil {
			return nil, err
		}
		n := int(v.Int())
		if n > len(res.Rows) {
			n = len(res.Rows)
		}
		if n > 0 {
			res.Rows = res.Rows[n:]
		}
	}
	if sel.Limit != nil {
		v, err := ev.eval(sel.Limit, sc, nil)
		if err != nil {
			return nil, err
		}
		if n := int(v.Int()); n >= 0 && n < len(res.Rows) {
			res.Rows = res.Rows[:n]
		}
	}
	return res, nil
}

// eqCond is one pre-resolved WHERE conjunct of the equality-scan fast
// path: row[pos] op lit (or lit op row[pos] when litLeft).
type eqCond struct {
	pos     int
	op      sqlparser.BinaryOp
	lit     sqlvalue.Value
	litLeft bool
}

// eqProj is one pre-resolved select-list item: a column position, a
// literal (pos == -1), or the whole row (star).
type eqProj struct {
	pos  int
	lit  sqlvalue.Value
	star bool
}

// tryEqScan executes a single-table SELECT whose WHERE is an AND-tree
// of <column> <cmp> <literal> conjuncts and whose select list is plain
// columns, literals, or an unqualified *, resolving every column
// reference ONCE and then scanning rows with direct index accesses —
// no per-row env allocation, no per-row name resolution. When the
// conjuncts equality-pin the full primary key the PK hash index
// replaces the scan. ok=false means the shape is out of scope and the
// generic evaluator must run; semantics for in-scope shapes are
// identical to the generic path (same tristate WHERE filtering, same
// output column names), which TestEqScanParity pins by running every
// corpus query both ways.
func (ev *evaluator) tryEqScan(sel *sqlparser.SelectStmt) (*Result, bool, error) {
	if len(sel.From) != 1 || sel.Where == nil || sel.Distinct ||
		len(sel.GroupBy) > 0 || sel.Having != nil || len(sel.OrderBy) > 0 ||
		sel.Limit != nil || sel.Offset != nil || len(sel.Union) > 0 {
		return nil, false, nil
	}
	ref, ok := sel.From[0].(*sqlparser.TableRef)
	if !ok {
		return nil, false, nil
	}
	td, ok := ev.db.tables[strings.ToLower(ref.Name)]
	if !ok {
		return nil, false, nil
	}
	name := strings.ToLower(ref.Name)
	if ref.Alias != "" {
		name = strings.ToLower(ref.Alias)
	}
	// A reference is local iff it is unqualified or names this table's
	// alias; anything else (including a column this table lacks, which
	// could be a correlated outer reference) sends the query back to
	// the generic evaluator.
	resolve := func(cr *sqlparser.ColumnRef) (int, bool) {
		if cr.Table != "" && !strings.EqualFold(cr.Table, name) {
			return 0, false
		}
		return td.def.ColumnIndex(cr.Column)
	}

	var conds []eqCond
	var flatten func(e sqlparser.Expr) bool
	flatten = func(e sqlparser.Expr) bool {
		b, ok := e.(*sqlparser.BinaryExpr)
		if !ok {
			return false
		}
		if b.Op == sqlparser.OpAnd {
			return flatten(b.Left) && flatten(b.Right)
		}
		switch b.Op {
		case sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt, sqlparser.OpLe,
			sqlparser.OpGt, sqlparser.OpGe, sqlparser.OpLike:
		default:
			return false
		}
		if cr, okc := b.Left.(*sqlparser.ColumnRef); okc {
			if lit, okl := b.Right.(*sqlparser.Literal); okl {
				pos, okr := resolve(cr)
				if !okr {
					return false
				}
				conds = append(conds, eqCond{pos: pos, op: b.Op, lit: lit.Value})
				return true
			}
		}
		if lit, okl := b.Left.(*sqlparser.Literal); okl {
			if cr, okc := b.Right.(*sqlparser.ColumnRef); okc {
				pos, okr := resolve(cr)
				if !okr {
					return false
				}
				conds = append(conds, eqCond{pos: pos, op: b.Op, lit: lit.Value, litLeft: true})
				return true
			}
		}
		return false
	}
	if !flatten(sel.Where) {
		return nil, false, nil
	}

	projs := make([]eqProj, 0, len(sel.Items))
	outWidth := 0
	for _, it := range sel.Items {
		switch {
		case it.Star && it.Table == "":
			projs = append(projs, eqProj{star: true})
			outWidth += len(td.def.Columns)
		case it.Star:
			return nil, false, nil
		default:
			if sqlparser.IsAggregate(it.Expr) {
				return nil, false, nil
			}
			switch x := it.Expr.(type) {
			case *sqlparser.ColumnRef:
				pos, okr := resolve(x)
				if !okr {
					return nil, false, nil
				}
				projs = append(projs, eqProj{pos: pos})
			case *sqlparser.Literal:
				projs = append(projs, eqProj{pos: -1, lit: x.Value})
			default:
				return nil, false, nil
			}
			outWidth++
		}
	}

	// Candidate rows: the PK hash index when the conjuncts equality-pin
	// every primary-key column (the full conjunct list still filters the
	// probed row, preserving NULL and extra-conjunct semantics), else
	// the whole table.
	candidates := td.rows
	if td.pkIndex != nil {
		probe := make(Row, len(td.pkCols))
		pinned := 0
		for i, pc := range td.pkCols {
			for _, c := range conds {
				if c.op == sqlparser.OpEq && c.pos == pc {
					probe[i] = c.lit
					pinned++
					break
				}
			}
		}
		if pinned == len(td.pkCols) {
			if pos, okp := td.pkIndex[probe.key(rangeInts(len(probe)))]; okp {
				candidates = td.rows[pos : pos+1]
			} else {
				candidates = nil
			}
		}
	}

	sc := &scope{}
	sc.addTable(td.def, name, 0)
	res := &Result{Columns: ev.outputColumns(sel, sc)}
	for _, r := range candidates {
		if err := ev.tick(); err != nil {
			return nil, false, err
		}
		keep := true
		for _, c := range conds {
			l, rv := r[c.pos], c.lit
			if c.litLeft {
				l, rv = c.lit, r[c.pos]
			}
			v, err := applyBinary(c.op, l, rv)
			if err != nil {
				return nil, false, err
			}
			if truth(v) != sqlvalue.True {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		out := make(Row, 0, outWidth)
		for _, p := range projs {
			switch {
			case p.star:
				out = append(out, r...)
			case p.pos < 0:
				out = append(out, p.lit)
			default:
				out = append(out, r[p.pos])
			}
		}
		res.Rows = append(res.Rows, out)
	}
	return res, true, nil
}

// tryPointLookup serves single-table queries whose WHERE conjuncts
// pin every primary-key column to a literal, via the PK hash index.
// The full WHERE still runs afterwards, so extra conjuncts and NULL
// semantics are preserved.
func (ev *evaluator) tryPointLookup(sel *sqlparser.SelectStmt, sc *scope) ([]Row, bool) {
	if len(sel.From) != 1 || sel.Where == nil {
		return nil, false
	}
	ref, ok := sel.From[0].(*sqlparser.TableRef)
	if !ok {
		return nil, false
	}
	td, ok := ev.db.tables[strings.ToLower(ref.Name)]
	if !ok || td.pkIndex == nil {
		return nil, false
	}
	// Collect col = literal equalities from the AND-conjunction.
	pins := map[int]sqlvalue.Value{}
	var collect func(e sqlparser.Expr) bool
	collect = func(e sqlparser.Expr) bool {
		b, ok := e.(*sqlparser.BinaryExpr)
		if !ok {
			return true // non-conjunct shapes are fine; just no pin
		}
		switch b.Op {
		case sqlparser.OpAnd:
			return collect(b.Left) && collect(b.Right)
		case sqlparser.OpEq:
			cr, okc := b.Left.(*sqlparser.ColumnRef)
			lit, okl := b.Right.(*sqlparser.Literal)
			if !okc || !okl {
				if cr2, okc2 := b.Right.(*sqlparser.ColumnRef); okc2 {
					if lit2, okl2 := b.Left.(*sqlparser.Literal); okl2 {
						cr, lit, okc, okl = cr2, lit2, true, true
					}
				}
			}
			if okc && okl {
				if ci, found := td.def.ColumnIndex(cr.Column); found {
					pins[ci] = lit.Value
				}
			}
			return true
		case sqlparser.OpOr:
			return false // disjunctions disable the fast path
		}
		return true
	}
	if !collect(sel.Where) {
		return nil, false
	}
	probe := make(Row, len(td.pkCols))
	for i, pc := range td.pkCols {
		v, ok := pins[pc]
		if !ok {
			return nil, false
		}
		probe[i] = v
	}
	name := strings.ToLower(ref.Name)
	if ref.Alias != "" {
		name = strings.ToLower(ref.Alias)
	}
	sc.addTable(td.def, name, 0)
	pos, ok := td.pkIndex[probe.key(rangeInts(len(probe)))]
	if !ok {
		return []Row{}, true
	}
	return []Row{td.rows[pos]}, true
}

// tableRows enumerates the rows of a FROM item, extending sc with its
// tables at fresh offsets. Returned rows are padded to start at the
// registered offsets relative to the current sc.width at call time.
func (ev *evaluator) tableRows(te sqlparser.TableExpr, sc *scope, parent *env) ([]Row, error) {
	base := sc.width
	switch t := te.(type) {
	case *sqlparser.TableRef:
		td, ok := ev.db.tables[strings.ToLower(t.Name)]
		if !ok {
			return nil, fmt.Errorf("engine: no table %q", t.Name)
		}
		name := strings.ToLower(t.Name)
		if t.Alias != "" {
			name = strings.ToLower(t.Alias)
		}
		sc.addTable(td.def, name, base)
		out := make([]Row, len(td.rows))
		copy(out, td.rows)
		return out, nil

	case *sqlparser.JoinExpr:
		leftRows, err := ev.tableRows(t.Left, sc, parent)
		if err != nil {
			return nil, err
		}
		leftWidth := sc.width - base
		rightRows, err := ev.tableRows(t.Right, sc, parent)
		if err != nil {
			return nil, err
		}
		rightWidth := sc.width - base - leftWidth

		var out []Row
		for _, lr := range leftRows {
			matched := false
			for _, rr := range rightRows {
				if err := ev.tick(); err != nil {
					return nil, err
				}
				combined := make(Row, 0, leftWidth+rightWidth)
				combined = append(combined, lr...)
				combined = append(combined, rr...)
				if t.On != nil {
					// Evaluate ON in a scope where this join's tables
					// are positioned at their registered offsets; pad
					// the row to absolute width.
					abs := make(Row, base+leftWidth+rightWidth)
					for i := range abs {
						abs[i] = sqlvalue.NewNull()
					}
					copy(abs[base:], combined)
					ok, err := ev.predicateEnv(t.On, &env{scope: sc, row: abs, parent: parent})
					if err != nil {
						return nil, err
					}
					if !ok {
						continue
					}
				}
				matched = true
				out = append(out, combined)
			}
			if !matched && t.Type == sqlparser.LeftJoin {
				combined := make(Row, leftWidth+rightWidth)
				copy(combined, lr)
				for i := leftWidth; i < len(combined); i++ {
					combined[i] = sqlvalue.NewNull()
				}
				out = append(out, combined)
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("engine: unsupported FROM item %T", te)
}

func (ev *evaluator) crossProduct(acc, next []Row) ([]Row, error) {
	if len(next) == 0 {
		return nil, nil
	}
	out := make([]Row, 0, len(acc)*len(next))
	for _, a := range acc {
		for _, b := range next {
			if err := ev.tick(); err != nil {
				return nil, err
			}
			r := make(Row, 0, len(a)+len(b))
			r = append(r, a...)
			r = append(r, b...)
			out = append(out, r)
		}
	}
	return out, nil
}

// outputColumns derives the result column names.
func (ev *evaluator) outputColumns(sel *sqlparser.SelectStmt, sc *scope) []string {
	var cols []string
	for _, it := range sel.Items {
		switch {
		case it.Star && it.Table == "":
			for _, e := range sc.entries {
				cols = append(cols, e.table.ColumnNames()...)
			}
		case it.Star:
			for _, e := range sc.entries {
				if e.name == strings.ToLower(it.Table) {
					cols = append(cols, e.table.ColumnNames()...)
				}
			}
		case it.Alias != "":
			cols = append(cols, it.Alias)
		default:
			if cr, ok := it.Expr.(*sqlparser.ColumnRef); ok {
				cols = append(cols, cr.Column)
			} else {
				cols = append(cols, it.Expr.SQL())
			}
		}
	}
	return cols
}

func (ev *evaluator) projectRow(sel *sqlparser.SelectStmt, sc *scope, e *env) (Row, error) {
	var out Row
	for _, it := range sel.Items {
		switch {
		case it.Star && it.Table == "":
			for _, se := range sc.entries {
				out = append(out, e.row[se.offset:se.offset+len(se.table.Columns)]...)
			}
		case it.Star:
			found := false
			for _, se := range sc.entries {
				if se.name == strings.ToLower(it.Table) {
					out = append(out, e.row[se.offset:se.offset+len(se.table.Columns)]...)
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("engine: unknown table %q in select list", it.Table)
			}
		default:
			v, err := ev.evalEnv(it.Expr, e)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
	}
	return out, nil
}

func (ev *evaluator) orderKeysRow(sel *sqlparser.SelectStmt, e *env, out Row, cols []string) ([]sqlvalue.Value, error) {
	keys := make([]sqlvalue.Value, len(sel.OrderBy))
	for i, o := range sel.OrderBy {
		v, err := ev.orderValue(o.Expr, cols, out, func(x sqlparser.Expr) (sqlvalue.Value, error) {
			return ev.evalEnv(x, e)
		})
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

// orderValue resolves an ORDER BY expression: positional integer,
// select-list alias/column name, or an arbitrary expression evaluated
// by fallback.
func (ev *evaluator) orderValue(x sqlparser.Expr, cols []string, out Row, fallback func(sqlparser.Expr) (sqlvalue.Value, error)) (sqlvalue.Value, error) {
	if lit, ok := x.(*sqlparser.Literal); ok && lit.Value.Type() == sqlvalue.Int {
		i := int(lit.Value.Int()) - 1
		if i < 0 || i >= len(out) {
			return sqlvalue.Value{}, fmt.Errorf("engine: ORDER BY position %d out of range", i+1)
		}
		return out[i], nil
	}
	if cr, ok := x.(*sqlparser.ColumnRef); ok && cr.Table == "" {
		for i, c := range cols {
			if strings.EqualFold(c, cr.Column) {
				return out[i], nil
			}
		}
	}
	return fallback(x)
}

// --- Aggregation ---

type groupEnv struct {
	scope  *scope
	rows   []Row // the group's source rows; empty only for global aggregate over empty input
	parent *env
}

func (g *groupEnv) representative() Row {
	if len(g.rows) > 0 {
		return g.rows[0]
	}
	return make(Row, g.scope.width)
}

func (ev *evaluator) groupRows(sel *sqlparser.SelectStmt, sc *scope, parent *env, rows []Row) ([][]Row, error) {
	if len(sel.GroupBy) == 0 {
		// One global group (possibly empty).
		return [][]Row{rows}, nil
	}
	order := []string{}
	groups := make(map[string][]Row)
	for _, r := range rows {
		e := &env{scope: sc, row: r, parent: parent}
		var kb strings.Builder
		for _, g := range sel.GroupBy {
			v, err := ev.evalEnv(g, e)
			if err != nil {
				return nil, err
			}
			kb.WriteString(v.Key())
			kb.WriteByte(0)
		}
		k := kb.String()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	out := make([][]Row, len(order))
	for i, k := range order {
		out[i] = groups[k]
	}
	return out, nil
}

func (ev *evaluator) projectGroup(sel *sqlparser.SelectStmt, sc *scope, g *groupEnv) (Row, error) {
	var out Row
	for _, it := range sel.Items {
		if it.Star {
			return nil, fmt.Errorf("engine: SELECT * is not allowed with aggregation")
		}
		v, err := ev.evalAggregate(it.Expr, g)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func (ev *evaluator) orderKeysGroup(sel *sqlparser.SelectStmt, sc *scope, g *groupEnv, out Row, cols []string) ([]sqlvalue.Value, error) {
	keys := make([]sqlvalue.Value, len(sel.OrderBy))
	for i, o := range sel.OrderBy {
		v, err := ev.orderValue(o.Expr, cols, out, func(x sqlparser.Expr) (sqlvalue.Value, error) {
			return ev.evalAggregate(x, g)
		})
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

// evalAggregate evaluates an expression in group context: aggregate
// calls fold over the group's rows; everything else is evaluated on a
// representative row.
func (ev *evaluator) evalAggregate(x sqlparser.Expr, g *groupEnv) (sqlvalue.Value, error) {
	switch e := x.(type) {
	case *sqlparser.FuncExpr:
		if sqlparser.AggregateFuncs[e.Name] {
			return ev.foldAggregate(e, g)
		}
	case *sqlparser.BinaryExpr:
		l, err := ev.evalAggregate(e.Left, g)
		if err != nil {
			return sqlvalue.Value{}, err
		}
		r, err := ev.evalAggregate(e.Right, g)
		if err != nil {
			return sqlvalue.Value{}, err
		}
		return applyBinary(e.Op, l, r)
	case *sqlparser.UnaryExpr:
		v, err := ev.evalAggregate(e.Expr, g)
		if err != nil {
			return sqlvalue.Value{}, err
		}
		return applyUnary(e.Op, v)
	}
	return ev.evalEnv(x, &env{scope: g.scope, row: g.representative(), parent: g.parent})
}

func (ev *evaluator) foldAggregate(f *sqlparser.FuncExpr, g *groupEnv) (sqlvalue.Value, error) {
	if f.Star {
		if f.Name != "COUNT" {
			return sqlvalue.Value{}, fmt.Errorf("engine: %s(*) is not supported", f.Name)
		}
		return sqlvalue.NewInt(int64(len(g.rows))), nil
	}
	if len(f.Args) != 1 {
		return sqlvalue.Value{}, fmt.Errorf("engine: aggregate %s takes one argument", f.Name)
	}
	var vals []sqlvalue.Value
	seen := make(map[string]bool)
	for _, r := range g.rows {
		v, err := ev.evalEnv(f.Args[0], &env{scope: g.scope, row: r, parent: g.parent})
		if err != nil {
			return sqlvalue.Value{}, err
		}
		if v.IsNull() {
			continue
		}
		if f.Distinct {
			k := v.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch f.Name {
	case "COUNT":
		return sqlvalue.NewInt(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return sqlvalue.NewNull(), nil
		}
		sum := vals[0]
		var err error
		for _, v := range vals[1:] {
			sum, err = sqlvalue.Add(sum, v)
			if err != nil {
				return sqlvalue.Value{}, err
			}
		}
		if f.Name == "SUM" {
			return sum, nil
		}
		return sqlvalue.Div(sqlvalue.NewReal(sum.Real()), sqlvalue.NewInt(int64(len(vals))))
	case "MIN", "MAX":
		if len(vals) == 0 {
			return sqlvalue.NewNull(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, ok := sqlvalue.Compare(v, best)
			if !ok {
				return sqlvalue.Value{}, fmt.Errorf("engine: mixed types in %s", f.Name)
			}
			if (f.Name == "MIN" && c < 0) || (f.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return sqlvalue.Value{}, fmt.Errorf("engine: unknown aggregate %s", f.Name)
}

// --- Scalar expression evaluation ---

// predicate evaluates e as a WHERE condition over (scope,row); a nil
// expression is TRUE.
func (ev *evaluator) predicate(e sqlparser.Expr, sc *scope, row Row) (bool, error) {
	return ev.predicateEnv(e, &env{scope: sc, row: row})
}

func (ev *evaluator) predicateEnv(e sqlparser.Expr, en *env) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := ev.evalEnv(e, en)
	if err != nil {
		return false, err
	}
	return truth(v) == sqlvalue.True, nil
}

// truth converts a value to a Tristate (NULL -> UNKNOWN; BOOLEAN as
// itself; numbers by non-zero, matching SQLite's permissiveness).
func truth(v sqlvalue.Value) sqlvalue.Tristate {
	switch v.Type() {
	case sqlvalue.Null:
		return sqlvalue.Unknown
	case sqlvalue.Bool:
		return sqlvalue.TristateOf(v.Bool())
	case sqlvalue.Int:
		return sqlvalue.TristateOf(v.Int() != 0)
	case sqlvalue.Real:
		return sqlvalue.TristateOf(v.Real() != 0)
	}
	return sqlvalue.False
}

func (ev *evaluator) eval(e sqlparser.Expr, sc *scope, row Row) (sqlvalue.Value, error) {
	return ev.evalEnv(e, &env{scope: sc, row: row})
}

func (ev *evaluator) evalEnv(e sqlparser.Expr, en *env) (sqlvalue.Value, error) {
	switch x := e.(type) {
	case *sqlparser.Literal:
		return x.Value, nil

	case *sqlparser.Param:
		return sqlvalue.Value{}, fmt.Errorf("engine: unbound parameter %s", x.SQL())

	case *sqlparser.ColumnRef:
		for scope := en; scope != nil; scope = scope.parent {
			pos, ok, err := scope.scope.resolve(x.Table, x.Column)
			if err != nil {
				return sqlvalue.Value{}, err
			}
			if ok {
				if scope.row == nil || pos >= len(scope.row) {
					return sqlvalue.NewNull(), nil
				}
				return scope.row[pos], nil
			}
		}
		return sqlvalue.Value{}, fmt.Errorf("engine: unknown column %s", x.SQL())

	case *sqlparser.BinaryExpr:
		// Short-circuit three-valued AND/OR.
		if x.Op == sqlparser.OpAnd || x.Op == sqlparser.OpOr {
			l, err := ev.evalEnv(x.Left, en)
			if err != nil {
				return sqlvalue.Value{}, err
			}
			lt := truth(l)
			if x.Op == sqlparser.OpAnd && lt == sqlvalue.False {
				return sqlvalue.NewBool(false), nil
			}
			if x.Op == sqlparser.OpOr && lt == sqlvalue.True {
				return sqlvalue.NewBool(true), nil
			}
			r, err := ev.evalEnv(x.Right, en)
			if err != nil {
				return sqlvalue.Value{}, err
			}
			rt := truth(r)
			var out sqlvalue.Tristate
			if x.Op == sqlparser.OpAnd {
				out = lt.And(rt)
			} else {
				out = lt.Or(rt)
			}
			return tristateValue(out), nil
		}
		l, err := ev.evalEnv(x.Left, en)
		if err != nil {
			return sqlvalue.Value{}, err
		}
		r, err := ev.evalEnv(x.Right, en)
		if err != nil {
			return sqlvalue.Value{}, err
		}
		return applyBinary(x.Op, l, r)

	case *sqlparser.UnaryExpr:
		v, err := ev.evalEnv(x.Expr, en)
		if err != nil {
			return sqlvalue.Value{}, err
		}
		return applyUnary(x.Op, v)

	case *sqlparser.IsNullExpr:
		v, err := ev.evalEnv(x.Expr, en)
		if err != nil {
			return sqlvalue.Value{}, err
		}
		isNull := v.IsNull()
		if x.Not {
			isNull = !isNull
		}
		return sqlvalue.NewBool(isNull), nil

	case *sqlparser.InExpr:
		return ev.evalIn(x, en)

	case *sqlparser.ExistsExpr:
		res, err := ev.execSelect(x.Subquery, en)
		if err != nil {
			return sqlvalue.Value{}, err
		}
		nonEmpty := len(res.Rows) > 0
		if x.Not {
			nonEmpty = !nonEmpty
		}
		return sqlvalue.NewBool(nonEmpty), nil

	case *sqlparser.BetweenExpr:
		v, err := ev.evalEnv(x.Expr, en)
		if err != nil {
			return sqlvalue.Value{}, err
		}
		lo, err := ev.evalEnv(x.Lo, en)
		if err != nil {
			return sqlvalue.Value{}, err
		}
		hi, err := ev.evalEnv(x.Hi, en)
		if err != nil {
			return sqlvalue.Value{}, err
		}
		geLo, err := applyBinary(sqlparser.OpGe, v, lo)
		if err != nil {
			return sqlvalue.Value{}, err
		}
		leHi, err := applyBinary(sqlparser.OpLe, v, hi)
		if err != nil {
			return sqlvalue.Value{}, err
		}
		t := truth(geLo).And(truth(leHi))
		if x.Not {
			t = t.Not()
		}
		return tristateValue(t), nil

	case *sqlparser.FuncExpr:
		return ev.evalScalarFunc(x, en)

	case *sqlparser.SubqueryExpr:
		res, err := ev.execSelect(x.Subquery, en)
		if err != nil {
			return sqlvalue.Value{}, err
		}
		if len(res.Rows) == 0 {
			return sqlvalue.NewNull(), nil
		}
		if len(res.Rows) > 1 {
			return sqlvalue.Value{}, fmt.Errorf("engine: scalar subquery returned %d rows", len(res.Rows))
		}
		if len(res.Rows[0]) != 1 {
			return sqlvalue.Value{}, fmt.Errorf("engine: scalar subquery returned %d columns", len(res.Rows[0]))
		}
		return res.Rows[0][0], nil
	}
	return sqlvalue.Value{}, fmt.Errorf("engine: cannot evaluate %T", e)
}

func (ev *evaluator) evalIn(x *sqlparser.InExpr, en *env) (sqlvalue.Value, error) {
	v, err := ev.evalEnv(x.Expr, en)
	if err != nil {
		return sqlvalue.Value{}, err
	}
	var candidates []sqlvalue.Value
	if x.Subquery != nil {
		res, err := ev.execSelect(x.Subquery, en)
		if err != nil {
			return sqlvalue.Value{}, err
		}
		for _, r := range res.Rows {
			if len(r) != 1 {
				return sqlvalue.Value{}, fmt.Errorf("engine: IN subquery must return one column")
			}
			candidates = append(candidates, r[0])
		}
	} else {
		for _, le := range x.List {
			c, err := ev.evalEnv(le, en)
			if err != nil {
				return sqlvalue.Value{}, err
			}
			candidates = append(candidates, c)
		}
	}
	// SQL IN semantics with NULLs.
	result := sqlvalue.False
	for _, c := range candidates {
		eq := sqlvalue.Equal(v, c)
		result = result.Or(eq)
		if result == sqlvalue.True {
			break
		}
	}
	if x.Not {
		result = result.Not()
	}
	return tristateValue(result), nil
}

func (ev *evaluator) evalScalarFunc(f *sqlparser.FuncExpr, en *env) (sqlvalue.Value, error) {
	if sqlparser.AggregateFuncs[f.Name] {
		return sqlvalue.Value{}, fmt.Errorf("engine: aggregate %s outside GROUP BY context", f.Name)
	}
	args := make([]sqlvalue.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := ev.evalEnv(a, en)
		if err != nil {
			return sqlvalue.Value{}, err
		}
		args[i] = v
	}
	switch f.Name {
	case "LOWER":
		if len(args) != 1 {
			return sqlvalue.Value{}, fmt.Errorf("engine: LOWER takes one argument")
		}
		if args[0].IsNull() {
			return sqlvalue.NewNull(), nil
		}
		return sqlvalue.NewText(strings.ToLower(args[0].Text())), nil
	case "UPPER":
		if len(args) != 1 {
			return sqlvalue.Value{}, fmt.Errorf("engine: UPPER takes one argument")
		}
		if args[0].IsNull() {
			return sqlvalue.NewNull(), nil
		}
		return sqlvalue.NewText(strings.ToUpper(args[0].Text())), nil
	case "LENGTH":
		if len(args) != 1 {
			return sqlvalue.Value{}, fmt.Errorf("engine: LENGTH takes one argument")
		}
		if args[0].IsNull() {
			return sqlvalue.NewNull(), nil
		}
		return sqlvalue.NewInt(int64(len(args[0].Text()))), nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return sqlvalue.NewNull(), nil
	case "ABS":
		if len(args) != 1 {
			return sqlvalue.Value{}, fmt.Errorf("engine: ABS takes one argument")
		}
		switch args[0].Type() {
		case sqlvalue.Null:
			return sqlvalue.NewNull(), nil
		case sqlvalue.Int:
			n := args[0].Int()
			if n < 0 {
				n = -n
			}
			return sqlvalue.NewInt(n), nil
		case sqlvalue.Real:
			x := args[0].Real()
			if x < 0 {
				x = -x
			}
			return sqlvalue.NewReal(x), nil
		}
		return sqlvalue.Value{}, fmt.Errorf("engine: ABS of %s", args[0].Type())
	}
	return sqlvalue.Value{}, fmt.Errorf("engine: unknown function %s", f.Name)
}

func tristateValue(t sqlvalue.Tristate) sqlvalue.Value {
	switch t {
	case sqlvalue.True:
		return sqlvalue.NewBool(true)
	case sqlvalue.False:
		return sqlvalue.NewBool(false)
	}
	return sqlvalue.NewNull()
}

func applyBinary(op sqlparser.BinaryOp, l, r sqlvalue.Value) (sqlvalue.Value, error) {
	switch op {
	case sqlparser.OpEq:
		return tristateValue(sqlvalue.Equal(l, r)), nil
	case sqlparser.OpNe:
		return tristateValue(sqlvalue.Equal(l, r).Not()), nil
	case sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
		c, ok := sqlvalue.Compare(l, r)
		if !ok {
			return sqlvalue.NewNull(), nil
		}
		var b bool
		switch op {
		case sqlparser.OpLt:
			b = c < 0
		case sqlparser.OpLe:
			b = c <= 0
		case sqlparser.OpGt:
			b = c > 0
		case sqlparser.OpGe:
			b = c >= 0
		}
		return sqlvalue.NewBool(b), nil
	case sqlparser.OpAdd:
		return sqlvalue.Add(l, r)
	case sqlparser.OpSub:
		return sqlvalue.Sub(l, r)
	case sqlparser.OpMul:
		return sqlvalue.Mul(l, r)
	case sqlparser.OpDiv:
		return sqlvalue.Div(l, r)
	case sqlparser.OpMod:
		return sqlvalue.Mod(l, r)
	case sqlparser.OpLike:
		return tristateValue(sqlvalue.Like(l, r)), nil
	case sqlparser.OpAnd:
		return tristateValue(truth(l).And(truth(r))), nil
	case sqlparser.OpOr:
		return tristateValue(truth(l).Or(truth(r))), nil
	}
	return sqlvalue.Value{}, fmt.Errorf("engine: unknown binary op %d", op)
}

func applyUnary(op byte, v sqlvalue.Value) (sqlvalue.Value, error) {
	switch op {
	case '!':
		return tristateValue(truth(v).Not()), nil
	case '-':
		switch v.Type() {
		case sqlvalue.Null:
			return sqlvalue.NewNull(), nil
		case sqlvalue.Int:
			return sqlvalue.NewInt(-v.Int()), nil
		case sqlvalue.Real:
			return sqlvalue.NewReal(-v.Real()), nil
		}
		return sqlvalue.Value{}, fmt.Errorf("engine: cannot negate %s", v.Type())
	}
	return sqlvalue.Value{}, fmt.Errorf("engine: unknown unary op %q", op)
}
