package engine

import (
	"testing"

	"repro/internal/sqlparser"
)

func TestUnionDeduplicates(t *testing.T) {
	db := calendarDB(t)
	res := mustQuery(t, db,
		"SELECT UId FROM Attendance WHERE UId = 1 UNION SELECT UId FROM Attendance WHERE UId = 1")
	if len(res.Rows) != 1 {
		t.Fatalf("UNION should dedupe: %v", res)
	}
}

func TestUnionAllKeepsDuplicates(t *testing.T) {
	db := calendarDB(t)
	res := mustQuery(t, db,
		"SELECT UId FROM Users WHERE UId = 1 UNION ALL SELECT UId FROM Users WHERE UId = 1")
	if len(res.Rows) != 2 {
		t.Fatalf("UNION ALL should keep duplicates: %v", res)
	}
}

func TestUnionCombinesArms(t *testing.T) {
	db := calendarDB(t)
	res := mustQuery(t, db,
		"SELECT Name FROM Users WHERE UId = 1 UNION SELECT Name FROM Users WHERE UId = 2 ORDER BY 1")
	if len(res.Rows) != 2 || res.Rows[0][0].Text() != "alice" || res.Rows[1][0].Text() != "bob" {
		t.Fatalf("union arms: %v", res)
	}
}

func TestUnionOrderLimitOnWhole(t *testing.T) {
	db := calendarDB(t)
	res := mustQuery(t, db,
		"SELECT UId FROM Users WHERE UId <= 2 UNION SELECT UId FROM Users WHERE UId = 3 ORDER BY UId DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 3 || res.Rows[1][0].Int() != 2 {
		t.Fatalf("union order/limit: %v", res)
	}
}

func TestUnionColumnMismatch(t *testing.T) {
	db := calendarDB(t)
	if _, err := db.QuerySQL("SELECT UId FROM Users UNION SELECT UId, Name FROM Users", sqlparser.NoArgs); err == nil {
		t.Fatal("column mismatch must error")
	}
}

func TestUnionThreeArms(t *testing.T) {
	db := calendarDB(t)
	res := mustQuery(t, db,
		"SELECT UId FROM Users WHERE UId = 1 UNION SELECT UId FROM Users WHERE UId = 2 UNION SELECT UId FROM Users WHERE UId = 3 ORDER BY 1")
	if len(res.Rows) != 3 {
		t.Fatalf("three arms: %v", res)
	}
}
