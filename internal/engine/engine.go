// Package engine implements an in-memory relational database engine:
// row storage with primary/unique-key hash indexes, constraint
// checking, and an executor for the SQL subset produced by
// internal/sqlparser. It is the substrate the enforcement proxy
// forwards allowed queries to, standing in for the production DBMS a
// Blockaid-style deployment would use.
package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obsv"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

// Row is one stored tuple, in declared column order.
type Row []sqlvalue.Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// key builds a composite index key from the given column positions.
func (r Row) key(cols []int) string {
	var b strings.Builder
	for _, c := range cols {
		b.WriteString(r[c].Key())
		b.WriteByte(0)
	}
	return b.String()
}

// tableData is the storage for one table.
type tableData struct {
	def  *schema.Table
	rows []Row // live rows; deletion swaps with last

	pkCols  []int          // column positions of the PK; nil if none
	pkIndex map[string]int // PK key -> row position

	uniques []uniqueIndex
}

type uniqueIndex struct {
	cols  []int
	index map[string]int
}

// DB is an in-memory database over a fixed schema. It is safe for
// concurrent use; reads take a shared lock.
type DB struct {
	mu     sync.RWMutex
	schema *schema.Schema
	tables map[string]*tableData

	// DisableEqScan turns off the bound equality-scan fast path
	// (tryEqScan) so the generic evaluator serves every query — the
	// saturation harness's ablation switch and the parity tests' lever.
	// Set before serving; it is not synchronized.
	DisableEqScan bool

	// obs holds the optional scan instruments (SetMetrics); an atomic
	// pointer so installing metrics never races with running queries.
	obs atomic.Pointer[engineObs]
}

// engineObs bundles the engine's instruments so they install
// atomically.
type engineObs struct {
	queries *obsv.Counter
	scan    *obsv.Histogram
}

// SetMetrics points the engine at an observability registry: every
// QueryCtx counts into engine.queries and times its scan into
// engine.scan.micros. Safe to call at any time, including while
// queries run; a nil registry (or never calling this) keeps the
// zero-overhead path.
func (db *DB) SetMetrics(reg *obsv.Registry) {
	if reg == nil || !reg.Enabled() {
		db.obs.Store(nil)
		return
	}
	db.obs.Store(&engineObs{
		queries: reg.Counter("engine.queries"),
		scan:    reg.Histogram("engine.scan.micros"),
	})
}

// New creates an empty database for the schema.
func New(s *schema.Schema) *DB {
	db := &DB{schema: s, tables: make(map[string]*tableData)}
	for _, t := range s.Tables() {
		td := &tableData{def: t}
		if len(t.PrimaryKey) > 0 {
			td.pkCols = columnPositions(t, t.PrimaryKey)
			td.pkIndex = make(map[string]int)
		}
		for _, uk := range t.UniqueKeys {
			td.uniques = append(td.uniques, uniqueIndex{
				cols:  columnPositions(t, uk),
				index: make(map[string]int),
			})
		}
		db.tables[strings.ToLower(t.Name)] = td
	}
	return db
}

func columnPositions(t *schema.Table, names []string) []int {
	out := make([]int, len(names))
	for i, n := range names {
		p, ok := t.ColumnIndex(n)
		if !ok {
			panic(fmt.Sprintf("engine: unknown column %s.%s", t.Name, n))
		}
		out[i] = p
	}
	return out
}

// Schema returns the database schema.
func (db *DB) Schema() *schema.Schema { return db.schema }

// RowCount returns the number of live rows in the table.
func (db *DB) RowCount(table string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	td, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return 0
	}
	return len(td.rows)
}

// Result is the outcome of a SELECT.
type Result struct {
	Columns []string
	Rows    []Row
}

// Empty reports whether the result has no rows.
func (r *Result) Empty() bool { return len(r.Rows) == 0 }

// String renders the result as an aligned text table for debugging.
func (r *Result) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Columns, " | "))
	b.WriteString("\n")
	for _, row := range r.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		b.WriteString(strings.Join(parts, " | "))
		b.WriteString("\n")
	}
	return b.String()
}

// Exec parses and runs one statement with the given arguments.
// SELECTs return a Result; DML returns a Result with no columns and
// the affected-row count accessible via Affected.
func (db *DB) Exec(sql string, args sqlparser.Args) (*Result, int, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, 0, err
	}
	return db.ExecStmt(stmt, args)
}

// ExecStmt runs a parsed statement.
func (db *DB) ExecStmt(stmt sqlparser.Statement, args sqlparser.Args) (*Result, int, error) {
	bound, err := sqlparser.Bind(stmt, args)
	if err != nil {
		return nil, 0, err
	}
	switch s := bound.(type) {
	case *sqlparser.SelectStmt:
		res, err := db.Query(s)
		return res, 0, err
	case *sqlparser.InsertStmt:
		n, err := db.Insert(s)
		return &Result{}, n, err
	case *sqlparser.UpdateStmt:
		n, err := db.Update(s)
		return &Result{}, n, err
	case *sqlparser.DeleteStmt:
		n, err := db.Delete(s)
		return &Result{}, n, err
	case *sqlparser.CreateTableStmt:
		return nil, 0, fmt.Errorf("engine: CREATE TABLE must go through schema construction")
	}
	return nil, 0, fmt.Errorf("engine: unsupported statement %T", bound)
}

// MustExec is Exec, panicking on error; for seed data in tests.
func (db *DB) MustExec(sql string, argVals ...any) {
	if _, _, err := db.Exec(sql, sqlparser.PositionalArgs(argVals...)); err != nil {
		panic(err)
	}
}

// Insert applies an INSERT statement whose parameters are already
// bound. It enforces NOT NULL, type coercion, PK/unique uniqueness,
// and foreign keys.
func (db *DB) Insert(ins *sqlparser.InsertStmt) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	td, ok := db.tables[strings.ToLower(ins.Table)]
	if !ok {
		return 0, fmt.Errorf("engine: no table %q", ins.Table)
	}
	cols := ins.Columns
	if len(cols) == 0 {
		cols = td.def.ColumnNames()
	}
	pos := make([]int, len(cols))
	for i, c := range cols {
		p, ok := td.def.ColumnIndex(c)
		if !ok {
			return 0, fmt.Errorf("engine: table %s has no column %q", td.def.Name, c)
		}
		pos[i] = p
	}
	inserted := 0
	for _, exprRow := range ins.Rows {
		if len(exprRow) != len(cols) {
			return inserted, fmt.Errorf("engine: INSERT arity mismatch: %d values for %d columns", len(exprRow), len(cols))
		}
		row := make(Row, len(td.def.Columns))
		for i := range row {
			row[i] = sqlvalue.NewNull()
		}
		for i, e := range exprRow {
			v, err := constEval(e)
			if err != nil {
				return inserted, err
			}
			cv, err := sqlvalue.CoerceTo(v, td.def.Columns[pos[i]].Type)
			if err != nil {
				return inserted, fmt.Errorf("engine: column %s.%s: %v", td.def.Name, cols[i], err)
			}
			row[pos[i]] = cv
		}
		if err := db.insertRowLocked(td, row); err != nil {
			return inserted, err
		}
		inserted++
	}
	return inserted, nil
}

// InsertRow inserts one tuple given as Go values in declared column
// order, enforcing all constraints.
func (db *DB) InsertRow(table string, vals ...any) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	td, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("engine: no table %q", table)
	}
	if len(vals) != len(td.def.Columns) {
		return fmt.Errorf("engine: InsertRow(%s): %d values for %d columns", table, len(vals), len(td.def.Columns))
	}
	row := make(Row, len(vals))
	for i, v := range vals {
		sv, err := sqlvalue.FromAny(v)
		if err != nil {
			return err
		}
		cv, err := sqlvalue.CoerceTo(sv, td.def.Columns[i].Type)
		if err != nil {
			return fmt.Errorf("engine: column %s.%s: %v", table, td.def.Columns[i].Name, err)
		}
		row[i] = cv
	}
	return db.insertRowLocked(td, row)
}

func (db *DB) insertRowLocked(td *tableData, row Row) error {
	// NOT NULL.
	for i, c := range td.def.Columns {
		if c.NotNull && row[i].IsNull() {
			return fmt.Errorf("engine: NOT NULL violation on %s.%s", td.def.Name, c.Name)
		}
	}
	// PK and unique.
	if td.pkIndex != nil {
		k := row.key(td.pkCols)
		if _, dup := td.pkIndex[k]; dup {
			return fmt.Errorf("engine: primary key violation on %s", td.def.Name)
		}
	}
	for _, u := range td.uniques {
		k := row.key(u.cols)
		if _, dup := u.index[k]; dup {
			return fmt.Errorf("engine: unique violation on %s", td.def.Name)
		}
	}
	// Foreign keys.
	for _, fk := range td.def.ForeignKeys {
		if err := db.checkFKLocked(td.def, fk, row); err != nil {
			return err
		}
	}
	at := len(td.rows)
	td.rows = append(td.rows, row)
	if td.pkIndex != nil {
		td.pkIndex[row.key(td.pkCols)] = at
	}
	for _, u := range td.uniques {
		u.index[row.key(u.cols)] = at
	}
	return nil
}

func (db *DB) checkFKLocked(t *schema.Table, fk schema.ForeignKey, row Row) error {
	vals := make([]sqlvalue.Value, len(fk.Columns))
	anyNull := false
	for i, c := range fk.Columns {
		p, _ := t.ColumnIndex(c)
		vals[i] = row[p]
		if vals[i].IsNull() {
			anyNull = true
		}
	}
	if anyNull {
		return nil // SQL FK semantics: NULL escapes the check
	}
	ref := db.tables[strings.ToLower(fk.RefTable)]
	refPos := columnPositions(ref.def, fk.RefColumns)
	// Fast path: referenced columns are the ref table's PK.
	if ref.pkIndex != nil && equalIntSlices(refPos, ref.pkCols) {
		probe := Row(vals)
		if _, ok := ref.pkIndex[probe.key(rangeInts(len(vals)))]; ok {
			return nil
		}
		return fmt.Errorf("engine: FK violation: %s(%s) -> %s", t.Name, strings.Join(fk.Columns, ","), fk.RefTable)
	}
	for _, rr := range ref.rows {
		match := true
		for i, p := range refPos {
			if !sqlvalue.Identical(rr[p], vals[i]) {
				match = false
				break
			}
		}
		if match {
			return nil
		}
	}
	return fmt.Errorf("engine: FK violation: %s(%s) -> %s", t.Name, strings.Join(fk.Columns, ","), fk.RefTable)
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func rangeInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Update applies an UPDATE whose parameters are bound.
func (db *DB) Update(upd *sqlparser.UpdateStmt) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	td, ok := db.tables[strings.ToLower(upd.Table)]
	if !ok {
		return 0, fmt.Errorf("engine: no table %q", upd.Table)
	}
	setPos := make([]int, len(upd.Set))
	for i, a := range upd.Set {
		p, ok := td.def.ColumnIndex(a.Column)
		if !ok {
			return 0, fmt.Errorf("engine: table %s has no column %q", td.def.Name, a.Column)
		}
		setPos[i] = p
	}
	ev := &evaluator{db: db}
	scope := newScope(nil)
	scope.addTable(td.def, strings.ToLower(upd.Table), 0)
	n := 0
	for ri, row := range td.rows {
		keep, err := ev.predicate(upd.Where, scope, row)
		if err != nil {
			return n, err
		}
		if !keep {
			continue
		}
		updated := row.Clone()
		for i, a := range upd.Set {
			v, err := ev.eval(a.Value, scope, row)
			if err != nil {
				return n, err
			}
			cv, err := sqlvalue.CoerceTo(v, td.def.Columns[setPos[i]].Type)
			if err != nil {
				return n, fmt.Errorf("engine: column %s.%s: %v", td.def.Name, a.Column, err)
			}
			updated[setPos[i]] = cv
		}
		if err := db.replaceRowLocked(td, ri, updated); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func (db *DB) replaceRowLocked(td *tableData, ri int, updated Row) error {
	old := td.rows[ri]
	for i, c := range td.def.Columns {
		if c.NotNull && updated[i].IsNull() {
			return fmt.Errorf("engine: NOT NULL violation on %s.%s", td.def.Name, c.Name)
		}
	}
	if td.pkIndex != nil {
		ok, nk := old.key(td.pkCols), updated.key(td.pkCols)
		if ok != nk {
			if _, dup := td.pkIndex[nk]; dup {
				return fmt.Errorf("engine: primary key violation on %s", td.def.Name)
			}
			delete(td.pkIndex, ok)
			td.pkIndex[nk] = ri
		}
	}
	for _, u := range td.uniques {
		ok, nk := old.key(u.cols), updated.key(u.cols)
		if ok != nk {
			if _, dup := u.index[nk]; dup {
				return fmt.Errorf("engine: unique violation on %s", td.def.Name)
			}
			delete(u.index, ok)
			u.index[nk] = ri
		}
	}
	for _, fk := range td.def.ForeignKeys {
		if err := db.checkFKLocked(td.def, fk, updated); err != nil {
			return err
		}
	}
	td.rows[ri] = updated
	return nil
}

// Delete applies a DELETE whose parameters are bound.
func (db *DB) Delete(del *sqlparser.DeleteStmt) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	td, ok := db.tables[strings.ToLower(del.Table)]
	if !ok {
		return 0, fmt.Errorf("engine: no table %q", del.Table)
	}
	ev := &evaluator{db: db}
	scope := newScope(nil)
	scope.addTable(td.def, strings.ToLower(del.Table), 0)
	var keep []Row
	n := 0
	for _, row := range td.rows {
		match, err := ev.predicate(del.Where, scope, row)
		if err != nil {
			return 0, err
		}
		if match {
			n++
		} else {
			keep = append(keep, row)
		}
	}
	if n == 0 {
		return 0, nil
	}
	td.rows = keep
	db.rebuildIndexesLocked(td)
	return n, nil
}

func (db *DB) rebuildIndexesLocked(td *tableData) {
	if td.pkIndex != nil {
		td.pkIndex = make(map[string]int, len(td.rows))
		for i, r := range td.rows {
			td.pkIndex[r.key(td.pkCols)] = i
		}
	}
	for ui := range td.uniques {
		td.uniques[ui].index = make(map[string]int, len(td.rows))
		for i, r := range td.rows {
			td.uniques[ui].index[r.key(td.uniques[ui].cols)] = i
		}
	}
}

// Snapshot returns a deep copy of all rows of the table, for test
// assertions and the extractor's mutation probing.
func (db *DB) Snapshot(table string) []Row {
	db.mu.RLock()
	defer db.mu.RUnlock()
	td, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return nil
	}
	out := make([]Row, len(td.rows))
	for i, r := range td.rows {
		out[i] = r.Clone()
	}
	return out
}

// Clone returns an independent copy of the whole database (same
// schema object, copied rows). Used by mutation probing and the
// counterexample search.
func (db *DB) Clone() *DB {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := New(db.schema)
	for name, td := range db.tables {
		otd := out.tables[name]
		otd.rows = make([]Row, len(td.rows))
		for i, r := range td.rows {
			otd.rows[i] = r.Clone()
		}
		out.rebuildIndexesLocked(otd)
	}
	return out
}

// ContentHash returns an order-independent FNV-1a digest of the full
// database contents (table names and row values). The durable WAL
// stamps it into policy snapshots so crash recovery can warn when the
// database a restored session's history was observed against is not
// the database the proxy now serves. Rows hash independently and are
// combined by addition, so physical row order (which insertion and
// deletion reshuffle) does not affect the digest.
func (db *DB) ContentHash() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	hashStr := func(h uint64, s string) uint64 {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		return h
	}
	var sum uint64 = offset64
	for _, n := range names {
		td := db.tables[n]
		sum = hashStr(sum, n)
		sum = hashStr(sum, "\x00")
		var rows uint64
		for _, r := range td.rows {
			h := uint64(offset64)
			for _, v := range r {
				h = hashStr(h, v.Key())
				h = hashStr(h, "\x1f")
			}
			rows += h
		}
		sum ^= rows
		sum *= prime64
	}
	return sum
}

// SetCell overwrites one cell identified by table, row position, and
// column name, bypassing FK checks (mutation probing needs arbitrary
// perturbations). Uniqueness and NOT NULL are still enforced.
func (db *DB) SetCell(table string, rowIdx int, column string, val any) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	td, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("engine: no table %q", table)
	}
	if rowIdx < 0 || rowIdx >= len(td.rows) {
		return fmt.Errorf("engine: row %d out of range for %s", rowIdx, table)
	}
	p, ok := td.def.ColumnIndex(column)
	if !ok {
		return fmt.Errorf("engine: table %s has no column %q", table, column)
	}
	sv, err := sqlvalue.FromAny(val)
	if err != nil {
		return err
	}
	cv, err := sqlvalue.CoerceTo(sv, td.def.Columns[p].Type)
	if err != nil {
		return err
	}
	updated := td.rows[rowIdx].Clone()
	updated[p] = cv
	old := td.rows[rowIdx]
	if td.def.Columns[p].NotNull && cv.IsNull() {
		return fmt.Errorf("engine: NOT NULL violation on %s.%s", table, column)
	}
	if td.pkIndex != nil {
		ok2, nk := old.key(td.pkCols), updated.key(td.pkCols)
		if ok2 != nk {
			if _, dup := td.pkIndex[nk]; dup {
				return fmt.Errorf("engine: primary key violation on %s", table)
			}
			delete(td.pkIndex, ok2)
			td.pkIndex[nk] = rowIdx
		}
	}
	td.rows[rowIdx] = updated
	return nil
}

// Tables returns the table names sorted, for deterministic iteration.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, td := range db.tables {
		out = append(out, td.def.Name)
	}
	sort.Strings(out)
	return out
}

// constEval evaluates an expression with no column references (INSERT
// values after binding).
func constEval(e sqlparser.Expr) (sqlvalue.Value, error) {
	ev := &evaluator{}
	return ev.eval(e, newScope(nil), nil)
}
