package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/sqlparser"
)

// randSeededDB builds a calendar database with n rows of random but
// FK-consistent data.
func randSeededDB(t *testing.T, rng *rand.Rand, n int) *DB {
	t.Helper()
	db := calendarDB(t)
	// calendarDB seeds 3 users/events; extend with random rows.
	for i := 4; i < 4+n; i++ {
		db.MustExec("INSERT INTO Users (UId, Name) VALUES (?, ?)", i, fmt.Sprintf("u%d", i))
		db.MustExec("INSERT INTO Events (EId, Title, Notes) VALUES (?, ?, NULL)", i, fmt.Sprintf("e%d", rng.Intn(5)))
	}
	for i := 4; i < 4+n; i++ {
		u := rng.Intn(n) + 4
		e := rng.Intn(n) + 4
		_, _, _ = db.Exec("INSERT INTO Attendance (UId, EId) VALUES (?, ?)",
			sqlparser.PositionalArgs(u, e)) // duplicates rejected; fine
	}
	return db
}

// TestFilterPushdownEquivalence: filtering after a join equals
// filtering via the ON clause.
func TestFilterPushdownEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := randSeededDB(t, rng, 20)
	a := mustQuery(t, db,
		"SELECT e.EId, e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 5 ORDER BY e.EId")
	b := mustQuery(t, db,
		"SELECT e.EId, e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId AND a.UId = 5 ORDER BY e.EId")
	if a.String() != b.String() {
		t.Fatalf("pushdown mismatch:\n%s\nvs\n%s", a, b)
	}
}

// TestDistinctIdempotent: DISTINCT of DISTINCT-able output has no
// duplicates and re-running is stable.
func TestDistinctIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := randSeededDB(t, rng, 25)
	res := mustQuery(t, db, "SELECT DISTINCT Title FROM Events ORDER BY Title")
	seen := map[string]bool{}
	for _, r := range res.Rows {
		k := r[0].Text()
		if seen[k] {
			t.Fatalf("duplicate after DISTINCT: %q", k)
		}
		seen[k] = true
	}
	res2 := mustQuery(t, db, "SELECT DISTINCT Title FROM Events ORDER BY Title")
	if res.String() != res2.String() {
		t.Fatal("DISTINCT not deterministic")
	}
}

// TestLimitMonotonicity: LIMIT k is a prefix of LIMIT k+1 under the
// same ORDER BY.
func TestLimitMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := randSeededDB(t, rng, 30)
	prev := mustQuery(t, db, "SELECT UId FROM Users ORDER BY UId LIMIT 1")
	for k := 2; k <= 8; k++ {
		cur := mustQuery(t, db, fmt.Sprintf("SELECT UId FROM Users ORDER BY UId LIMIT %d", k))
		if len(cur.Rows) < len(prev.Rows) {
			t.Fatalf("LIMIT %d returned fewer rows than LIMIT %d", k, k-1)
		}
		for i := range prev.Rows {
			if prev.Rows[i][0].Int() != cur.Rows[i][0].Int() {
				t.Fatalf("LIMIT %d is not a prefix of LIMIT %d", k-1, k)
			}
		}
		prev = cur
	}
}

// TestCountMatchesRowCount: COUNT(*) equals the number of rows the
// same body returns.
func TestCountMatchesRowCount(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	db := randSeededDB(t, rng, 25)
	rows := mustQuery(t, db, "SELECT UId, EId FROM Attendance")
	cnt := mustQuery(t, db, "SELECT COUNT(*) FROM Attendance")
	if int64(len(rows.Rows)) != cnt.Rows[0][0].Int() {
		t.Fatalf("count %d != rows %d", cnt.Rows[0][0].Int(), len(rows.Rows))
	}
}

// TestOffsetPartition: LIMIT k plus OFFSET k LIMIT rest partitions the
// ordered result.
func TestOffsetPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := randSeededDB(t, rng, 20)
	all := mustQuery(t, db, "SELECT UId FROM Users ORDER BY UId")
	first := mustQuery(t, db, "SELECT UId FROM Users ORDER BY UId LIMIT 5")
	rest := mustQuery(t, db, "SELECT UId FROM Users ORDER BY UId LIMIT 1000 OFFSET 5")
	if len(first.Rows)+len(rest.Rows) != len(all.Rows) {
		t.Fatalf("partition sizes: %d + %d != %d", len(first.Rows), len(rest.Rows), len(all.Rows))
	}
	for i, r := range append(first.Rows, rest.Rows...) {
		if r[0].Int() != all.Rows[i][0].Int() {
			t.Fatalf("partition order broken at %d", i)
		}
	}
}

// TestConcurrentReadsAndWrites: the engine must tolerate parallel
// readers with a writer (exercises the RWMutex paths under -race).
func TestConcurrentReadsAndWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	db := randSeededDB(t, rng, 10)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if g%2 == 0 {
					if _, err := db.QuerySQL("SELECT COUNT(*) FROM Attendance", sqlparser.NoArgs); err != nil {
						errs <- err
						return
					}
				} else {
					u := 100 + g*1000 + i
					if _, _, err := db.Exec("INSERT INTO Users (UId, Name) VALUES (?, ?)",
						sqlparser.PositionalArgs(u, "w")); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSubqueryJoinEquivalence: IN (subquery) equals the equivalent
// join under DISTINCT.
func TestSubqueryJoinEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := randSeededDB(t, rng, 25)
	a := mustQuery(t, db,
		"SELECT DISTINCT Title FROM Events WHERE EId IN (SELECT EId FROM Attendance) ORDER BY Title")
	b := mustQuery(t, db,
		"SELECT DISTINCT e.Title FROM Events e JOIN Attendance at ON e.EId = at.EId ORDER BY e.Title")
	if a.String() != b.String() {
		t.Fatalf("IN-subquery vs join mismatch:\n%s\nvs\n%s", a, b)
	}
}

// TestExistsNotExistsPartition: EXISTS and NOT EXISTS partition the
// outer table.
func TestExistsNotExistsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	db := randSeededDB(t, rng, 25)
	all := mustQuery(t, db, "SELECT COUNT(*) FROM Events")
	with := mustQuery(t, db,
		"SELECT COUNT(*) FROM Events e WHERE EXISTS (SELECT 1 FROM Attendance a WHERE a.EId = e.EId)")
	without := mustQuery(t, db,
		"SELECT COUNT(*) FROM Events e WHERE NOT EXISTS (SELECT 1 FROM Attendance a WHERE a.EId = e.EId)")
	if with.Rows[0][0].Int()+without.Rows[0][0].Int() != all.Rows[0][0].Int() {
		t.Fatalf("EXISTS partition: %d + %d != %d",
			with.Rows[0][0].Int(), without.Rows[0][0].Int(), all.Rows[0][0].Int())
	}
}
