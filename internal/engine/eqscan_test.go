package engine

import (
	"math/rand"
	"testing"
)

// TestEqScanParity pins the bound equality-scan fast path to the
// generic evaluator: every query runs twice (fast path on, then
// ablated via DisableEqScan) and the rendered results must match
// byte-for-byte — columns, rows, row order. The list mixes shapes the
// fast path serves (single table, AND-of-comparisons, plain
// projection) with shapes that must fall back (joins, aggregates,
// subqueries, ORDER BY, DISTINCT, qualified stars), so it also guards
// against the fast path claiming a query it cannot serve.
func TestEqScanParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := randSeededDB(t, rng, 30)

	queries := []string{
		// In-scope shapes.
		"SELECT EId FROM Attendance WHERE UId = 5",
		"SELECT UId, EId FROM Attendance WHERE UId = 5 AND EId = 6",
		"SELECT 1 FROM Attendance WHERE UId = 5 AND EId = 6",
		"SELECT Name FROM Users WHERE UId = 2",
		"SELECT * FROM Users WHERE UId = 3",
		"SELECT * FROM Events WHERE EId > 10 AND EId <= 14",
		"SELECT Title FROM Events WHERE Title LIKE 'e%'",
		"SELECT Name FROM Users WHERE 2 = UId",
		"SELECT Name FROM Users WHERE UId <> 2 AND UId < 6",
		"SELECT u.Name FROM Users u WHERE u.UId = 4",
		"SELECT Notes FROM Events WHERE EId = 6",        // NULL projection
		"SELECT Title FROM Events WHERE Notes = 'nope'", // NULL comparisons filter
		"SELECT EId FROM Attendance WHERE UId = 99999",  // empty result
		// Fast path must decline these; parity still holds via fallback.
		"SELECT e.EId FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 5",
		"SELECT COUNT(*) FROM Attendance WHERE UId = 5",
		"SELECT EId FROM Attendance WHERE UId = 5 ORDER BY EId",
		"SELECT DISTINCT UId FROM Attendance WHERE UId < 10",
		"SELECT EId FROM Attendance WHERE UId = 5 OR UId = 6",
		"SELECT EId FROM Attendance WHERE UId IN (5, 6)",
		"SELECT Title FROM Events WHERE EXISTS (SELECT 1 FROM Attendance WHERE Attendance.EId = Events.EId)",
		"SELECT u.* FROM Users u WHERE u.UId = 2",
		"SELECT LOWER(Name) FROM Users WHERE UId = 2",
		"SELECT EId FROM Attendance WHERE UId = 5 LIMIT 1",
		"SELECT Title FROM Events WHERE Notes IS NULL AND EId < 8",
	}
	for _, q := range queries {
		db.DisableEqScan = false
		fast := mustQuery(t, db, q)
		db.DisableEqScan = true
		generic := mustQuery(t, db, q)
		db.DisableEqScan = false
		if fast.String() != generic.String() {
			t.Errorf("eq-scan parity broken for %q:\nfast path:\n%s\ngeneric:\n%s", q, fast, generic)
		}
	}
}

// TestEqScanRandomizedParity hammers the fast path with generated
// single-table conjunction queries over random data — every eligible
// (column, op, literal) combination the planner accepts must agree
// with the generic evaluator.
func TestEqScanRandomizedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := randSeededDB(t, rng, 40)

	cols := []string{"UId", "EId"}
	ops := []string{"=", "<>", "<", "<=", ">", ">="}
	for i := 0; i < 300; i++ {
		q := "SELECT UId, EId FROM Attendance WHERE "
		n := rng.Intn(3) + 1
		for c := 0; c < n; c++ {
			if c > 0 {
				q += " AND "
			}
			col := cols[rng.Intn(len(cols))]
			op := ops[rng.Intn(len(ops))]
			lit := rng.Intn(50)
			if rng.Intn(4) == 0 {
				q += itoa(lit) + " " + op + " " + col
			} else {
				q += col + " " + op + " " + itoa(lit)
			}
		}
		db.DisableEqScan = false
		fast := mustQuery(t, db, q)
		db.DisableEqScan = true
		generic := mustQuery(t, db, q)
		db.DisableEqScan = false
		if fast.String() != generic.String() {
			t.Fatalf("randomized parity broken for %q:\nfast path:\n%s\ngeneric:\n%s", q, fast, generic)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
