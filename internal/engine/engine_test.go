package engine

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

func calendarDB(t testing.TB) *DB {
	t.Helper()
	s, err := schema.NewBuilder().
		Table("Users").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("Name", sqlvalue.Text).
		PK("UId").Done().
		Table("Events").
		OpaqueCol("EId", sqlvalue.Int).
		NotNullCol("Title", sqlvalue.Text).
		Col("Notes", sqlvalue.Text).
		PK("EId").Done().
		Table("Attendance").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("EId", sqlvalue.Int).
		PK("UId", "EId").
		FK([]string{"UId"}, "Users", []string{"UId"}).
		FK([]string{"EId"}, "Events", []string{"EId"}).Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	db := New(s)
	db.MustExec("INSERT INTO Users (UId, Name) VALUES (1, 'alice'), (2, 'bob'), (3, 'carol')")
	db.MustExec("INSERT INTO Events (EId, Title, Notes) VALUES (1, 'standup', NULL), (2, 'retro', 'bring snacks'), (3, 'offsite', NULL)")
	db.MustExec("INSERT INTO Attendance (UId, EId) VALUES (1, 1), (1, 2), (2, 1), (3, 3)")
	return db
}

func mustQuery(t testing.TB, db *DB, sql string, args ...any) *Result {
	t.Helper()
	res, err := db.QuerySQL(sql, sqlparser.PositionalArgs(args...))
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return res
}

func TestSelectBasics(t *testing.T) {
	db := calendarDB(t)
	res := mustQuery(t, db, "SELECT Name FROM Users WHERE UId = 2")
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "bob" {
		t.Fatalf("result: %v", res)
	}
	if res.Columns[0] != "Name" {
		t.Fatalf("columns: %v", res.Columns)
	}
}

func TestSelectStar(t *testing.T) {
	db := calendarDB(t)
	res := mustQuery(t, db, "SELECT * FROM Events WHERE EId = 2")
	if len(res.Columns) != 3 || len(res.Rows) != 1 {
		t.Fatalf("result: %v", res)
	}
	if res.Rows[0][1].Text() != "retro" {
		t.Fatalf("row: %v", res.Rows[0])
	}
}

func TestPositionalParams(t *testing.T) {
	db := calendarDB(t)
	res := mustQuery(t, db, "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", 1, 2)
	if len(res.Rows) != 1 {
		t.Fatalf("attendance lookup: %v", res)
	}
	res = mustQuery(t, db, "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", 2, 2)
	if len(res.Rows) != 0 {
		t.Fatalf("absent attendance: %v", res)
	}
}

func TestInnerJoin(t *testing.T) {
	db := calendarDB(t)
	res := mustQuery(t, db,
		"SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 1 ORDER BY e.Title")
	if len(res.Rows) != 2 || res.Rows[0][0].Text() != "retro" || res.Rows[1][0].Text() != "standup" {
		t.Fatalf("join result: %v", res)
	}
}

func TestLeftJoin(t *testing.T) {
	db := calendarDB(t)
	// Event 3 has attendee 3 only; left join users to attendance.
	res := mustQuery(t, db,
		"SELECT u.Name, a.EId FROM Users u LEFT JOIN Attendance a ON u.UId = a.UId AND a.EId = 1 ORDER BY u.Name")
	if len(res.Rows) != 3 {
		t.Fatalf("left join rows: %v", res)
	}
	// carol has no EId=1 attendance -> NULL.
	if !res.Rows[2][1].IsNull() {
		t.Fatalf("carol should have NULL EId: %v", res.Rows[2])
	}
}

func TestThreeWayJoinAndQualifiedStar(t *testing.T) {
	db := calendarDB(t)
	res := mustQuery(t, db,
		"SELECT u.* FROM Users u JOIN Attendance a ON u.UId = a.UId JOIN Events e ON a.EId = e.EId WHERE e.Title = 'standup' ORDER BY u.UId")
	if len(res.Rows) != 2 || res.Rows[0][1].Text() != "alice" || res.Rows[1][1].Text() != "bob" {
		t.Fatalf("3-way join: %v", res)
	}
}

func TestCrossProductFrom(t *testing.T) {
	db := calendarDB(t)
	res := mustQuery(t, db, "SELECT u.UId, e.EId FROM Users u, Events e")
	if len(res.Rows) != 9 {
		t.Fatalf("cross product: %d rows", len(res.Rows))
	}
}

func TestAggregates(t *testing.T) {
	db := calendarDB(t)
	res := mustQuery(t, db, "SELECT COUNT(*) FROM Attendance")
	if res.Rows[0][0].Int() != 4 {
		t.Fatalf("count: %v", res)
	}
	res = mustQuery(t, db,
		"SELECT UId, COUNT(*) AS n FROM Attendance GROUP BY UId ORDER BY n DESC, UId")
	if len(res.Rows) != 3 || res.Rows[0][0].Int() != 1 || res.Rows[0][1].Int() != 2 {
		t.Fatalf("group by: %v", res)
	}
	res = mustQuery(t, db,
		"SELECT UId FROM Attendance GROUP BY UId HAVING COUNT(*) > 1")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("having: %v", res)
	}
}

func TestAggregateFunctions(t *testing.T) {
	db := calendarDB(t)
	res := mustQuery(t, db, "SELECT MIN(UId), MAX(UId), SUM(UId), AVG(UId), COUNT(DISTINCT UId) FROM Attendance")
	r := res.Rows[0]
	if r[0].Int() != 1 || r[1].Int() != 3 || r[2].Int() != 7 {
		t.Fatalf("min/max/sum: %v", r)
	}
	if r[3].Real() != 1.75 {
		t.Fatalf("avg: %v", r[3])
	}
	if r[4].Int() != 3 {
		t.Fatalf("count distinct: %v", r[4])
	}
}

func TestEmptyAggregate(t *testing.T) {
	db := calendarDB(t)
	res := mustQuery(t, db, "SELECT COUNT(*), SUM(UId) FROM Attendance WHERE UId = 99")
	if res.Rows[0][0].Int() != 0 || !res.Rows[0][1].IsNull() {
		t.Fatalf("empty aggregate: %v", res.Rows[0])
	}
}

func TestDistinct(t *testing.T) {
	db := calendarDB(t)
	res := mustQuery(t, db, "SELECT DISTINCT UId FROM Attendance ORDER BY UId")
	if len(res.Rows) != 3 {
		t.Fatalf("distinct: %v", res)
	}
}

func TestOrderLimitOffset(t *testing.T) {
	db := calendarDB(t)
	res := mustQuery(t, db, "SELECT UId FROM Users ORDER BY UId DESC LIMIT 2 OFFSET 1")
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 2 || res.Rows[1][0].Int() != 1 {
		t.Fatalf("order/limit/offset: %v", res)
	}
	// ORDER BY positional.
	res = mustQuery(t, db, "SELECT UId, Name FROM Users ORDER BY 2")
	if res.Rows[0][1].Text() != "alice" {
		t.Fatalf("positional order: %v", res)
	}
}

func TestInListAndSubquery(t *testing.T) {
	db := calendarDB(t)
	res := mustQuery(t, db, "SELECT Name FROM Users WHERE UId IN (1, 3) ORDER BY Name")
	if len(res.Rows) != 2 || res.Rows[0][0].Text() != "alice" {
		t.Fatalf("in list: %v", res)
	}
	res = mustQuery(t, db,
		"SELECT Title FROM Events WHERE EId IN (SELECT EId FROM Attendance WHERE UId = 1) ORDER BY Title")
	if len(res.Rows) != 2 || res.Rows[1][0].Text() != "standup" {
		t.Fatalf("in subquery: %v", res)
	}
	res = mustQuery(t, db, "SELECT Name FROM Users WHERE UId NOT IN (1, 2)")
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "carol" {
		t.Fatalf("not in: %v", res)
	}
}

func TestCorrelatedExists(t *testing.T) {
	db := calendarDB(t)
	res := mustQuery(t, db,
		"SELECT Title FROM Events e WHERE EXISTS (SELECT 1 FROM Attendance a WHERE a.EId = e.EId AND a.UId = 2)")
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "standup" {
		t.Fatalf("correlated exists: %v", res)
	}
	res = mustQuery(t, db,
		"SELECT Title FROM Events e WHERE NOT EXISTS (SELECT 1 FROM Attendance a WHERE a.EId = e.EId)")
	if len(res.Rows) != 0 {
		t.Fatalf("all events have attendees: %v", res)
	}
}

func TestScalarSubquery(t *testing.T) {
	db := calendarDB(t)
	res := mustQuery(t, db, "SELECT (SELECT COUNT(*) FROM Attendance) FROM Users WHERE UId = 1")
	if res.Rows[0][0].Int() != 4 {
		t.Fatalf("scalar subquery: %v", res)
	}
}

func TestNullHandling(t *testing.T) {
	db := calendarDB(t)
	res := mustQuery(t, db, "SELECT Title FROM Events WHERE Notes IS NULL ORDER BY Title")
	if len(res.Rows) != 2 {
		t.Fatalf("is null: %v", res)
	}
	res = mustQuery(t, db, "SELECT Title FROM Events WHERE Notes = NULL")
	if len(res.Rows) != 0 {
		t.Fatalf("= NULL must match nothing: %v", res)
	}
	res = mustQuery(t, db, "SELECT Title FROM Events WHERE Notes IS NOT NULL")
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "retro" {
		t.Fatalf("is not null: %v", res)
	}
}

func TestLikeBetweenArith(t *testing.T) {
	db := calendarDB(t)
	res := mustQuery(t, db, "SELECT Title FROM Events WHERE Title LIKE 's%'")
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "standup" {
		t.Fatalf("like: %v", res)
	}
	res = mustQuery(t, db, "SELECT UId FROM Users WHERE UId BETWEEN 2 AND 3 ORDER BY UId")
	if len(res.Rows) != 2 {
		t.Fatalf("between: %v", res)
	}
	res = mustQuery(t, db, "SELECT UId * 10 + 5 FROM Users WHERE UId = 2")
	if res.Rows[0][0].Int() != 25 {
		t.Fatalf("arith: %v", res)
	}
}

func TestScalarFunctions(t *testing.T) {
	db := calendarDB(t)
	res := mustQuery(t, db, "SELECT UPPER(Name), LENGTH(Name), COALESCE(NULL, Name) FROM Users WHERE UId = 1")
	r := res.Rows[0]
	if r[0].Text() != "ALICE" || r[1].Int() != 5 || r[2].Text() != "alice" {
		t.Fatalf("functions: %v", r)
	}
}

func TestInsertConstraints(t *testing.T) {
	db := calendarDB(t)
	// PK violation.
	if _, _, err := db.Exec("INSERT INTO Users (UId, Name) VALUES (1, 'dup')", sqlparser.NoArgs); err == nil {
		t.Error("PK violation not caught")
	}
	// NOT NULL violation.
	if _, _, err := db.Exec("INSERT INTO Users (UId, Name) VALUES (9, NULL)", sqlparser.NoArgs); err == nil {
		t.Error("NOT NULL violation not caught")
	}
	// FK violation.
	if _, _, err := db.Exec("INSERT INTO Attendance (UId, EId) VALUES (1, 99)", sqlparser.NoArgs); err == nil {
		t.Error("FK violation not caught")
	}
	// Valid insert.
	if _, n, err := db.Exec("INSERT INTO Attendance (UId, EId) VALUES (2, 2)", sqlparser.NoArgs); err != nil || n != 1 {
		t.Errorf("valid insert: n=%d err=%v", n, err)
	}
}

func TestUniqueConstraint(t *testing.T) {
	s, err := schema.NewBuilder().
		Table("T").NotNullCol("id", sqlvalue.Int).NotNullCol("email", sqlvalue.Text).
		PK("id").Unique("email").Done().Build()
	if err != nil {
		t.Fatal(err)
	}
	db := New(s)
	db.MustExec("INSERT INTO T (id, email) VALUES (1, 'a@x')")
	if _, _, err := db.Exec("INSERT INTO T (id, email) VALUES (2, 'a@x')", sqlparser.NoArgs); err == nil {
		t.Error("unique violation not caught")
	}
}

func TestUpdate(t *testing.T) {
	db := calendarDB(t)
	_, n, err := db.Exec("UPDATE Events SET Title = 'sync' WHERE EId = 1", sqlparser.NoArgs)
	if err != nil || n != 1 {
		t.Fatalf("update: n=%d err=%v", n, err)
	}
	res := mustQuery(t, db, "SELECT Title FROM Events WHERE EId = 1")
	if res.Rows[0][0].Text() != "sync" {
		t.Fatalf("after update: %v", res)
	}
	// Update violating NOT NULL.
	if _, _, err := db.Exec("UPDATE Users SET Name = NULL WHERE UId = 1", sqlparser.NoArgs); err == nil {
		t.Error("update NOT NULL violation not caught")
	}
	// Update changing PK to a duplicate.
	if _, _, err := db.Exec("UPDATE Users SET UId = 2 WHERE UId = 1", sqlparser.NoArgs); err == nil {
		t.Error("update PK violation not caught")
	}
}

func TestDelete(t *testing.T) {
	db := calendarDB(t)
	_, n, err := db.Exec("DELETE FROM Attendance WHERE UId = 1", sqlparser.NoArgs)
	if err != nil || n != 2 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}
	if db.RowCount("Attendance") != 2 {
		t.Fatalf("row count after delete: %d", db.RowCount("Attendance"))
	}
	// Index still consistent: point lookup works.
	res := mustQuery(t, db, "SELECT 1 FROM Attendance WHERE UId = 3 AND EId = 3")
	if len(res.Rows) != 1 {
		t.Fatalf("post-delete lookup: %v", res)
	}
}

func TestCloneIndependence(t *testing.T) {
	db := calendarDB(t)
	cp := db.Clone()
	cp.MustExec("DELETE FROM Attendance WHERE UId = 1")
	if db.RowCount("Attendance") != 4 {
		t.Error("Clone shares storage with original")
	}
	if cp.RowCount("Attendance") != 2 {
		t.Error("Clone delete failed")
	}
}

func TestSetCell(t *testing.T) {
	db := calendarDB(t)
	if err := db.SetCell("Events", 1, "Notes", "changed"); err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, db, "SELECT Notes FROM Events WHERE EId = 2")
	if res.Rows[0][0].Text() != "changed" {
		t.Fatalf("set cell: %v", res)
	}
	if err := db.SetCell("Events", 99, "Notes", "x"); err == nil {
		t.Error("out-of-range row should fail")
	}
	if err := db.SetCell("Events", 0, "Nope", "x"); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	db := calendarDB(t)
	res := mustQuery(t, db, "SELECT 1 + 2, 'x'")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 3 || res.Rows[0][1].Text() != "x" {
		t.Fatalf("select w/o from: %v", res)
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := calendarDB(t)
	_, err := db.QuerySQL("SELECT UId FROM Users u, Attendance a", sqlparser.NoArgs)
	if err == nil {
		t.Error("ambiguous column should error")
	}
}

func TestUnknownColumnAndTable(t *testing.T) {
	db := calendarDB(t)
	if _, err := db.QuerySQL("SELECT nope FROM Users", sqlparser.NoArgs); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := db.QuerySQL("SELECT 1 FROM Nope", sqlparser.NoArgs); err == nil {
		t.Error("unknown table should error")
	}
}

func TestUnboundParam(t *testing.T) {
	db := calendarDB(t)
	if _, err := db.QuerySQL("SELECT 1 FROM Users WHERE UId = ?", sqlparser.NoArgs); err == nil {
		t.Error("unbound param should error")
	}
}

func TestExample21Trace(t *testing.T) {
	// The paper's Example 2.1 queries run verbatim.
	db := calendarDB(t)
	q1 := mustQuery(t, db, "SELECT 1 FROM Attendance WHERE UId=1 AND EId=2")
	if len(q1.Rows) != 1 {
		t.Fatalf("Q1 should return one row: %v", q1)
	}
	q2 := mustQuery(t, db, "SELECT * FROM Events WHERE EId=2")
	if len(q2.Rows) != 1 || q2.Rows[0][1].Text() != "retro" {
		t.Fatalf("Q2: %v", q2)
	}
}

func TestPointLookupFastPath(t *testing.T) {
	db := calendarDB(t)
	// Full-PK equality on a composite key.
	res := mustQuery(t, db, "SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2")
	if len(res.Rows) != 1 {
		t.Fatalf("point lookup hit: %v", res)
	}
	res = mustQuery(t, db, "SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 99")
	if len(res.Rows) != 0 {
		t.Fatalf("point lookup miss: %v", res)
	}
	// Extra conjuncts still apply after the probe.
	res = mustQuery(t, db, "SELECT Title FROM Events WHERE EId = 2 AND Title = 'nope'")
	if len(res.Rows) != 0 {
		t.Fatalf("residual predicate ignored: %v", res)
	}
	// Literal-on-the-left form.
	res = mustQuery(t, db, "SELECT Title FROM Events WHERE 2 = EId")
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "retro" {
		t.Fatalf("reversed equality: %v", res)
	}
	// Disjunctions must fall back to the scan (semantics preserved).
	res = mustQuery(t, db, "SELECT Title FROM Events WHERE EId = 2 OR EId = 3 ORDER BY EId")
	if len(res.Rows) != 2 {
		t.Fatalf("OR fallback: %v", res)
	}
}

func BenchmarkPointLookupVsScan(b *testing.B) {
	db := calendarDB(b)
	for i := 10; i < 5000; i++ {
		db.MustExec("INSERT INTO Events (EId, Title, Notes) VALUES (?, 'x', NULL)", i)
	}
	sel := sqlparser.MustParseSelect("SELECT Title FROM Events WHERE EId = 4321")
	bound, _ := sqlparser.Bind(sel, sqlparser.NoArgs)
	b.Run("point-lookup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(bound.(*sqlparser.SelectStmt)); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The range form defeats the equality fast path, forcing a scan.
	scan := sqlparser.MustParseSelect("SELECT Title FROM Events WHERE EId >= 4321 AND EId <= 4321")
	sb, _ := sqlparser.Bind(scan, sqlparser.NoArgs)
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(sb.(*sqlparser.SelectStmt)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
