// Package sqlvalue implements the typed value system shared by the SQL
// parser, the relational engine, and the compliance checker.
//
// Values follow SQL semantics: five storage types (NULL, INTEGER, REAL,
// TEXT, BOOLEAN), three-valued logic for predicates, and numeric
// coercion between INTEGER and REAL on comparison and arithmetic.
package sqlvalue

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type identifies the storage class of a Value.
type Type uint8

// Storage classes.
const (
	Null Type = iota
	Int
	Real
	Text
	Bool
)

// String returns the SQL name of the type.
func (t Type) String() string {
	switch t {
	case Null:
		return "NULL"
	case Int:
		return "INTEGER"
	case Real:
		return "REAL"
	case Text:
		return "TEXT"
	case Bool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// ParseType maps a SQL type name to a Type. It accepts the common
// aliases found in CREATE TABLE statements.
func ParseType(name string) (Type, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT":
		return Int, nil
	case "REAL", "FLOAT", "DOUBLE", "NUMERIC", "DECIMAL":
		return Real, nil
	case "TEXT", "VARCHAR", "CHAR", "STRING", "CLOB":
		return Text, nil
	case "BOOL", "BOOLEAN":
		return Bool, nil
	}
	return Null, fmt.Errorf("sqlvalue: unknown type name %q", name)
}

// Value is an immutable SQL value. The zero Value is NULL.
type Value struct {
	typ Type
	i   int64   // Int, Bool (0/1)
	f   float64 // Real
	s   string  // Text
}

// NewInt returns an INTEGER value.
func NewInt(v int64) Value { return Value{typ: Int, i: v} }

// NewReal returns a REAL value.
func NewReal(v float64) Value { return Value{typ: Real, f: v} }

// NewText returns a TEXT value.
func NewText(v string) Value { return Value{typ: Text, s: v} }

// NewBool returns a BOOLEAN value.
func NewBool(v bool) Value {
	if v {
		return Value{typ: Bool, i: 1}
	}
	return Value{typ: Bool}
}

// NewNull returns the NULL value.
func NewNull() Value { return Value{} }

// FromAny converts a native Go value to a Value. Supported inputs are
// nil, bool, the signed integer types, float32/float64, and string.
func FromAny(v any) (Value, error) {
	switch x := v.(type) {
	case nil:
		return NewNull(), nil
	case bool:
		return NewBool(x), nil
	case int:
		return NewInt(int64(x)), nil
	case int8:
		return NewInt(int64(x)), nil
	case int16:
		return NewInt(int64(x)), nil
	case int32:
		return NewInt(int64(x)), nil
	case int64:
		return NewInt(x), nil
	case uint:
		return fromUint64(uint64(x)), nil
	case uint8:
		return NewInt(int64(x)), nil
	case uint16:
		return NewInt(int64(x)), nil
	case uint32:
		return NewInt(int64(x)), nil
	case uint64:
		return fromUint64(x), nil
	case float32:
		return NewReal(float64(x)), nil
	case float64:
		return NewReal(x), nil
	case string:
		return NewText(x), nil
	case Value:
		return x, nil
	}
	return Value{}, fmt.Errorf("sqlvalue: unsupported Go type %T", v)
}

// fromUint64 maps an unsigned value into the INTEGER class when it
// fits; beyond int64 range it degrades to REAL (the value system has
// no unsigned class, and the pre-existing JSON path already treated
// such magnitudes as float64).
func fromUint64(x uint64) Value {
	if x <= math.MaxInt64 {
		return NewInt(int64(x))
	}
	return NewReal(float64(x))
}

// MustFromAny is FromAny, panicking on error. It is intended for
// literals in tests and seed data.
func MustFromAny(v any) Value {
	val, err := FromAny(v)
	if err != nil {
		panic(err)
	}
	return val
}

// Type reports the storage class.
func (v Value) Type() Type { return v.typ }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.typ == Null }

// Int returns the INTEGER payload; it is only meaningful when Type()==Int.
func (v Value) Int() int64 { return v.i }

// Real returns the REAL payload; for an INTEGER value it returns the
// integer converted to float64.
func (v Value) Real() float64 {
	if v.typ == Int {
		return float64(v.i)
	}
	return v.f
}

// Text returns the TEXT payload; it is only meaningful when Type()==Text.
func (v Value) Text() string { return v.s }

// Bool returns the BOOLEAN payload; it is only meaningful when Type()==Bool.
func (v Value) Bool() bool { return v.i != 0 }

// Any returns the value as a native Go value (nil, int64, float64,
// string, or bool).
func (v Value) Any() any {
	switch v.typ {
	case Null:
		return nil
	case Int:
		return v.i
	case Real:
		return v.f
	case Text:
		return v.s
	case Bool:
		return v.i != 0
	}
	return nil
}

// String renders the value as a SQL literal.
func (v Value) String() string {
	switch v.typ {
	case Null:
		return "NULL"
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Real:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case Text:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case Bool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	}
	return "?"
}

// Key returns a string usable as a map key such that Key(a)==Key(b)
// iff Equal(a,b) is definitely true (NULLs get a distinguished key and
// compare unequal to everything including themselves under SQL =, but
// Key treats all NULLs as identical so rows can be grouped).
func (v Value) Key() string {
	switch v.typ {
	case Null:
		return "n"
	case Int:
		return "i" + strconv.FormatInt(v.i, 10)
	case Real:
		// Normalize integral reals so 2.0 groups with INTEGER 2 in
		// numeric contexts only when compared via Compare; for keys we
		// keep the class distinct unless integral.
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) && v.f >= math.MinInt64 && v.f <= math.MaxInt64 {
			return "i" + strconv.FormatInt(int64(v.f), 10)
		}
		return "f" + strconv.FormatFloat(v.f, 'b', -1, 64)
	case Text:
		return "t" + v.s
	case Bool:
		return "b" + strconv.FormatInt(v.i, 10)
	}
	return "?"
}

// AppendKey appends exactly what Key returns to buf without
// allocating. It exists for hot paths that build composite cache keys
// into reused buffers (the checker's warm decide path).
func (v Value) AppendKey(buf []byte) []byte {
	switch v.typ {
	case Null:
		return append(buf, 'n')
	case Int:
		buf = append(buf, 'i')
		return strconv.AppendInt(buf, v.i, 10)
	case Real:
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) && v.f >= math.MinInt64 && v.f <= math.MaxInt64 {
			buf = append(buf, 'i')
			return strconv.AppendInt(buf, int64(v.f), 10)
		}
		buf = append(buf, 'f')
		return strconv.AppendFloat(buf, v.f, 'b', -1, 64)
	case Text:
		buf = append(buf, 't')
		return append(buf, v.s...)
	case Bool:
		buf = append(buf, 'b')
		return strconv.AppendInt(buf, v.i, 10)
	}
	return append(buf, '?')
}

// Tristate is the result of a SQL predicate: TRUE, FALSE, or UNKNOWN.
type Tristate uint8

// Three-valued logic constants.
const (
	False Tristate = iota
	True
	Unknown
)

// String returns the SQL spelling of the tristate.
func (t Tristate) String() string {
	switch t {
	case False:
		return "FALSE"
	case True:
		return "TRUE"
	}
	return "UNKNOWN"
}

// TristateOf converts a Go bool to a Tristate.
func TristateOf(b bool) Tristate {
	if b {
		return True
	}
	return False
}

// And implements SQL three-valued AND.
func (t Tristate) And(o Tristate) Tristate {
	if t == False || o == False {
		return False
	}
	if t == True && o == True {
		return True
	}
	return Unknown
}

// Or implements SQL three-valued OR.
func (t Tristate) Or(o Tristate) Tristate {
	if t == True || o == True {
		return True
	}
	if t == False && o == False {
		return False
	}
	return Unknown
}

// Not implements SQL three-valued NOT.
func (t Tristate) Not() Tristate {
	switch t {
	case True:
		return False
	case False:
		return True
	}
	return Unknown
}

// comparable reports whether the two storage classes can be ordered
// against each other.
func comparable2(a, b Type) bool {
	if a == b {
		return true
	}
	num := func(t Type) bool { return t == Int || t == Real }
	return num(a) && num(b)
}

// Compare orders a before b (-1), equal (0), or after (1). The second
// result is False when the comparison is undefined: either operand is
// NULL (SQL UNKNOWN) or the storage classes are incomparable.
func Compare(a, b Value) (int, bool) {
	if a.typ == Null || b.typ == Null {
		return 0, false
	}
	if !comparable2(a.typ, b.typ) {
		return 0, false
	}
	switch {
	case a.typ == Int && b.typ == Int:
		switch {
		case a.i < b.i:
			return -1, true
		case a.i > b.i:
			return 1, true
		}
		return 0, true
	case a.typ == Text:
		return strings.Compare(a.s, b.s), true
	case a.typ == Bool:
		switch {
		case a.i < b.i:
			return -1, true
		case a.i > b.i:
			return 1, true
		}
		return 0, true
	default: // numeric with at least one Real
		af, bf := a.Real(), b.Real()
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		}
		return 0, true
	}
}

// Equal implements SQL '=' with three-valued semantics.
func Equal(a, b Value) Tristate {
	c, ok := Compare(a, b)
	if !ok {
		if a.typ == Null || b.typ == Null {
			return Unknown
		}
		return False // incomparable classes are simply unequal
	}
	return TristateOf(c == 0)
}

// Identical reports Go-level equality: same class and same payload.
// Unlike Equal, NULL is identical to NULL. Used for grouping, DISTINCT,
// and index keys.
func Identical(a, b Value) bool {
	if a.typ != b.typ {
		// Allow INTEGER/REAL grouping of equal numerics.
		if comparable2(a.typ, b.typ) {
			c, ok := Compare(a, b)
			return ok && c == 0
		}
		return false
	}
	switch a.typ {
	case Null:
		return true
	case Real:
		return a.f == b.f
	case Text:
		return a.s == b.s
	default:
		return a.i == b.i
	}
}

// Less is a total order over all values (NULL first, then BOOLEAN,
// numeric, TEXT) used for ORDER BY and deterministic output. It is a
// total order: incomparable classes are ordered by class rank.
func Less(a, b Value) bool {
	ra, rb := classRank(a.typ), classRank(b.typ)
	if ra != rb {
		return ra < rb
	}
	c, ok := Compare(a, b)
	if !ok {
		return false // both NULL
	}
	return c < 0
}

func classRank(t Type) int {
	switch t {
	case Null:
		return 0
	case Bool:
		return 1
	case Int, Real:
		return 2
	case Text:
		return 3
	}
	return 4
}

// Arithmetic errors.
var errArith = fmt.Errorf("sqlvalue: invalid operands for arithmetic")

// Add returns a+b with SQL NULL propagation.
func Add(a, b Value) (Value, error) { return arith(a, b, '+') }

// Sub returns a-b with SQL NULL propagation.
func Sub(a, b Value) (Value, error) { return arith(a, b, '-') }

// Mul returns a*b with SQL NULL propagation.
func Mul(a, b Value) (Value, error) { return arith(a, b, '*') }

// Div returns a/b with SQL NULL propagation. Division by zero yields
// NULL, matching SQLite's permissive behaviour.
func Div(a, b Value) (Value, error) { return arith(a, b, '/') }

// Mod returns a%b for integers with SQL NULL propagation.
func Mod(a, b Value) (Value, error) { return arith(a, b, '%') }

func arith(a, b Value, op byte) (Value, error) {
	if a.typ == Null || b.typ == Null {
		return NewNull(), nil
	}
	num := func(t Type) bool { return t == Int || t == Real }
	if !num(a.typ) || !num(b.typ) {
		return Value{}, fmt.Errorf("%w: %s %c %s", errArith, a.typ, op, b.typ)
	}
	if a.typ == Int && b.typ == Int {
		switch op {
		case '+':
			return NewInt(a.i + b.i), nil
		case '-':
			return NewInt(a.i - b.i), nil
		case '*':
			return NewInt(a.i * b.i), nil
		case '/':
			if b.i == 0 {
				return NewNull(), nil
			}
			return NewInt(a.i / b.i), nil
		case '%':
			if b.i == 0 {
				return NewNull(), nil
			}
			return NewInt(a.i % b.i), nil
		}
	}
	af, bf := a.Real(), b.Real()
	switch op {
	case '+':
		return NewReal(af + bf), nil
	case '-':
		return NewReal(af - bf), nil
	case '*':
		return NewReal(af * bf), nil
	case '/':
		if bf == 0 {
			return NewNull(), nil
		}
		return NewReal(af / bf), nil
	case '%':
		if bf == 0 {
			return NewNull(), nil
		}
		return NewReal(math.Mod(af, bf)), nil
	}
	return Value{}, errArith
}

// Like implements the SQL LIKE operator with % and _ wildcards.
// Matching is case-sensitive, as in PostgreSQL.
func Like(v, pattern Value) Tristate {
	if v.typ == Null || pattern.typ == Null {
		return Unknown
	}
	if v.typ != Text || pattern.typ != Text {
		return False
	}
	return TristateOf(likeMatch(v.s, pattern.s))
}

func likeMatch(s, p string) bool {
	// Iterative matching with backtracking on '%'.
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			match = si
			pi++
		case star != -1:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// CoerceTo converts v to type t if a lossless-enough conversion exists
// (the conversions a forgiving SQL engine performs on INSERT):
// NULL passes through; Int<->Real; numeric strings parse; bool to int.
func CoerceTo(v Value, t Type) (Value, error) {
	if v.typ == Null || v.typ == t {
		return v, nil
	}
	switch t {
	case Int:
		switch v.typ {
		case Real:
			if v.f == math.Trunc(v.f) {
				return NewInt(int64(v.f)), nil
			}
		case Bool:
			return NewInt(v.i), nil
		case Text:
			if n, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64); err == nil {
				return NewInt(n), nil
			}
		}
	case Real:
		switch v.typ {
		case Int:
			return NewReal(float64(v.i)), nil
		case Text:
			if f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64); err == nil {
				return NewReal(f), nil
			}
		}
	case Text:
		return NewText(v.String()), nil
	case Bool:
		if v.typ == Int {
			return NewBool(v.i != 0), nil
		}
	}
	return Value{}, fmt.Errorf("sqlvalue: cannot coerce %s to %s", v.typ, t)
}
