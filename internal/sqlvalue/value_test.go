package sqlvalue

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if v := NewInt(42); v.Type() != Int || v.Int() != 42 {
		t.Fatalf("NewInt: got %v", v)
	}
	if v := NewReal(2.5); v.Type() != Real || v.Real() != 2.5 {
		t.Fatalf("NewReal: got %v", v)
	}
	if v := NewText("hi"); v.Type() != Text || v.Text() != "hi" {
		t.Fatalf("NewText: got %v", v)
	}
	if v := NewBool(true); v.Type() != Bool || !v.Bool() {
		t.Fatalf("NewBool: got %v", v)
	}
	if v := NewNull(); !v.IsNull() {
		t.Fatalf("NewNull: got %v", v)
	}
	var zero Value
	if !zero.IsNull() {
		t.Fatal("zero Value must be NULL")
	}
}

func TestFromAny(t *testing.T) {
	cases := []struct {
		in   any
		want Value
	}{
		{nil, NewNull()},
		{7, NewInt(7)},
		{int8(7), NewInt(7)},
		{int16(7), NewInt(7)},
		{int32(7), NewInt(7)},
		{int64(7), NewInt(7)},
		{3.5, NewReal(3.5)},
		{float32(2), NewReal(2)},
		{"x", NewText("x")},
		{true, NewBool(true)},
		{NewInt(9), NewInt(9)},
	}
	for _, c := range cases {
		got, err := FromAny(c.in)
		if err != nil {
			t.Fatalf("FromAny(%v): %v", c.in, err)
		}
		if !Identical(got, c.want) {
			t.Errorf("FromAny(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := FromAny(struct{}{}); err == nil {
		t.Error("FromAny(struct{}{}) should fail")
	}
}

func TestParseType(t *testing.T) {
	for name, want := range map[string]Type{
		"int": Int, "INTEGER": Int, "BigInt": Int,
		"real": Real, "DOUBLE": Real,
		"text": Text, "VARCHAR": Text,
		"boolean": Bool,
	} {
		got, err := ParseType(name)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v,%v want %v", name, got, err, want)
		}
	}
	if _, err := ParseType("BLOB9"); err == nil {
		t.Error("ParseType should reject unknown names")
	}
}

func TestStringLiterals(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewNull(), "NULL"},
		{NewInt(-3), "-3"},
		{NewReal(1.5), "1.5"},
		{NewText("a'b"), "'a''b'"},
		{NewBool(true), "TRUE"},
		{NewBool(false), "FALSE"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{NewInt(1), NewInt(2), -1, true},
		{NewInt(2), NewInt(2), 0, true},
		{NewInt(3), NewInt(2), 1, true},
		{NewInt(2), NewReal(2.0), 0, true},
		{NewReal(1.5), NewInt(2), -1, true},
		{NewText("a"), NewText("b"), -1, true},
		{NewBool(false), NewBool(true), -1, true},
		{NewNull(), NewInt(1), 0, false},
		{NewInt(1), NewNull(), 0, false},
		{NewText("1"), NewInt(1), 0, false},
	}
	for _, c := range cases {
		cmp, ok := Compare(c.a, c.b)
		if ok != c.ok || (ok && cmp != c.cmp) {
			t.Errorf("Compare(%v,%v) = %d,%v want %d,%v", c.a, c.b, cmp, ok, c.cmp, c.ok)
		}
	}
}

func TestEqualTristate(t *testing.T) {
	if Equal(NewNull(), NewInt(1)) != Unknown {
		t.Error("NULL = 1 should be UNKNOWN")
	}
	if Equal(NewInt(1), NewInt(1)) != True {
		t.Error("1 = 1 should be TRUE")
	}
	if Equal(NewInt(1), NewInt(2)) != False {
		t.Error("1 = 2 should be FALSE")
	}
	if Equal(NewText("1"), NewInt(1)) != False {
		t.Error("'1' = 1 should be FALSE (distinct classes)")
	}
}

func TestTristateLogic(t *testing.T) {
	vals := []Tristate{False, True, Unknown}
	for _, a := range vals {
		for _, b := range vals {
			and := a.And(b)
			or := a.Or(b)
			// Kleene logic truth tables.
			wantAnd := Unknown
			switch {
			case a == False || b == False:
				wantAnd = False
			case a == True && b == True:
				wantAnd = True
			}
			wantOr := Unknown
			switch {
			case a == True || b == True:
				wantOr = True
			case a == False && b == False:
				wantOr = False
			}
			if and != wantAnd {
				t.Errorf("%v AND %v = %v, want %v", a, b, and, wantAnd)
			}
			if or != wantOr {
				t.Errorf("%v OR %v = %v, want %v", a, b, or, wantOr)
			}
		}
	}
	if Unknown.Not() != Unknown || True.Not() != False || False.Not() != True {
		t.Error("NOT truth table wrong")
	}
}

func TestDeMorganProperty(t *testing.T) {
	// NOT(a AND b) == (NOT a) OR (NOT b) over all tristates.
	vals := []Tristate{False, True, Unknown}
	for _, a := range vals {
		for _, b := range vals {
			if a.And(b).Not() != a.Not().Or(b.Not()) {
				t.Errorf("De Morgan fails for %v,%v", a, b)
			}
		}
	}
}

func TestArithmetic(t *testing.T) {
	mustV := func(v Value, err error) Value {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if got := mustV(Add(NewInt(2), NewInt(3))); !Identical(got, NewInt(5)) {
		t.Errorf("2+3 = %v", got)
	}
	if got := mustV(Sub(NewInt(2), NewInt(3))); !Identical(got, NewInt(-1)) {
		t.Errorf("2-3 = %v", got)
	}
	if got := mustV(Mul(NewInt(2), NewReal(1.5))); !Identical(got, NewReal(3)) {
		t.Errorf("2*1.5 = %v", got)
	}
	if got := mustV(Div(NewInt(7), NewInt(2))); !Identical(got, NewInt(3)) {
		t.Errorf("7/2 = %v", got)
	}
	if got := mustV(Div(NewInt(7), NewInt(0))); !got.IsNull() {
		t.Errorf("7/0 = %v, want NULL", got)
	}
	if got := mustV(Mod(NewInt(7), NewInt(4))); !Identical(got, NewInt(3)) {
		t.Errorf("7%%4 = %v", got)
	}
	if got := mustV(Add(NewNull(), NewInt(1))); !got.IsNull() {
		t.Errorf("NULL+1 = %v, want NULL", got)
	}
	if _, err := Add(NewText("a"), NewInt(1)); err == nil {
		t.Error("'a'+1 should error")
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hello", "h_lo", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "a%c", true},
		{"abc", "a%b", false},
		{"aXbXc", "a%b%c", true},
	}
	for _, c := range cases {
		got := Like(NewText(c.s), NewText(c.p))
		if got != TristateOf(c.want) {
			t.Errorf("LIKE(%q,%q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
	if Like(NewNull(), NewText("%")) != Unknown {
		t.Error("NULL LIKE should be UNKNOWN")
	}
}

func TestCoerceTo(t *testing.T) {
	got, err := CoerceTo(NewText("42"), Int)
	if err != nil || !Identical(got, NewInt(42)) {
		t.Errorf("coerce '42' to INT = %v,%v", got, err)
	}
	got, err = CoerceTo(NewReal(3.0), Int)
	if err != nil || !Identical(got, NewInt(3)) {
		t.Errorf("coerce 3.0 to INT = %v,%v", got, err)
	}
	if _, err := CoerceTo(NewReal(3.5), Int); err == nil {
		t.Error("coerce 3.5 to INT should fail")
	}
	got, err = CoerceTo(NewInt(3), Real)
	if err != nil || !Identical(got, NewReal(3)) {
		t.Errorf("coerce 3 to REAL = %v,%v", got, err)
	}
	if v, err := CoerceTo(NewNull(), Int); err != nil || !v.IsNull() {
		t.Error("NULL coerces to anything")
	}
}

func TestKeyGroupsEqualNumerics(t *testing.T) {
	if NewInt(2).Key() != NewReal(2.0).Key() {
		t.Error("2 and 2.0 should share a key")
	}
	if NewInt(2).Key() == NewText("2").Key() {
		t.Error("2 and '2' must not share a key")
	}
	if NewNull().Key() != NewNull().Key() {
		t.Error("NULL keys must match for grouping")
	}
}

// Property: Compare is antisymmetric and consistent with Equal on
// random integer pairs.
func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		ca, oka := Compare(NewInt(a), NewInt(b))
		cb, okb := Compare(NewInt(b), NewInt(a))
		if !oka || !okb {
			return false
		}
		return ca == -cb && (ca == 0) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Less is a strict weak order over random mixed values.
func TestLessStrictOrderProperty(t *testing.T) {
	gen := func(sel uint8, i int64, f float64, s string) Value {
		switch sel % 5 {
		case 0:
			return NewNull()
		case 1:
			return NewInt(i)
		case 2:
			if math.IsNaN(f) {
				f = 0
			}
			return NewReal(f)
		case 3:
			return NewText(s)
		default:
			return NewBool(i%2 == 0)
		}
	}
	f := func(s1, s2 uint8, i1, i2 int64, f1, f2 float64, t1, t2 string) bool {
		a, b := gen(s1, i1, f1, t1), gen(s2, i2, f2, t2)
		// Irreflexivity and asymmetry.
		if Less(a, a) || Less(b, b) {
			return false
		}
		if Less(a, b) && Less(b, a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: likeMatch with pattern == the string itself (no wildcards
// in input alphabet) always matches.
func TestLikeSelfMatchProperty(t *testing.T) {
	f := func(s string) bool {
		for _, r := range s {
			if r == '%' || r == '_' {
				return true // skip wildcard-bearing inputs
			}
		}
		return likeMatch(s, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// AppendKey must emit byte-for-byte what Key returns; the checker's
// warm path builds cache keys through it without allocating.
func TestAppendKeyMatchesKey(t *testing.T) {
	vals := []Value{
		NewNull(), NewInt(0), NewInt(-42), NewInt(1 << 60),
		NewReal(2.0), NewReal(3.25), NewReal(-1e300),
		NewText(""), NewText("alice"), NewBool(true), NewBool(false),
	}
	for _, v := range vals {
		if got := string(v.AppendKey(nil)); got != v.Key() {
			t.Errorf("AppendKey(%s) = %q, Key = %q", v, got, v.Key())
		}
	}
}

func TestAppendKeyMatchesKeyProperty(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool, pick uint8) bool {
		var v Value
		switch pick % 5 {
		case 0:
			v = NewNull()
		case 1:
			v = NewInt(i)
		case 2:
			v = NewReal(fl)
		case 3:
			v = NewText(s)
		case 4:
			v = NewBool(b)
		}
		return string(v.AppendKey(nil)) == v.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Unsigned Go values convert: into INTEGER when they fit, degrading
// to REAL past int64 range (the wire decoder produces uint64 for
// tokens above MaxInt64).
func TestFromAnyUnsigned(t *testing.T) {
	v := MustFromAny(uint64(7))
	if v.Type() != Int || v.Int() != 7 {
		t.Errorf("uint64(7) -> %v", v)
	}
	v = MustFromAny(uint(1 << 40))
	if v.Type() != Int || v.Int() != 1<<40 {
		t.Errorf("uint(1<<40) -> %v", v)
	}
	big := uint64(1<<63) + 10
	v = MustFromAny(big)
	if v.Type() != Real || v.Real() != float64(big) {
		t.Errorf("uint64 beyond int64 -> %v, want REAL %g", v, float64(big))
	}
}
