// Command acdiagnose explains why a query is blocked under a bundled
// model application's policy and prints the §5 patches: the
// counterexample, contained rewritings, and synthesized access checks.
//
// Usage:
//
//	acdiagnose -app calendar -uid 1 -sql "SELECT * FROM Events WHERE EId=2"
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	beyond "repro"
)

func main() {
	app := flag.String("app", "calendar", "fixture: calendar|hospital|employees|forum")
	uid := flag.Int64("uid", 1, "principal id (MyUId)")
	sql := flag.String("sql", "SELECT * FROM Events WHERE EId=2", "the query to diagnose")
	flag.Parse()

	f, err := beyond.FixtureByName(*app)
	if err != nil {
		log.Fatal(err)
	}
	chk := beyond.NewChecker(f.Policy())
	sess := f.Session(*uid)
	diag, err := beyond.DiagnoseBlocked(context.Background(), chk, sess, *sql, beyond.Args(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(diag)
}
