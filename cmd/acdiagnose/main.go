// Command acdiagnose explains why a query is blocked under a bundled
// model application's policy and prints the §5 patches: the
// counterexample, contained rewritings, and synthesized access checks.
//
// Usage:
//
//	acdiagnose -app calendar -uid 1 -sql "SELECT * FROM Events WHERE EId=2"
//
// -stats appends the checker's metrics snapshot (decision counters,
// pipeline stage timings, diagnose.micros) as JSON, so the cost of the
// diagnosis search itself is visible.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	beyond "repro"
	"repro/internal/buildinfo"
)

func main() {
	app := flag.String("app", "calendar", "fixture: calendar|hospital|employees|forum")
	uid := flag.Int64("uid", 1, "principal id (MyUId)")
	sql := flag.String("sql", "SELECT * FROM Events WHERE EId=2", "the query to diagnose")
	stats := flag.Bool("stats", false, "print the metrics snapshot (JSON) after the diagnosis")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("acdiagnose"))
		return
	}

	f, err := beyond.FixtureByName(*app)
	if err != nil {
		log.Fatal(err)
	}
	chk := beyond.NewChecker(f.Policy())
	sess := f.Session(*uid)
	diag, err := beyond.DiagnoseBlocked(context.Background(), chk, sess, *sql, beyond.Args(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(diag)
	if *stats {
		fmt.Println("\nmetrics:")
		if err := chk.Metrics().WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
