// Command acproxy starts the enforcement proxy for one of the bundled
// model applications, seeding the in-memory database and vetting every
// query against the app's policy (§2.2).
//
// Usage:
//
//	acproxy -app calendar -addr 127.0.0.1:7070 -size 50 -mode enforce \
//	        -max-conns 1024 -read-timeout 5m -cache-size 8192 -max-inflight 64 \
//	        -metrics 127.0.0.1:7071 -pprof -slowlog 50ms
//
// Clients speak the line protocol of internal/proxy; see
// examples/calendar for a driver. With -pg-addr the same enforcement
// core additionally serves the Postgres wire protocol (v3), so psql
// and stock Postgres drivers connect directly (session attributes via
// attr.* startup parameters; DESIGN.md §13).
//
// Observability:
//
//   - -metrics ADDR serves the live obsv registry as JSON over HTTP
//     at /metrics: per-stage pipeline counters and latencies, cache
//     tier hit counts, proxy query percentiles, engine scan timings.
//   - -pprof exposes net/http/pprof profiling endpoints on the same
//     HTTP server (or 127.0.0.1:6060 when -metrics is unset).
//   - -slowlog D emits one structured JSON line for every query that
//     takes at least D, with the verdict, the cache tier that
//     answered, and the per-stage breakdown (DESIGN.md §9).
//
// Durability:
//
//   - -wal-dir DIR persists every named session's query history to a
//     write-ahead log under DIR and restores it on restart, so
//     compliance decisions survive a crash (DESIGN.md §11).
//   - -fsync always|interval|off selects the durability/latency
//     trade-off; -fsync-interval tunes the interval timer.
//   - -checkpoint-every N checkpoints and compacts the log after N
//     appended records.
//   - -window N bounds every session trace to its last N entries.
//
// Cluster mode (DESIGN.md §16):
//
//   - -cluster -node-id ID -peers a=host:port,b=host:port joins this
//     proxy to an enforcement cluster: durable sessions hash onto a
//     consistent ring over the members, hellos landing on a non-owner
//     forward to the owner, and owners ship WAL records to each
//     session's ring successor so a follower can adopt them
//     byte-identically when the owner dies.
//   - -lease-ttl / -probe-interval tune failover latency.
//   - -lazy-wal defers WAL open until first durable use, so a
//     forwarding-only node doesn't create an empty log directory.
//   - Inspect and steer a running cluster with the accluster CLI
//     (status, members, drain, rebalance).
//
// Policy lifecycle:
//
//   - -shadow-policy FILE stages a candidate policy (JSON: view name
//     -> SQL) at startup; every decision then dual-decides under the
//     active and candidate policies and divergences stream as diff
//     records. Conclude the trial with the acpolicy CLI (stage, diff,
//     promote, rollback against a running proxy; DESIGN.md §14).
//
// On SIGINT/SIGTERM the proxy drains in-flight connections, flushes
// and checkpoints the WAL (when enabled), and prints extended
// statistics: decision and fact-cache hit rates plus latency
// percentiles over the recent window. A second signal during the
// drain force-exits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	beyond "repro"
	"repro/internal/buildinfo"
	"repro/internal/durable"
)

func main() {
	app := flag.String("app", "calendar", "fixture: calendar|hospital|employees|forum")
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	pgAddr := flag.String("pg-addr", "", "also serve the Postgres wire protocol (v3) on this address (empty disables)")
	size := flag.Int("size", 50, "seed rows per main table")
	mode := flag.String("mode", "enforce", "enforce|log-only|off")
	maxConns := flag.Int("max-conns", 0, "simultaneous connection limit (0 = default, <0 = unlimited)")
	readTimeout := flag.Duration("read-timeout", 10*time.Minute, "per-connection idle read deadline (0 disables)")
	cacheSize := flag.Int("cache-size", 0, "decision-template cache bound (0 = default)")
	maxInFlight := flag.Int("max-inflight", 0, "per-connection pipelined window, protocol v2 (0 = default)")
	metricsAddr := flag.String("metrics", "", "serve /metrics JSON over HTTP on this address (empty disables)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof (on -metrics address, or 127.0.0.1:6060)")
	slowLog := flag.Duration("slowlog", 0, "log queries at or over this duration as structured JSON (0 disables)")
	walDir := flag.String("wal-dir", "", "persist session histories to a WAL under this directory (empty disables durability)")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always|interval|off")
	fsyncInterval := flag.Duration("fsync-interval", durable.DefaultFsyncInterval, "fsync timer period under -fsync interval")
	ckptEvery := flag.Int("checkpoint-every", 10000, "checkpoint + compact the WAL after this many appended records (0 disables auto-checkpoints)")
	window := flag.Int("window", 0, "bound each session trace to its last N entries (0 = unbounded)")
	shadowPolicy := flag.String("shadow-policy", "", "stage a candidate policy from this JSON file (view name -> SQL) for shadow dual-decide")
	clusterOn := flag.Bool("cluster", false, "join an enforcement cluster: consistent-hash session routing + WAL shipping (needs -node-id and -peers)")
	nodeID := flag.String("node-id", "", "this node's stable cluster member id")
	peers := flag.String("peers", "", "cluster member set as id=host:port[,id=host:port...]; must include -node-id (its address may be omitted to reuse -addr)")
	leaseTTL := flag.Duration("lease-ttl", 0, "cluster session-ownership lease TTL (0 = default)")
	probeEvery := flag.Duration("probe-interval", 0, "cluster peer health-probe interval (0 = default)")
	lazyWAL := flag.Bool("lazy-wal", false, "defer WAL open until the first durable session or shipped batch (forwarding-only nodes skip creating an empty log dir)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("acproxy"))
		return
	}

	f, err := beyond.FixtureByName(*app)
	if err != nil {
		log.Fatal(err)
	}
	var m beyond.ProxyMode
	switch *mode {
	case "enforce":
		m = beyond.Enforce
	case "log-only":
		m = beyond.LogOnly
	case "off":
		m = beyond.Off
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	db := f.MustNewDB(*size)
	chk := beyond.NewChecker(f.Policy(), beyond.WithCacheSize(*cacheSize))
	opts := []beyond.ProxyOption{
		beyond.WithMaxConns(*maxConns),
		beyond.WithReadTimeout(*readTimeout),
		beyond.WithMaxInFlight(*maxInFlight),
		beyond.WithSlowLog(*slowLog),
		beyond.WithHistoryWindow(*window),
	}
	if *walDir != "" {
		pol, err := durable.ParseFsyncPolicy(*fsync)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, beyond.WithDurability(*walDir,
			beyond.WithFsync(pol),
			beyond.WithFsyncInterval(*fsyncInterval),
			beyond.WithCheckpointEvery(*ckptEvery)))
	}
	sopts := []beyond.ServeOption{beyond.WithV2Listener(*addr, opts...)}
	if *pgAddr != "" {
		sopts = append(sopts, beyond.WithPgListener(*pgAddr))
	}
	if *lazyWAL {
		sopts = append(sopts, beyond.WithLazyWAL())
	}
	if *clusterOn {
		ccfg, err := clusterConfig(*nodeID, *peers, *addr, *leaseTTL, *probeEvery)
		if err != nil {
			log.Fatalf("acproxy: %v", err)
		}
		sopts = append(sopts, beyond.WithCluster(*ccfg))
	} else if *nodeID != "" || *peers != "" {
		log.Fatal("acproxy: -node-id/-peers need -cluster")
	}
	if *shadowPolicy != "" {
		views, err := readPolicyFile(*shadowPolicy)
		if err != nil {
			log.Fatalf("acproxy: -shadow-policy: %v", err)
		}
		sopts = append(sopts, beyond.WithShadowPolicy(views))
	}
	svc, err := beyond.Serve(db, chk, m, sopts...)
	if err != nil {
		log.Fatal(err)
	}
	srv := svc.Proxy()
	fmt.Printf("acproxy: %s app, policy %d views, mode %s, listening on %s\n",
		f.Name, len(f.Policy().Views), m, svc.V2Addr())
	if node := svc.ClusterNode(); node != nil {
		fmt.Printf("acproxy: cluster node %s over %d member(s); sessions route by consistent hash, WAL records ship to followers\n",
			*nodeID, node.Ring().Size())
	}
	if *pgAddr != "" {
		fmt.Printf("acproxy: Postgres wire protocol on %s (session attrs via attr.* startup params)\n",
			svc.PgAddr())
	}
	if *shadowPolicy != "" {
		fmt.Printf("acproxy: shadow candidate staged from %s; every decision dual-decides (acpolicy diff/promote/rollback to conclude)\n",
			*shadowPolicy)
	}
	if *walDir != "" {
		wal := srv.Durable()
		fmt.Printf("acproxy: WAL at %s (fsync %s), recovered %d session(s) / %d entr(ies)\n",
			*walDir, *fsync, wal.RecoveredSessionCount(), wal.RecoveredEntryCount())
	}

	if err := startHTTP(srv, *metricsAddr, *pprofOn); err != nil {
		log.Fatal(err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if *walDir != "" {
		fmt.Println("\nacproxy: draining connections and flushing WAL...")
	} else {
		fmt.Println("\nacproxy: draining connections...")
	}
	// A second signal during the drain force-exits: an operator who
	// hits ^C twice means it.
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "acproxy: forced exit before drain completed")
		os.Exit(1)
	}()
	// Snapshot WAL stats before Close tears the manager down.
	var walStats *beyond.WALManager
	if *walDir != "" {
		walStats = srv.Durable()
	}
	if err := svc.Close(); err != nil {
		log.Printf("acproxy: close: %v", err)
	}
	if walStats != nil {
		ws := walStats.Stats()
		fmt.Printf("acproxy: WAL: appends=%d batches=%d fsyncs=%d bytes=%d checkpoints=%d compacted=%d\n",
			ws.Appends, ws.Batches, ws.Fsyncs, ws.AppendedBytes, ws.Checkpoints, ws.CompactedSegments)
	}

	st := srv.StatsSnapshot()
	fmt.Printf("acproxy: queries=%d decisions=%d allowed=%d blocked=%d violations=%d\n",
		st.Queries, st.Decisions, st.Allowed, st.Blocked, st.Violations)
	fmt.Printf("acproxy: decision cache: hits=%d (%.1f%%), %d templates resident\n",
		st.CacheHits, 100*st.CacheHitRate, st.CacheEntries)
	fmt.Printf("acproxy: fact cache: reused=%d translated=%d (%.1f%% hit rate)\n",
		st.FactEntriesReused, st.FactEntriesTranslated, 100*st.FactCacheHitRate)
	fmt.Printf("acproxy: latency: p50=%dµs p90=%dµs p99=%dµs mean=%.0fµs over %d queries\n",
		st.LatencyP50Micros, st.LatencyP90Micros, st.LatencyP99Micros,
		st.LatencyMeanMicros, st.LatencySamples)
	fmt.Printf("acproxy: connections: total=%d rejected=%d canceled-requests=%d\n", st.TotalConns, st.RejectedConns, st.CanceledReqs)
}

// clusterConfig parses -node-id/-peers into a ClusterConfig. The
// peers list is id=host:port pairs; the self entry may omit its
// address (or the whole entry), in which case the -addr listener
// address stands in.
func clusterConfig(self, peers, listenAddr string, leaseTTL, probeEvery time.Duration) (*beyond.ClusterConfig, error) {
	if self == "" {
		return nil, fmt.Errorf("-cluster needs -node-id")
	}
	members := []beyond.ClusterMember{}
	sawSelf := false
	for _, part := range strings.Split(peers, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" {
			return nil, fmt.Errorf("-peers entry %q: want id=host:port", part)
		}
		if id == self {
			sawSelf = true
			if addr == "" {
				addr = listenAddr
			}
		}
		members = append(members, beyond.ClusterMember{ID: id, Addr: addr})
	}
	if !sawSelf {
		members = append(members, beyond.ClusterMember{ID: self, Addr: listenAddr})
	}
	if len(members) < 2 {
		return nil, fmt.Errorf("-peers needs at least one peer besides %s", self)
	}
	return &beyond.ClusterConfig{
		Self:          self,
		Members:       members,
		LeaseTTL:      leaseTTL,
		ProbeInterval: probeEvery,
		Logf:          log.Printf,
	}, nil
}

// readPolicyFile loads a candidate policy file: one JSON object
// mapping view names to parameterized SQL.
func readPolicyFile(path string) (map[string]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var views map[string]string
	if err := json.Unmarshal(b, &views); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(views) == 0 {
		return nil, fmt.Errorf("%s: no views", path)
	}
	return views, nil
}

// startHTTP stands up the observability HTTP server: /metrics (the
// obsv registry as JSON) when metricsAddr is set, pprof endpoints when
// requested. Both share one server; with -pprof but no -metrics the
// default profiling address is 127.0.0.1:6060.
func startHTTP(srv *beyond.ProxyServer, metricsAddr string, pprofOn bool) error {
	if metricsAddr == "" && !pprofOn {
		return nil
	}
	httpAddr := metricsAddr
	if httpAddr == "" {
		httpAddr = "127.0.0.1:6060"
	}
	mux := http.NewServeMux()
	if metricsAddr != "" {
		reg := srv.MetricsRegistry()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := reg.WriteJSON(w); err != nil {
				log.Printf("acproxy: metrics: %v", err)
			}
		})
	}
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	hs := &http.Server{Addr: httpAddr, Handler: mux}
	go func() {
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Printf("acproxy: http: %v", err)
		}
	}()
	what := ""
	if metricsAddr != "" {
		what = "metrics at /metrics"
	}
	if pprofOn {
		if what != "" {
			what += ", "
		}
		what += "pprof at /debug/pprof/"
	}
	fmt.Printf("acproxy: serving %s on http://%s\n", what, httpAddr)
	return nil
}
