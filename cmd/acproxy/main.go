// Command acproxy starts the enforcement proxy for one of the bundled
// model applications, seeding the in-memory database and vetting every
// query against the app's policy (§2.2).
//
// Usage:
//
//	acproxy -app calendar -addr 127.0.0.1:7070 -size 50 -mode enforce
//
// Clients speak the line protocol of internal/proxy; see
// examples/calendar for a driver.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	beyond "repro"
)

func main() {
	app := flag.String("app", "calendar", "fixture: calendar|hospital|employees|forum")
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	size := flag.Int("size", 50, "seed rows per main table")
	mode := flag.String("mode", "enforce", "enforce|log-only|off")
	flag.Parse()

	f, err := beyond.FixtureByName(*app)
	if err != nil {
		log.Fatal(err)
	}
	var m beyond.ProxyMode
	switch *mode {
	case "enforce":
		m = beyond.Enforce
	case "log-only":
		m = beyond.LogOnly
	case "off":
		m = beyond.Off
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	db := f.MustNewDB(*size)
	chk := beyond.NewChecker(f.Policy())
	srv := beyond.NewProxy(db, chk, m)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("acproxy: %s app, policy %d views, mode %s, listening on %s\n",
		f.Name, len(f.Policy().Views), m, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	srv.Close()
	st := chk.Stats()
	fmt.Printf("\nacproxy: decisions=%d allowed=%d blocked=%d cacheHits=%d\n",
		st.Decisions, st.Allowed, st.Blocked, st.CacheHits)
}
