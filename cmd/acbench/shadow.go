package main

import (
	"context"
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/checker"
	"repro/internal/policy"
	"repro/internal/sqlparser"
)

// The dual-decide tax: a staged candidate makes every enforced check
// also decide under the candidate policy. The design claim is that the
// shadow half rides the same warm caches as the active half (its own
// epoch keys the same tiers), so the overhead is bounded by roughly
// one extra warm decide — the acceptance bar is ≤2.5x the single warm
// path, and runJSON fails the run when a document exceeds it.

type shadowRow struct {
	WarmMicros float64 `json:"warmMicros"`
	DualMicros float64 `json:"dualMicros"`
	Ratio      float64 `json:"ratio"`
}

// runShadowOverhead measures the warm trace-dependent check (50-entry
// history, the hot-path workload) with and without a staged candidate
// dual-deciding alongside it. Best-of-trials, interleaved, like
// runMetricsOverhead — same container-noise posture.
func runShadowOverhead() (shadowRow, error) {
	f := apps.Calendar()
	sel := sqlparser.MustParseSelect("SELECT * FROM Events WHERE EId=2")
	sess := f.Session(1)
	tr := mkTrace(50)
	ctx := context.Background()

	chk := checker.New(f.Policy())
	views := make(map[string]string, len(f.PolicySQL)+1)
	for k, v := range f.PolicySQL {
		views[k] = v
	}
	views["VAllEvents"] = "SELECT * FROM Events"
	cand, err := policy.New(f.Schema, views)
	if err != nil {
		return shadowRow{}, err
	}

	const (
		iters  = 50
		trials = 30
	)
	warmOnce := func() {
		chk.Check(ctx, sel, sqlparser.NoArgs, sess, tr)
	}
	dualOnce := func() {
		chk.CheckShadow(ctx, sel, sqlparser.NoArgs, sess, tr)
	}
	measure := func(once func()) time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			once()
		}
		return time.Since(start)
	}

	// Warm both paths before timing anything: the first shadow check
	// compiles/caches under the candidate epoch.
	warmOnce()
	if _, err := chk.StagePolicy(cand); err != nil {
		return shadowRow{}, err
	}
	dualOnce()

	// The warm measurement runs with the candidate rolled back — that IS
	// the shadow-off configuration the ratio compares against. Staging
	// keeps the candidate's epoch caches warm across the roll, so the
	// re-stage costs one version-table swap, not a recompile.
	timeWarm := func() time.Duration {
		if _, err := chk.Rollback(); err != nil {
			panic(err) // candidate is always staged on entry
		}
		warmOnce()
		d := measure(warmOnce)
		if _, err := chk.StagePolicy(cand); err != nil {
			panic(err)
		}
		dualOnce()
		return d
	}
	timeDual := func() time.Duration { return measure(dualOnce) }

	minWarm, minDual := time.Duration(1<<62), time.Duration(1<<62)
	for t := 0; t < trials; t++ {
		// Alternate order so clock drift and GC hit both sides evenly.
		var a, b time.Duration
		if t%2 == 0 {
			a, b = timeWarm(), timeDual()
		} else {
			b, a = timeDual(), timeWarm()
		}
		if a < minWarm {
			minWarm = a
		}
		if b < minDual {
			minDual = b
		}
	}
	return shadowRow{
		WarmMicros: float64(minWarm.Nanoseconds()) / 1e3 / iters,
		DualMicros: float64(minDual.Nanoseconds()) / 1e3 / iters,
		Ratio:      float64(minDual) / float64(minWarm),
	}, nil
}

// shadowOverheadBudget is the acceptance bar for the dual-decide tax.
const shadowOverheadBudget = 2.5

func gateShadowOverhead(r shadowRow) error {
	if r.Ratio > shadowOverheadBudget {
		return fmt.Errorf("shadow overhead FAILED: dual-decide %.1fµs is %.2fx the warm path %.1fµs (budget %.1fx)",
			r.DualMicros, r.Ratio, r.WarmMicros, shadowOverheadBudget)
	}
	fmt.Printf("shadow overhead: warm %.1fµs, dual-decide %.1fµs (%.2fx, budget %.1fx)\n",
		r.WarmMicros, r.DualMicros, r.Ratio, shadowOverheadBudget)
	return nil
}
