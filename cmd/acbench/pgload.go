package main

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	beyond "repro"
	"repro/internal/apps"
	"repro/internal/checker"
	"repro/internal/loadgen"
)

// The pgwire open-loop target (ROADMAP item 3 follow-through): the
// same Poisson schedule the v2 open-loop table uses, driven through
// the Postgres wire listener. pgwire has no lane multiplexing — a
// session IS a TCP connection with its own startup handshake — so the
// scales are connection counts, far below the v2 lane scales, and the
// interesting numbers are the per-connection protocol overhead and the
// accept path under hundreds of live sockets.

// defaultPgScales are the pg open-loop connection counts. 1024 stays
// under typical fd soft limits with headroom for the server side.
func defaultPgScales() []int { return []int{64, 256, 1024} }

// pgLoadConn is one raw simple-query connection. A mutex serializes
// schedule operations that land on the same session; the wire protocol
// has no out-of-order completion to exploit anyway.
type pgLoadConn struct {
	mu  sync.Mutex
	c   net.Conn
	r   *bufio.Reader
	sql []byte // pre-framed 'Q' message for this connection's principal
}

// dialPgLoad performs the startup handshake with the principal bound
// as a session attribute and pre-frames the per-connection query.
func dialPgLoad(addr string, uid int, sqlText string) (*pgLoadConn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	var body []byte
	body = binary.BigEndian.AppendUint32(body, 196608)
	for _, s := range []string{"user", "acbench", "attr.MyUId", fmt.Sprint(uid)} {
		body = append(append(body, s...), 0)
	}
	body = append(body, 0)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)+4))
	if _, err := c.Write(append(hdr[:], body...)); err != nil {
		c.Close()
		return nil, err
	}
	p := &pgLoadConn{c: c, r: bufio.NewReader(c)}
	if err := p.drain(); err != nil {
		c.Close()
		return nil, err
	}
	p.sql = append(p.sql, 'Q')
	p.sql = binary.BigEndian.AppendUint32(p.sql, uint32(len(sqlText)+5))
	p.sql = append(append(p.sql, sqlText...), 0)
	return p, nil
}

// drain reads to ReadyForQuery. A policy refusal (SQLSTATE 42501) is a
// decided outcome and not an error; any other ErrorResponse is.
func (p *pgLoadConn) drain() error {
	var blocked error
	for {
		var h [5]byte
		if _, err := io.ReadFull(p.r, h[:]); err != nil {
			return err
		}
		n := binary.BigEndian.Uint32(h[1:])
		payload := make([]byte, n-4)
		if _, err := io.ReadFull(p.r, payload); err != nil {
			return err
		}
		switch h[0] {
		case 'E':
			if !strings.Contains(string(payload), "42501") {
				blocked = fmt.Errorf("pgwire error: %q", payload)
			}
		case 'Z':
			return blocked
		}
	}
}

func (p *pgLoadConn) query() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, err := p.c.Write(p.sql); err != nil {
		return err
	}
	return p.drain()
}

// pgPoolTarget maps schedule session i to pooled connection i.
type pgPoolTarget struct{ conns []*pgLoadConn }

func (t *pgPoolTarget) Do(ctx context.Context, op loadgen.Op) error {
	return t.conns[op.Session].query()
}

func (t *pgPoolTarget) close() {
	for _, c := range t.conns {
		c.c.Close()
	}
}

// runOpenLoopScalePg is runOpenLoopScale for the pgwire ingress:
// sessions are real wire connections on one enforcement core.
func runOpenLoopScalePg(cfg openloopConfig, sessions int) (openloopRow, error) {
	ctx := context.Background()
	f := apps.Calendar()
	const users = 64
	db := f.MustNewDB(users)
	svc, err := beyond.Serve(db, checker.New(f.Policy()), beyond.Enforce,
		beyond.WithPgListener("127.0.0.1:0"),
		beyond.WithPgMaxConns(sessions+8))
	if err != nil {
		return openloopRow{}, err
	}
	defer svc.Close()

	setupStart := time.Now()
	target := &pgPoolTarget{conns: make([]*pgLoadConn, sessions)}
	defer target.close()
	for i := 0; i < sessions; i++ {
		uid := i%users + 1
		sqlText := fmt.Sprintf("SELECT EId FROM Attendance WHERE UId = %d", uid)
		conn, err := dialPgLoad(svc.PgAddr(), uid, sqlText)
		if err != nil {
			return openloopRow{}, fmt.Errorf("pg conn %d: %w", i, err)
		}
		target.conns[i] = conn
	}
	setup := time.Since(setupStart)

	sched, err := loadgen.NewSchedule(cfg.Ops, cfg.QPS, sessions, 1)
	if err != nil {
		return openloopRow{}, err
	}
	res, err := loadgen.Run(ctx, loadgen.Config{
		Target:   target,
		Schedule: sched,
		Workers:  128,
		Warmup:   cfg.Ops / 20,
	})
	if err != nil {
		return openloopRow{}, err
	}
	return openloopRow{
		Ingress:           "pg",
		Sessions:          sessions,
		Ops:               res.Ops,
		Errors:            res.Errors,
		OfferedQPS:        res.OfferedQPS,
		AchievedQPS:       res.AchievedQPS,
		P50Micros:         res.Latency.Quantile(0.50),
		P90Micros:         res.Latency.Quantile(0.90),
		P99Micros:         res.Latency.Quantile(0.99),
		P999Micros:        res.Latency.Quantile(0.999),
		MaxMicros:         res.Latency.Max(),
		MaxLatenessMicros: res.MaxLateness.Microseconds(),
		SetupSeconds:      setup.Seconds(),
	}, nil
}
