// Command acbench runs the full evaluation suite E1–E8 (DESIGN.md) and
// prints every table. For calibrated latency numbers, prefer the
// testing.B benchmarks: go test -bench=. -benchmem .
//
// Usage:
//
//	acbench            # run everything
//	acbench -only E1   # one experiment
//	acbench -hotpath   # enforcement hot-path scaling table only
//
// -hotpath measures the per-check cost against growing session
// histories with the incremental trace-fact cache on and off, and the
// throughput of parallel principals hitting the sharded decision
// cache — the scaling story behind the proxy's production posture.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/checker"
	"repro/internal/experiments"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (E1..E8)")
	hotpath := flag.Bool("hotpath", false, "run only the enforcement hot-path scaling table")
	flag.Parse()

	if *hotpath {
		runHotPath()
		return
	}

	tables, err := experiments.RunAll()
	if err != nil {
		log.Fatal(err)
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id != "" {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	for _, t := range tables {
		if len(want) > 0 && !want[strings.ToUpper(t.ID)] && !want[strings.ToUpper(strings.TrimSuffix(t.ID, "b"))] {
			continue
		}
		fmt.Println(t)
	}
}

// runHotPath prints per-check latencies for long-history sessions
// (fact cache on/off) and parallel-principal throughput on a warm
// decision template.
func runHotPath() {
	f := apps.Calendar()
	sel := sqlparser.MustParseSelect("SELECT * FROM Events WHERE EId=2")
	sess := f.Session(1)

	fmt.Println("Hot path: per-check latency vs session history length")
	fmt.Printf("%-10s %15s %15s %10s\n", "history", "incremental", "naive", "speedup")
	for _, n := range []int{25, 50, 100, 200, 400} {
		tr := mkTrace(n)
		inc := timeChecks(f, sel, sess, tr, true)
		naive := timeChecks(f, sel, sess, tr, false)
		fmt.Printf("%-10d %15s %15s %9.1fx\n", n, inc, naive, float64(naive)/float64(inc))
	}

	fmt.Println()
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 5000
	chk := checker.New(f.Policy())
	warm := sqlparser.MustParseSelect("SELECT EId FROM Attendance WHERE UId = ?")
	chk.Check(warm, sqlparser.PositionalArgs(1), f.Session(1), nil)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(uid int64) {
			defer wg.Done()
			s := f.Session(uid)
			args := sqlparser.PositionalArgs(uid)
			for i := 0; i < perWorker; i++ {
				chk.Check(warm, args, s, nil)
			}
		}(int64(w + 1))
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := workers * perWorker
	fmt.Printf("Parallel principals: %d workers x %d checks in %s (%.0f checks/sec, cache hits %d)\n",
		workers, perWorker, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(), chk.Stats().CacheHits)
}

func mkTrace(n int) *trace.Trace {
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		sql := fmt.Sprintf("SELECT 1 FROM Attendance WHERE UId=1 AND EId=%d", i+2)
		st := sqlparser.MustParseSelect(sql)
		tr.Append(trace.Entry{SQL: sql, Stmt: st, Args: sqlparser.NoArgs,
			Columns: []string{"1"}, Rows: [][]sqlvalue.Value{{sqlvalue.NewInt(1)}}})
	}
	return tr
}

// timeChecks reports the mean per-check latency over enough
// iterations to be stable at each history size.
func timeChecks(f *apps.Fixture, sel *sqlparser.SelectStmt, sess map[string]sqlvalue.Value, tr *trace.Trace, useFactCache bool) time.Duration {
	opts := checker.DefaultOptions()
	opts.UseFactCache = useFactCache
	chk := checker.NewWithOptions(f.Policy(), opts)
	chk.Check(sel, sqlparser.NoArgs, sess, tr) // warm
	iters := 50
	if !useFactCache {
		iters = 10
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		chk.Check(sel, sqlparser.NoArgs, sess, tr)
	}
	return time.Since(start) / time.Duration(iters)
}
