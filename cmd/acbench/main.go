// Command acbench runs the full evaluation suite E1–E8 (DESIGN.md) and
// prints every table. For calibrated latency numbers, prefer the
// testing.B benchmarks: go test -bench=. -benchmem .
//
// Usage:
//
//	acbench            # run everything
//	acbench -only E1   # one experiment
//	acbench -hotpath   # enforcement hot-path scaling table only
//	acbench -pipeline  # protocol-v2 pipelining throughput table only
//	acbench -durable   # WAL fsync-policy/group-commit ablation only
//	acbench -ingress   # decide throughput per ingress surface (v2/driver/pgwire)
//	acbench -saturate  # knee search: highest QPS whose p99 holds the SLO, per ingress
//	acbench -cluster   # aggregate knee over 1/2/4/8 in-process cluster nodes
//	acbench -json BENCH_5.json   # machine-readable benchmark document
//
// -hotpath measures the per-check cost against growing session
// histories with the incremental trace-fact cache on and off, and the
// throughput of parallel principals hitting the sharded decision
// cache — the scaling story behind the proxy's production posture.
//
// -pipeline measures end-to-end proxy throughput for a mixed
// 8-session workload over one connection as the client's in-flight
// window grows: window 1 is the serial (v1-equivalent) baseline, and
// larger windows show what protocol v2's pipelining buys.
//
// -durable measures WAL append throughput for concurrent sessions
// under each fsync policy: fsync-per-append (the naive baseline),
// group commit (one fsync per coalesced batch), interval, and off.
//
// -saturate ramps offered load per ingress and binary-searches the
// KNEE: the highest QPS whose p99 stays under -sat-slo with zero
// errors and no late-generator disqualification. Each step runs under
// an in-process CPU profile whose top flat functions name the
// limiting resource. -sat-ablate repeats the search with the inline
// fast path and encode pooling disabled, so the ceiling lift is
// measured by the same harness that found the ceiling.
//
// -cluster stands up N clustered Serve stacks in-process (durable WAL,
// live shipping, consistent-hash routing), spreads named durable
// sessions over all N entry points — so a ring-determined share pays
// the forwarding hop — and knee-searches the aggregate QPS that holds
// the p99 SLO at each cluster size. See DESIGN.md §16.
//
// -cpuprofile/-memprofile write standard pprof profiles covering the
// whole run (any mode). In -saturate mode the CPU profiler belongs to
// the per-step capture, so -cpuprofile instead dumps one profile per
// load step (<path>.<ingress>.<qps>qps.pprof) for offline
// `go tool pprof`.
//
// -json FILE runs the hot-path, parallel-principal, pipelining,
// cold-path, durability, saturation, and metrics-overhead benchmarks
// and writes one JSON document to FILE, so successive checked-in
// BENCH_*.json files form a performance trajectory for the repo.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/buildinfo"
	"repro/internal/checker"
	"repro/internal/experiments"
	"repro/internal/obsv"
	"repro/internal/proxy"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (E1..E8)")
	hotpath := flag.Bool("hotpath", false, "run only the enforcement hot-path scaling table")
	pipeline := flag.Bool("pipeline", false, "run only the protocol-v2 pipelining throughput table")
	coldpath := flag.Bool("coldpath", false, "run only the cold-path policy-size sweep (serial vs indexed vs parallel)")
	durableBench := flag.Bool("durable", false, "run only the WAL append-throughput ablation (fsync policies vs group commit)")
	openloop := flag.Bool("openloop", false, "run only the open-loop (coordinated-omission-safe) proxy load table")
	ingress := flag.Bool("ingress", false, "run only the ingress-surface comparison (v2 vs database/sql driver vs pgwire)")
	saturate := flag.Bool("saturate", false, "run only the saturation knee search (highest QPS holding the p99 SLO per ingress)")
	clusterBench := flag.Bool("cluster", false, "run only the cluster knee sweep (aggregate QPS over 1/2/4/8 in-process nodes with mixed local/forwarded sessions)")
	clusterNodes := flag.String("cluster-nodes", "1,2,4,8", "with -cluster/-json: comma-separated cluster sizes to sweep")
	clusterSessions := flag.Int("cluster-sessions", 192, "with -cluster/-json: durable sessions spread across the cluster")
	clusterBudget := flag.Duration("cluster-budget", 25*time.Second, "with -cluster/-json: wall-clock budget per cluster size")
	satIngress := flag.String("sat-ingress", "v2,driver,pg", "with -saturate: comma-separated ingresses to search")
	satSLO := flag.Duration("sat-slo", 5*time.Millisecond, "with -saturate/-json: p99 SLO a passing step must hold")
	satBudget := flag.Duration("sat-budget", 45*time.Second, "with -saturate/-json: wall-clock budget per (ingress, variant) search")
	satStep := flag.Duration("sat-step", 4*time.Second, "with -saturate/-json: target duration of one load step")
	satStart := flag.Float64("sat-start", 500, "with -saturate: starting offered QPS for the ramp")
	satAblate := flag.Bool("sat-ablate", false, "with -saturate: disable the inline fast path and encode pooling (ceiling-lift ablation)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (in -saturate mode: one per load step, <path>.<ingress>.<qps>qps.pprof)")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	olIngress := flag.String("openloop-ingress", "v2", "with -openloop: ingress surface to load, v2 (lanes) or pg (one wire connection per session)")
	olSessions := flag.String("openloop-sessions", "", "with -openloop/-json: comma-separated session scales (default 10000,100000,1000000; pg default 64,256,1024)")
	olOps := flag.Int("openloop-ops", 0, "with -openloop/-json: operations per scale (default 10000)")
	olQPS := flag.Float64("openloop-qps", 0, "with -openloop/-json: offered Poisson arrival rate (default 2000)")
	jsonOut := flag.String("json", "", "write the benchmark document as JSON to this file")
	against := flag.String("against", "", "with -json: compare against a previous benchmark document and fail on >10% hotpath regression")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("acbench"))
		return
	}

	satCfg := defaultSatConfig()
	satCfg.SLO = *satSLO
	satCfg.Budget = *satBudget
	satCfg.Step = *satStep
	satCfg.StartQPS = *satStart
	satCfg.Ablate = *satAblate
	if *satIngress != "" {
		satCfg.Ingresses = satCfg.Ingresses[:0]
		for _, s := range strings.Split(*satIngress, ",") {
			satCfg.Ingresses = append(satCfg.Ingresses, strings.TrimSpace(s))
		}
	}

	// Profile plumbing (any mode). In -saturate mode the CPU profiler is
	// owned by the per-step capture, so -cpuprofile becomes the per-step
	// dump prefix instead of a whole-run profile.
	if *cpuprofile != "" {
		if *saturate || *jsonOut != "" {
			satProfileSink = *cpuprofile
		} else {
			f, err := os.Create(*cpuprofile)
			if err != nil {
				log.Fatalf("acbench: -cpuprofile: %v", err)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				log.Fatalf("acbench: -cpuprofile: %v", err)
			}
			defer func() {
				pprof.StopCPUProfile()
				f.Close()
			}()
		}
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Printf("acbench: -memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				log.Printf("acbench: -memprofile: %v", err)
			}
		}()
	}

	olCfg := defaultOpenloopConfig()
	switch *olIngress {
	case "v2":
	case "pg":
		olCfg.Ingress = "pg"
		olCfg.Scales = defaultPgScales()
	default:
		log.Fatalf("acbench: -openloop-ingress must be v2 or pg, got %q", *olIngress)
	}
	if *olSessions != "" {
		olCfg.Scales = olCfg.Scales[:0]
		for _, s := range strings.Split(*olSessions, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				log.Fatalf("acbench: bad -openloop-sessions entry %q", s)
			}
			olCfg.Scales = append(olCfg.Scales, n)
		}
	}
	if *olOps > 0 {
		olCfg.Ops = *olOps
	}
	if *olQPS > 0 {
		olCfg.QPS = *olQPS
	}

	clCfg := defaultClusterBenchConfig()
	clCfg.SLO = *satSLO
	clCfg.Budget = *clusterBudget
	if *clusterSessions > 0 {
		clCfg.Sessions = *clusterSessions
	}
	if *clusterNodes != "" {
		clCfg.Nodes = clCfg.Nodes[:0]
		for _, s := range strings.Split(*clusterNodes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				log.Fatalf("acbench: bad -cluster-nodes entry %q", s)
			}
			clCfg.Nodes = append(clCfg.Nodes, n)
		}
	}

	if *jsonOut != "" {
		if err := runJSON(*jsonOut, *against, olCfg, satCfg, clCfg); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *clusterBench {
		if err := printCluster(clCfg); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *saturate {
		if err := printSaturate(satCfg); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *openloop {
		if err := printOpenLoop(olCfg); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *ingress {
		if err := printIngress(); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *hotpath {
		printHotPath()
		return
	}
	if *coldpath {
		if err := printColdPath(); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *pipeline {
		if err := printPipeline(); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *durableBench {
		if err := printDurable(); err != nil {
			log.Fatal(err)
		}
		return
	}

	tables, err := experiments.RunAll()
	if err != nil {
		log.Fatal(err)
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id != "" {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	for _, t := range tables {
		if len(want) > 0 && !want[strings.ToUpper(t.ID)] && !want[strings.ToUpper(strings.TrimSuffix(t.ID, "b"))] {
			continue
		}
		fmt.Println(t)
	}
}

// benchDoc is the -json output: one self-describing document per run,
// checked in as BENCH_<pr>.json so the sequence forms a trajectory.
type benchDoc struct {
	GeneratedAt     string        `json:"generatedAt"`
	GoVersion       string        `json:"goVersion"`
	GoMaxProcs      int           `json:"gomaxprocs"`
	Hotpath         []hotpathRow  `json:"hotpath"`
	Parallel        parallelRow   `json:"parallelPrincipals"`
	Pipeline        []pipelineRow `json:"pipeline"`
	Coldpath        []coldpathRow `json:"coldpath,omitempty"`
	Durable         []durableRow  `json:"durable,omitempty"`
	Openloop        []openloopRow `json:"openloop,omitempty"`
	Ingress         []ingressRow  `json:"ingress,omitempty"`
	Saturation      []satRow      `json:"saturation,omitempty"`
	Cluster         []clusterRow  `json:"cluster,omitempty"`
	ShadowOverhead  shadowRow     `json:"shadowOverhead"`
	MetricsOverhead overheadRow   `json:"metricsOverhead"`
}

type hotpathRow struct {
	History            int     `json:"history"`
	IncrementalMicros  float64 `json:"incrementalMicros"`
	NaiveMicros        float64 `json:"naiveMicros"`
	IncrementalSpeedup float64 `json:"incrementalSpeedup"`
}

type parallelRow struct {
	Workers      int     `json:"workers"`
	ChecksPerSec float64 `json:"checksPerSec"`
	CacheHits    int     `json:"cacheHits"`
}

type pipelineRow struct {
	Mode    string  `json:"mode"`
	Window  int     `json:"window"`
	ReqPerS float64 `json:"reqPerSec"`
	Speedup float64 `json:"speedupVsWindow1"`
}

type overheadRow struct {
	InstrumentedMicros float64 `json:"instrumentedMicros"`
	NoopMicros         float64 `json:"noopMicros"`
	Ratio              float64 `json:"ratio"`
}

// runJSON assembles the full benchmark document and writes it. When
// against names a previous document, the new hotpath numbers are
// diffed against it and a >10% speedup regression fails the run
// (after the new document is written, so the numbers are
// inspectable).
func runJSON(path, against string, olCfg openloopConfig, satCfg satConfig, clCfg clusterBenchConfig) error {
	doc := benchDoc{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	fmt.Println("acbench: hot-path scaling...")
	doc.Hotpath = runHotPath()
	fmt.Println("acbench: parallel principals...")
	doc.Parallel = runParallel()
	fmt.Println("acbench: protocol-v2 pipelining...")
	pl, err := runPipeline()
	if err != nil {
		return err
	}
	doc.Pipeline = pl
	fmt.Println("acbench: cold-path policy-size sweep...")
	cp, err := runColdPath()
	if err != nil {
		return err
	}
	doc.Coldpath = cp
	fmt.Println("acbench: WAL durability ablation...")
	du, err := runDurable()
	if err != nil {
		return err
	}
	doc.Durable = du
	fmt.Println("acbench: open-loop proxy load (v2)...")
	v2Cfg := olCfg
	if v2Cfg.Ingress != "v2" {
		v2Cfg = defaultOpenloopConfig()
	}
	ol, err := runOpenLoop(v2Cfg)
	if err != nil {
		return err
	}
	doc.Openloop = ol
	fmt.Println("acbench: open-loop proxy load (pgwire)...")
	pgCfg := olCfg
	if pgCfg.Ingress != "pg" {
		pgCfg.Ingress = "pg"
		pgCfg.Scales = defaultPgScales()
	}
	pg, err := runOpenLoop(pgCfg)
	if err != nil {
		return err
	}
	doc.Openloop = append(doc.Openloop, pg...)
	fmt.Println("acbench: ingress surfaces...")
	ing, err := runIngress()
	if err != nil {
		return err
	}
	doc.Ingress = ing
	// Saturation knees: the optimized build and its ablation (inline
	// fast path, encode pooling, and the engine's bound equality scan
	// all off), per ingress, both measured by the same knee-search
	// harness so the ceiling lift is apples-to-apples. Settle the heap
	// first: the million-session openloop sweep above leaves the GC
	// pacer with a huge heap goal, and knee steps measured under that
	// inherited pressure read artificially low.
	runtime.GC()
	debug.FreeOSMemory()
	for _, ablate := range []bool{false, true} {
		variant := "optimized"
		if ablate {
			variant = "ablated"
		}
		fmt.Printf("acbench: saturation knee search (%s)...\n", variant)
		cfg := satCfg
		cfg.Ablate = ablate
		rows, err := runSaturate(cfg, func(s string) { fmt.Println(s) })
		if err != nil {
			return err
		}
		doc.Saturation = append(doc.Saturation, rows...)
	}
	printSatLift(doc.Saturation)
	fmt.Println("acbench: cluster knee sweep...")
	runtime.GC()
	debug.FreeOSMemory()
	cls, err := runClusterBench(clCfg, func(s string) { fmt.Println(s) })
	if err != nil {
		return err
	}
	doc.Cluster = cls
	printClusterScaling(doc.Cluster)
	fmt.Println("acbench: dual-decide shadow overhead...")
	sh, err := runShadowOverhead()
	if err != nil {
		return err
	}
	doc.ShadowOverhead = sh
	fmt.Println("acbench: metrics overhead...")
	doc.MetricsOverhead = runMetricsOverhead()
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("acbench: wrote %s\n", path)
	if err := gateShadowOverhead(doc.ShadowOverhead); err != nil {
		return err
	}
	if against != "" {
		return diffAgainst(doc, against)
	}
	return nil
}

// diffAgainst gates on the previous document's pinned hotpath
// numbers: the incremental-vs-naive speedup — a machine-robust
// relative metric — summarized as the geometric mean over the history
// sweep must stay within 10% of the prior run. Per-row ratios are
// printed for inspection but gated only in aggregate: a single row at
// the short-history end measures a few milliseconds of work on a
// shared container, and gating each row individually would flake on
// any one noisy sample. Pipeline and coldpath rows are informational
// (they pin NEW capabilities, not prior ones).
func diffAgainst(doc benchDoc, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench diff: %w", err)
	}
	var prev benchDoc
	if err := json.Unmarshal(raw, &prev); err != nil {
		return fmt.Errorf("bench diff: %s: %w", path, err)
	}
	prevBy := make(map[int]hotpathRow, len(prev.Hotpath))
	for _, r := range prev.Hotpath {
		prevBy[r.History] = r
	}
	logSum, n := 0.0, 0
	for _, r := range doc.Hotpath {
		p, ok := prevBy[r.History]
		if !ok || p.IncrementalSpeedup <= 0 || r.IncrementalSpeedup <= 0 {
			continue
		}
		ratio := r.IncrementalSpeedup / p.IncrementalSpeedup
		fmt.Printf("bench diff: history=%d speedup %.2fx -> %.2fx (%.0f%%)\n",
			r.History, p.IncrementalSpeedup, r.IncrementalSpeedup, ratio*100)
		logSum += math.Log(ratio)
		n++
	}
	if n == 0 {
		fmt.Printf("bench diff vs %s: no comparable hotpath rows\n", path)
	} else {
		geo := math.Exp(logSum / float64(n))
		if geo < 0.9 {
			return fmt.Errorf("bench diff vs %s FAILED: hotpath speedup geomean regressed to %.0f%% of the pinned run (>10%%)", path, geo*100)
		}
		fmt.Printf("bench diff vs %s: ok (hotpath speedup geomean %.0f%% of pinned run)\n", path, geo*100)
	}
	if err := diffOpenloop(doc, prev, path); err != nil {
		return err
	}
	return diffCluster(doc, prev, path)
}

// diffCluster gates the cluster sweep against the pinned document,
// keyed by node count: the aggregate knee at each size must hold at
// least half the pinned rate (wall-clock knees on a shared container
// swing; halving means forwarding or shipping broke, not jitter). A
// pinned document without cluster rows makes this run the baseline.
func diffCluster(doc, prev benchDoc, path string) error {
	prevBy := make(map[int]clusterRow, len(prev.Cluster))
	for _, r := range prev.Cluster {
		prevBy[r.Nodes] = r
	}
	n := 0
	for _, r := range doc.Cluster {
		p, ok := prevBy[r.Nodes]
		if !ok || p.KneeQPS <= 0 || r.KneeQPS <= 0 {
			continue
		}
		ratio := r.KneeQPS / p.KneeQPS
		fmt.Printf("bench diff: cluster nodes=%d knee %.0f -> %.0f qps (%.0f%%), p99 %dµs -> %dµs\n",
			r.Nodes, p.KneeQPS, r.KneeQPS, ratio*100, p.KneeP99Micros, r.KneeP99Micros)
		if ratio < 0.5 {
			return fmt.Errorf("bench diff vs %s FAILED: cluster knee at %d nodes fell to %.0f%% of the pinned run (<50%%)", path, r.Nodes, ratio*100)
		}
		n++
	}
	if n == 0 {
		fmt.Printf("bench diff vs %s: no comparable cluster rows (new baseline)\n", path)
	} else {
		fmt.Printf("bench diff vs %s: ok (%d cluster rows within bounds)\n", path, n)
	}
	return nil
}

// diffOpenloop gates the open-loop tail latencies against the pinned
// document, scale by scale within each ingress. Wall-clock tails on a
// shared container are far noisier than the relative hotpath metric,
// so the gate is a geomean across scales with 2× headroom — it catches
// a warm path that broke (tails jump integer multiples when pooling or
// the lane scheduler regresses), not scheduler jitter. Rows are keyed
// by (ingress, sessions); a pinned document predating the ingress
// field carries v2 rows with the field absent, which olIngressKey
// normalizes so the v2 gate keeps comparing while pg rows from a newer
// run become a fresh baseline (vacuous pass).
func diffOpenloop(doc, prev benchDoc, path string) error {
	type olKey struct {
		ingress  string
		sessions int
	}
	key := func(r openloopRow) olKey {
		ing := r.Ingress
		if ing == "" {
			ing = "v2"
		}
		return olKey{ing, r.Sessions}
	}
	prevBy := make(map[olKey]openloopRow, len(prev.Openloop))
	for _, r := range prev.Openloop {
		prevBy[key(r)] = r
	}
	// A row whose generator ran severely late is incomparable: lateness
	// means the load harness could not even START ops on schedule (the
	// 1-core box stalled under setup GC or neighbors), so the measured
	// tails are machine backlog, not proxy latency. Such rows are
	// excluded from the geomean — visibly, never silently.
	const maxCredibleLateness = 50_000 // µs
	logSum, n := 0.0, 0
	for _, r := range doc.Openloop {
		p, ok := prevBy[key(r)]
		if !ok || p.P99Micros <= 0 || r.P99Micros <= 0 {
			continue
		}
		if r.MaxLatenessMicros > maxCredibleLateness || p.MaxLatenessMicros > maxCredibleLateness {
			fmt.Printf("bench diff: openloop %s sessions=%d SKIPPED (lateness %dµs prev / %dµs now exceeds %dµs: harness fell behind, tails are backlog not latency)\n",
				key(r).ingress, r.Sessions, p.MaxLatenessMicros, r.MaxLatenessMicros, maxCredibleLateness)
			continue
		}
		// A row that achieved well under its offered rate with a credible
		// generator means Elapsed stretched past the schedule span — a
		// long completion tail (setup GC debt, backlog drain), not a
		// schedule the server kept up with. Flag it explicitly so an
		// under-achieving row is never mistaken for a sustained rate (the
		// BENCH_8 1M-session row hid exactly this; see EXPERIMENTS.md E9).
		if r.AchievedQPS < 0.95*r.OfferedQPS {
			fmt.Printf("bench diff: openloop %s sessions=%d UNDER-ACHIEVED: %.0f/s achieved vs %.0f/s offered (<95%%) — completion tail stretched the run; treat achievedQPS as drain rate, not sustained throughput\n",
				key(r).ingress, r.Sessions, r.AchievedQPS, r.OfferedQPS)
		}
		ratio := float64(r.P99Micros) / float64(p.P99Micros)
		fmt.Printf("bench diff: openloop %s sessions=%d p99 %dµs -> %dµs (%.0f%%), p999 %dµs -> %dµs\n",
			key(r).ingress, r.Sessions, p.P99Micros, r.P99Micros, ratio*100, p.P999Micros, r.P999Micros)
		logSum += math.Log(ratio)
		n++
	}
	if n == 0 {
		fmt.Printf("bench diff vs %s: no comparable openloop rows (new baseline)\n", path)
		return nil
	}
	geo := math.Exp(logSum / float64(n))
	if geo > 2.0 {
		return fmt.Errorf("bench diff vs %s FAILED: openloop p99 geomean rose to %.0f%% of the pinned run (>200%%)", path, geo*100)
	}
	fmt.Printf("bench diff vs %s: ok (openloop p99 geomean %.0f%% of pinned run)\n", path, geo*100)
	return nil
}

// runHotPath measures per-check latencies for long-history sessions
// with the fact cache on and off.
func runHotPath() []hotpathRow {
	f := apps.Calendar()
	sel := sqlparser.MustParseSelect("SELECT * FROM Events WHERE EId=2")
	sess := f.Session(1)
	var rows []hotpathRow
	for _, n := range []int{25, 50, 100, 200, 400} {
		tr := mkTrace(n)
		inc := timeChecks(f, sel, sess, tr, true)
		naive := timeChecks(f, sel, sess, tr, false)
		rows = append(rows, hotpathRow{
			History:            n,
			IncrementalMicros:  float64(inc.Nanoseconds()) / 1e3,
			NaiveMicros:        float64(naive.Nanoseconds()) / 1e3,
			IncrementalSpeedup: float64(naive) / float64(inc),
		})
	}
	return rows
}

func printHotPath() {
	fmt.Println("Hot path: per-check latency vs session history length")
	fmt.Printf("%-10s %15s %15s %10s\n", "history", "incremental", "naive", "speedup")
	for _, r := range runHotPath() {
		fmt.Printf("%-10d %14.1fµs %14.1fµs %9.1fx\n",
			r.History, r.IncrementalMicros, r.NaiveMicros, r.IncrementalSpeedup)
	}
	fmt.Println()
	p := runParallel()
	fmt.Printf("Parallel principals: %d workers (%.0f checks/sec, cache hits %d)\n",
		p.Workers, p.ChecksPerSec, p.CacheHits)
}

// runParallel measures parallel-principal throughput on a warm
// decision template.
func runParallel() parallelRow {
	f := apps.Calendar()
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 5000
	chk := checker.New(f.Policy())
	warm := sqlparser.MustParseSelect("SELECT EId FROM Attendance WHERE UId = ?")
	chk.Check(context.Background(), warm, sqlparser.PositionalArgs(1), f.Session(1), nil)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(uid int64) {
			defer wg.Done()
			s := f.Session(uid)
			args := sqlparser.PositionalArgs(uid)
			for i := 0; i < perWorker; i++ {
				chk.Check(context.Background(), warm, args, s, nil)
			}
		}(int64(w + 1))
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := workers * perWorker
	return parallelRow{
		Workers:      workers,
		ChecksPerSec: float64(total) / elapsed.Seconds(),
		CacheHits:    chk.Stats().CacheHits,
	}
}

// runMetricsOverhead compares the default (instrumented) checker to an
// obsv.Disabled build on the hot-path workload: warm trace-dependent
// checks against a 50-entry history. The same comparison gates CI via
// TestMetricsOverheadGuard.
func runMetricsOverhead() overheadRow {
	f := apps.Calendar()
	sel := sqlparser.MustParseSelect("SELECT * FROM Events WHERE EId=2")
	sess := f.Session(1)
	tr := mkTrace(50)
	build := func(reg *obsv.Registry) *checker.Checker {
		opts := checker.DefaultOptions()
		opts.Metrics = reg
		c := checker.NewWithOptions(f.Policy(), opts)
		c.Check(context.Background(), sel, sqlparser.NoArgs, sess, tr) // warm
		return c
	}
	cOn, cOff := build(nil), build(obsv.Disabled())
	const (
		iters  = 50
		trials = 30
	)
	measure := func(c *checker.Checker) time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			c.Check(context.Background(), sel, sqlparser.NoArgs, sess, tr)
		}
		return time.Since(start)
	}
	measure(cOn) // warmup
	measure(cOff)
	minOn, minOff := time.Duration(1<<62), time.Duration(1<<62)
	for t := 0; t < trials; t++ {
		if t%2 == 0 {
			if d := measure(cOn); d < minOn {
				minOn = d
			}
			if d := measure(cOff); d < minOff {
				minOff = d
			}
		} else {
			if d := measure(cOff); d < minOff {
				minOff = d
			}
			if d := measure(cOn); d < minOn {
				minOn = d
			}
		}
	}
	return overheadRow{
		InstrumentedMicros: float64(minOn.Nanoseconds()) / 1e3 / iters,
		NoopMicros:         float64(minOff.Nanoseconds()) / 1e3 / iters,
		Ratio:              float64(minOn) / float64(minOff),
	}
}

// runPipeline measures proxy throughput over one TCP connection for a
// mixed 8-session workload (each session its own principal, warm
// decision templates) as the client's in-flight window varies. Window
// 1 ping-pongs like protocol v1; wider windows overlap client, wire,
// and server work.
func runPipeline() ([]pipelineRow, error) {
	ctx := context.Background()
	f := apps.Calendar()
	const (
		sessions = 8
		requests = 16000
	)
	// Mixed per-principal read workload, every shape covered by the
	// Calendar policy views so enforcement allows all of it. All three
	// are point lookups: the table isolates per-request protocol and
	// decision overhead, which is what the in-flight window amortizes.
	shapes := []string{
		"SELECT EId FROM Attendance WHERE UId = ?",
		"SELECT Name FROM Users WHERE UId = ?",
		"SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?",
	}

	run := func(mode proxy.Mode, window int) (float64, error) {
		db := f.MustNewDB(sessions)
		chk := checker.New(f.Policy())
		srv := proxy.NewServer(db, chk, mode)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		defer srv.Close()

		cl, err := proxy.Dial(addr, proxy.WithWindow(window))
		if err != nil {
			return 0, err
		}
		defer cl.Close()
		if err := cl.Hello(ctx, map[string]any{"MyUId": 1}); err != nil {
			return 0, err
		}
		lanes := make([]*proxy.Lane, sessions)
		for i := range lanes {
			lanes[i] = cl.Lane(uint64(i + 1))
			if err := lanes[i].Hello(ctx, map[string]any{"MyUId": i + 1}); err != nil {
				return 0, err
			}
		}

		// Producer pipelines sends; consumer drains responses. The
		// client's window semaphore keeps exactly `window` in flight.
		pend := make(chan *proxy.PendingRows, window)
		errc := make(chan error, 1)
		start := time.Now()
		go func() {
			defer close(pend)
			for i := 0; i < requests; i++ {
				ln := lanes[i%sessions]
				uid := i%sessions + 1
				args := []any{uid}
				if i%len(shapes) == 2 {
					args = append(args, i%5+1) // probe a rotating event
				}
				p, err := ln.QueryAsync(ctx, shapes[i%len(shapes)], args...)
				if err != nil {
					errc <- err
					return
				}
				pend <- p
			}
		}()
		for p := range pend {
			if _, err := p.Wait(ctx); err != nil {
				return 0, err
			}
		}
		select {
		case err := <-errc:
			return 0, err
		default:
		}
		return float64(requests) / time.Since(start).Seconds(), nil
	}

	var rows []pipelineRow
	for _, m := range []struct {
		mode  proxy.Mode
		label string
	}{
		{proxy.Off, "off"},
		{proxy.Enforce, "enforce"},
	} {
		var base float64
		for _, w := range []int{1, 2, 4, 8, 16} {
			// Best of three trials: each trial is a fresh server and
			// connection, so a GC pause or scheduler hiccup in one
			// trial doesn't misstate the steady-state capability.
			var rps float64
			for t := 0; t < 3; t++ {
				r, err := run(m.mode, w)
				if err != nil {
					return nil, err
				}
				if r > rps {
					rps = r
				}
			}
			if w == 1 {
				base = rps
			}
			rows = append(rows, pipelineRow{
				Mode: m.label, Window: w, ReqPerS: rps, Speedup: rps / base,
			})
		}
	}
	return rows, nil
}

func printPipeline() error {
	rows, err := runPipeline()
	if err != nil {
		return err
	}
	fmt.Println("Protocol v2 pipelining: mixed workload, 8 sessions multiplexed over one connection, 16000 requests")
	fmt.Printf("window 1 is the serial v1-equivalent baseline; speedup is vs window 1 in the same mode\n\n")
	labels := map[string]string{
		"off":     "enforcement off (protocol cost only)",
		"enforce": "enforcement on (checker + trace in path)",
	}
	lastMode := ""
	for _, r := range rows {
		if r.Mode != lastMode {
			if lastMode != "" {
				fmt.Println()
			}
			lastMode = r.Mode
			fmt.Printf("mode: %s\n", labels[r.Mode])
			fmt.Printf("%-8s %12s %9s\n", "window", "req/s", "speedup")
		}
		fmt.Printf("%-8d %12.0f %8.2fx\n", r.Window, r.ReqPerS, r.Speedup)
	}
	fmt.Println()
	return nil
}

func mkTrace(n int) *trace.Trace {
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		sql := fmt.Sprintf("SELECT 1 FROM Attendance WHERE UId=1 AND EId=%d", i+2)
		st := sqlparser.MustParseSelect(sql)
		tr.Append(trace.Entry{SQL: sql, Stmt: st, Args: sqlparser.NoArgs,
			Columns: []string{"1"}, Rows: [][]sqlvalue.Value{{sqlvalue.NewInt(1)}}})
	}
	return tr
}

// timeChecks reports the best-of-3 mean per-check latency at each
// history size (the minimum batch mean is the stablest location
// statistic on a shared container — a single batch is at the mercy of
// whatever else the machine is doing during those few milliseconds).
func timeChecks(f *apps.Fixture, sel *sqlparser.SelectStmt, sess map[string]sqlvalue.Value, tr *trace.Trace, useFactCache bool) time.Duration {
	opts := checker.DefaultOptions()
	opts.UseFactCache = useFactCache
	chk := checker.NewWithOptions(f.Policy(), opts)
	chk.Check(context.Background(), sel, sqlparser.NoArgs, sess, tr) // warm
	iters := 50
	if !useFactCache {
		iters = 10
	}
	best := time.Duration(1 << 62)
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			chk.Check(context.Background(), sel, sqlparser.NoArgs, sess, tr)
		}
		if d := time.Since(start) / time.Duration(iters); d < best {
			best = d
		}
	}
	return best
}
