// Command acbench runs the full evaluation suite E1–E8 (DESIGN.md) and
// prints every table. For calibrated latency numbers, prefer the
// testing.B benchmarks: go test -bench=. -benchmem .
//
// Usage:
//
//	acbench            # run everything
//	acbench -only E1   # one experiment
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (E1..E8)")
	flag.Parse()

	tables, err := experiments.RunAll()
	if err != nil {
		log.Fatal(err)
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id != "" {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	for _, t := range tables {
		if len(want) > 0 && !want[strings.ToUpper(t.ID)] && !want[strings.ToUpper(strings.TrimSuffix(t.ID, "b"))] {
			continue
		}
		fmt.Println(t)
	}
}
