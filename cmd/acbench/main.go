// Command acbench runs the full evaluation suite E1–E8 (DESIGN.md) and
// prints every table. For calibrated latency numbers, prefer the
// testing.B benchmarks: go test -bench=. -benchmem .
//
// Usage:
//
//	acbench            # run everything
//	acbench -only E1   # one experiment
//	acbench -hotpath   # enforcement hot-path scaling table only
//	acbench -pipeline  # protocol-v2 pipelining throughput table only
//
// -hotpath measures the per-check cost against growing session
// histories with the incremental trace-fact cache on and off, and the
// throughput of parallel principals hitting the sharded decision
// cache — the scaling story behind the proxy's production posture.
//
// -pipeline measures end-to-end proxy throughput for a mixed
// 8-session workload over one connection as the client's in-flight
// window grows: window 1 is the serial (v1-equivalent) baseline, and
// larger windows show what protocol v2's pipelining buys.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/checker"
	"repro/internal/experiments"
	"repro/internal/proxy"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (E1..E8)")
	hotpath := flag.Bool("hotpath", false, "run only the enforcement hot-path scaling table")
	pipeline := flag.Bool("pipeline", false, "run only the protocol-v2 pipelining throughput table")
	flag.Parse()

	if *hotpath {
		runHotPath()
		return
	}
	if *pipeline {
		if err := runPipeline(); err != nil {
			log.Fatal(err)
		}
		return
	}

	tables, err := experiments.RunAll()
	if err != nil {
		log.Fatal(err)
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id != "" {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	for _, t := range tables {
		if len(want) > 0 && !want[strings.ToUpper(t.ID)] && !want[strings.ToUpper(strings.TrimSuffix(t.ID, "b"))] {
			continue
		}
		fmt.Println(t)
	}
}

// runHotPath prints per-check latencies for long-history sessions
// (fact cache on/off) and parallel-principal throughput on a warm
// decision template.
func runHotPath() {
	f := apps.Calendar()
	sel := sqlparser.MustParseSelect("SELECT * FROM Events WHERE EId=2")
	sess := f.Session(1)

	fmt.Println("Hot path: per-check latency vs session history length")
	fmt.Printf("%-10s %15s %15s %10s\n", "history", "incremental", "naive", "speedup")
	for _, n := range []int{25, 50, 100, 200, 400} {
		tr := mkTrace(n)
		inc := timeChecks(f, sel, sess, tr, true)
		naive := timeChecks(f, sel, sess, tr, false)
		fmt.Printf("%-10d %15s %15s %9.1fx\n", n, inc, naive, float64(naive)/float64(inc))
	}

	fmt.Println()
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 5000
	chk := checker.New(f.Policy())
	warm := sqlparser.MustParseSelect("SELECT EId FROM Attendance WHERE UId = ?")
	chk.Check(context.Background(), warm, sqlparser.PositionalArgs(1), f.Session(1), nil)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(uid int64) {
			defer wg.Done()
			s := f.Session(uid)
			args := sqlparser.PositionalArgs(uid)
			for i := 0; i < perWorker; i++ {
				chk.Check(context.Background(), warm, args, s, nil)
			}
		}(int64(w + 1))
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := workers * perWorker
	fmt.Printf("Parallel principals: %d workers x %d checks in %s (%.0f checks/sec, cache hits %d)\n",
		workers, perWorker, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(), chk.Stats().CacheHits)
}

// runPipeline measures proxy throughput over one TCP connection for a
// mixed 8-session workload (each session its own principal, warm
// decision templates) as the client's in-flight window varies. Window
// 1 ping-pongs like protocol v1; wider windows overlap client, wire,
// and server work.
func runPipeline() error {
	ctx := context.Background()
	f := apps.Calendar()
	const (
		sessions = 8
		requests = 16000
	)
	// Mixed per-principal read workload, every shape covered by the
	// Calendar policy views so enforcement allows all of it. All three
	// are point lookups: the table isolates per-request protocol and
	// decision overhead, which is what the in-flight window amortizes.
	shapes := []string{
		"SELECT EId FROM Attendance WHERE UId = ?",
		"SELECT Name FROM Users WHERE UId = ?",
		"SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?",
	}

	run := func(mode proxy.Mode, window int) (float64, error) {
		db := f.MustNewDB(sessions)
		chk := checker.New(f.Policy())
		srv := proxy.NewServer(db, chk, mode)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		defer srv.Close()

		cl, err := proxy.Dial(addr, proxy.WithWindow(window))
		if err != nil {
			return 0, err
		}
		defer cl.Close()
		if err := cl.Hello(ctx, map[string]any{"MyUId": 1}); err != nil {
			return 0, err
		}
		lanes := make([]*proxy.Lane, sessions)
		for i := range lanes {
			lanes[i] = cl.Lane(uint64(i + 1))
			if err := lanes[i].Hello(ctx, map[string]any{"MyUId": i + 1}); err != nil {
				return 0, err
			}
		}

		// Producer pipelines sends; consumer drains responses. The
		// client's window semaphore keeps exactly `window` in flight.
		pend := make(chan *proxy.PendingRows, window)
		errc := make(chan error, 1)
		start := time.Now()
		go func() {
			defer close(pend)
			for i := 0; i < requests; i++ {
				ln := lanes[i%sessions]
				uid := i%sessions + 1
				args := []any{uid}
				if i%len(shapes) == 2 {
					args = append(args, i%5+1) // probe a rotating event
				}
				p, err := ln.QueryAsync(ctx, shapes[i%len(shapes)], args...)
				if err != nil {
					errc <- err
					return
				}
				pend <- p
			}
		}()
		for p := range pend {
			if _, err := p.Wait(ctx); err != nil {
				return 0, err
			}
		}
		select {
		case err := <-errc:
			return 0, err
		default:
		}
		return float64(requests) / time.Since(start).Seconds(), nil
	}

	fmt.Printf("Protocol v2 pipelining: mixed workload, %d sessions multiplexed over one connection, %d requests\n", sessions, requests)
	fmt.Printf("window 1 is the serial v1-equivalent baseline; speedup is vs window 1 in the same mode\n\n")
	for _, m := range []struct {
		mode  proxy.Mode
		label string
	}{
		{proxy.Off, "enforcement off (protocol cost only)"},
		{proxy.Enforce, "enforcement on (checker + trace in path)"},
	} {
		fmt.Printf("mode: %s\n", m.label)
		fmt.Printf("%-8s %12s %9s\n", "window", "req/s", "speedup")
		var base float64
		for _, w := range []int{1, 2, 4, 8, 16} {
			// Best of three trials: each trial is a fresh server and
			// connection, so a GC pause or scheduler hiccup in one
			// trial doesn't misstate the steady-state capability.
			var rps float64
			for t := 0; t < 3; t++ {
				r, err := run(m.mode, w)
				if err != nil {
					return err
				}
				if r > rps {
					rps = r
				}
			}
			if w == 1 {
				base = rps
			}
			fmt.Printf("%-8d %12.0f %8.2fx\n", w, rps, rps/base)
		}
		fmt.Println()
	}
	return nil
}

func mkTrace(n int) *trace.Trace {
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		sql := fmt.Sprintf("SELECT 1 FROM Attendance WHERE UId=1 AND EId=%d", i+2)
		st := sqlparser.MustParseSelect(sql)
		tr.Append(trace.Entry{SQL: sql, Stmt: st, Args: sqlparser.NoArgs,
			Columns: []string{"1"}, Rows: [][]sqlvalue.Value{{sqlvalue.NewInt(1)}}})
	}
	return tr
}

// timeChecks reports the mean per-check latency over enough
// iterations to be stable at each history size.
func timeChecks(f *apps.Fixture, sel *sqlparser.SelectStmt, sess map[string]sqlvalue.Value, tr *trace.Trace, useFactCache bool) time.Duration {
	opts := checker.DefaultOptions()
	opts.UseFactCache = useFactCache
	chk := checker.NewWithOptions(f.Policy(), opts)
	chk.Check(context.Background(), sel, sqlparser.NoArgs, sess, tr) // warm
	iters := 50
	if !useFactCache {
		iters = 10
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		chk.Check(context.Background(), sel, sqlparser.NoArgs, sess, tr)
	}
	return time.Since(start) / time.Duration(iters)
}
