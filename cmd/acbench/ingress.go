package main

import (
	"bufio"
	"context"
	"database/sql"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	beyond "repro"
	_ "repro/driver"
	"repro/internal/apps"
	"repro/internal/checker"
	"repro/internal/proxy"
)

// The ingress comparison measures serial request-response decide
// throughput for the same enforced statement through each ingress
// surface: the native v2 client, an unmodified database/sql program
// on the repro/driver, and a raw Postgres wire-protocol (v3) client
// using the simple-query flow. All three converge on one proxy core
// (one checker, one set of caches), so the spread between rows is
// pure protocol and client-stack overhead, not decision cost.

type ingressRow struct {
	Surface string  `json:"surface"`
	ReqPerS float64 `json:"reqPerSec"`
	RelV2   float64 `json:"relativeToV2"`
}

const (
	ingressRequests = 4000
	ingressTrials   = 3
	// A policy-allowed point lookup with no client-bound parameters,
	// so the simple-query pgwire flow issues the byte-identical
	// statement the other surfaces do.
	ingressSQL = "SELECT EId FROM Attendance WHERE UId = 1"
)

func runIngress() ([]ingressRow, error) {
	f := apps.Calendar()
	svc, err := beyond.Serve(f.MustNewDB(8), checker.New(f.Policy()), beyond.Enforce,
		beyond.WithV2Listener("127.0.0.1:0"),
		beyond.WithPgListener("127.0.0.1:0"))
	if err != nil {
		return nil, err
	}
	defer svc.Close()

	surfaces := []struct {
		name string
		run  func() (float64, error)
	}{
		{"v2", func() (float64, error) { return ingressV2(svc.V2Addr()) }},
		{"driver", func() (float64, error) { return ingressDriver(svc.V2Addr()) }},
		{"pgwire", func() (float64, error) { return ingressPg(svc.PgAddr()) }},
	}
	var rows []ingressRow
	var base float64
	for _, s := range surfaces {
		var best float64
		for t := 0; t < ingressTrials; t++ {
			rps, err := s.run()
			if err != nil {
				return nil, fmt.Errorf("ingress %s: %w", s.name, err)
			}
			if rps > best {
				best = rps
			}
		}
		if s.name == "v2" {
			base = best
		}
		rows = append(rows, ingressRow{Surface: s.name, ReqPerS: best, RelV2: best / base})
	}
	return rows, nil
}

func ingressV2(addr string) (float64, error) {
	ctx := context.Background()
	cl, err := proxy.Dial(addr)
	if err != nil {
		return 0, err
	}
	defer cl.Close()
	if err := cl.Hello(ctx, map[string]any{"MyUId": 1}); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < ingressRequests; i++ {
		if _, err := cl.Query(ctx, ingressSQL); err != nil {
			return 0, err
		}
	}
	return ingressRequests / time.Since(start).Seconds(), nil
}

func ingressDriver(addr string) (float64, error) {
	ctx := context.Background()
	db, err := sql.Open("beyond", addr+"?MyUId=1")
	if err != nil {
		return 0, err
	}
	defer db.Close()
	db.SetMaxOpenConns(1)
	start := time.Now()
	for i := 0; i < ingressRequests; i++ {
		rows, err := db.QueryContext(ctx, ingressSQL)
		if err != nil {
			return 0, err
		}
		for rows.Next() {
		}
		if err := rows.Close(); err != nil {
			return 0, err
		}
	}
	return ingressRequests / time.Since(start).Seconds(), nil
}

// ingressPg is a minimal pgwire simple-query client: startup with a
// session attribute, then Q / drain-to-ReadyForQuery per request.
func ingressPg(addr string) (float64, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	var body []byte
	body = binary.BigEndian.AppendUint32(body, 196608)
	for _, s := range []string{"user", "acbench", "attr.MyUId", "1"} {
		body = append(append(body, s...), 0)
	}
	body = append(body, 0)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)+4))
	if _, err := c.Write(append(hdr[:], body...)); err != nil {
		return 0, err
	}
	r := bufio.NewReader(c)
	drain := func() error {
		for {
			var h [5]byte
			if _, err := io.ReadFull(r, h[:]); err != nil {
				return err
			}
			n := binary.BigEndian.Uint32(h[1:])
			payload := make([]byte, n-4)
			if _, err := io.ReadFull(r, payload); err != nil {
				return err
			}
			switch h[0] {
			case 'E':
				return fmt.Errorf("pgwire error: %q", payload)
			case 'Z':
				return nil
			}
		}
	}
	if err := drain(); err != nil {
		return 0, err
	}
	var q []byte
	q = append(q, 'Q')
	q = binary.BigEndian.AppendUint32(q, uint32(len(ingressSQL)+5))
	q = append(append(q, ingressSQL...), 0)
	start := time.Now()
	for i := 0; i < ingressRequests; i++ {
		if _, err := c.Write(q); err != nil {
			return 0, err
		}
		if err := drain(); err != nil {
			return 0, err
		}
	}
	return ingressRequests / time.Since(start).Seconds(), nil
}

func printIngress() error {
	rows, err := runIngress()
	if err != nil {
		return err
	}
	fmt.Println("Ingress surfaces: serial decide throughput, one shared enforcement core")
	fmt.Printf("%-10s %12s %10s\n", "surface", "req/s", "vs v2")
	for _, r := range rows {
		fmt.Printf("%-10s %12.0f %9.2fx\n", r.Surface, r.ReqPerS, r.RelV2)
	}
	return nil
}
