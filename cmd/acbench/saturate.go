package main

import (
	"bytes"
	"context"
	"database/sql"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	beyond "repro"
	_ "repro/driver"
	"repro/internal/apps"
	"repro/internal/checker"
	"repro/internal/loadgen"
	"repro/internal/profparse"
	"repro/internal/proxy"
)

// The saturation harness answers "where is the serving ceiling?" per
// ingress: a stepped open-loop ramp binary-searches the KNEE — the
// highest offered QPS whose p99 stays under the SLO with zero errors
// and no late-generator disqualification (a step where the generator
// itself fell behind schedule proves nothing about the server and
// fails the step). Every step runs under an in-process CPU profile;
// the knee step's top flat functions name the limiting resource
// without shelling out to `go tool pprof`.
//
// The search reuses one live server and one set of warmed connections
// per ingress, so successive steps measure load response, not setup.

// satMaxLatenessMicros disqualifies a step whose generator fell more
// than this far behind its own schedule: beyond it, "offered QPS" is
// fiction and the step can neither pass nor locate the knee. Same
// bound the openloop diff gate uses for credibility.
const satMaxLatenessMicros = 50_000

// satConfig parameterizes one knee search.
type satConfig struct {
	Ingresses []string      // subset of v2, driver, pg
	SLO       time.Duration // p99 budget a passing step must meet
	Budget    time.Duration // wall-clock bound per (ingress, variant) search
	Step      time.Duration // target duration of one load step
	StartQPS  float64
	Ablate    bool // disable inline fast path + encode pooling (ceiling-lift ablation)
}

func defaultSatConfig() satConfig {
	return satConfig{
		Ingresses: []string{"v2", "driver", "pg"},
		SLO:       5 * time.Millisecond,
		Budget:    45 * time.Second,
		Step:      4 * time.Second,
		StartQPS:  500,
	}
}

// satFn is one function's share of a step's CPU profile.
type satFn struct {
	Name    string  `json:"name"`
	Percent float64 `json:"percent"`
}

// satStep is one measured load step in the ramp.
type satStep struct {
	OfferedQPS        float64 `json:"offeredQPS"`
	AchievedQPS       float64 `json:"achievedQPS"`
	Ops               int     `json:"ops"`
	Errors            int     `json:"errors"`
	P50Micros         int64   `json:"p50Micros"`
	P99Micros         int64   `json:"p99Micros"`
	MaxMicros         int64   `json:"maxMicros"`
	MaxLatenessMicros int64   `json:"maxLatenessMicros"`
	Pass              bool    `json:"pass"`
	// Fail names the first criterion the step missed ("" when passing):
	// "p99>slo", "errors", or "generator-late".
	Fail string  `json:"fail,omitempty"`
	Top  []satFn `json:"top,omitempty"`
}

// satRow is one (ingress, slo, variant) knee result for BENCH_9.json.
type satRow struct {
	Ingress       string    `json:"ingress"`
	SLOMicros     int64     `json:"sloMicros"`
	Ablated       bool      `json:"ablated,omitempty"`
	KneeQPS       float64   `json:"kneeQPS"`
	KneeP99Micros int64     `json:"kneeP99Micros"`
	Steps         []satStep `json:"steps"`
	// Top is the knee step's heaviest flat CPU functions — the limiting
	// resource at the highest sustainable load.
	Top []satFn `json:"top,omitempty"`
}

// satTarget is one live ingress stack the search steps against.
type satTarget struct {
	name     string
	sessions int
	target   loadgen.Target
	close    func()
}

// satUsers is the principal population (matches the openloop table);
// satSessions is the session/connection count per ingress — small on
// purpose: the knee search measures the serving path, and ROADMAP
// notes the 1M-lane scale is setup- and GC-noise-dominated on small
// containers.
const (
	satUsers    = 64
	satSessions = 128
)

// newSatTarget builds the live stack for one ingress, with the
// ceiling-lift optimizations on or ablated off. Ablation reverts every
// lift this harness motivated — the proxy inline fast path, response
// encode pooling, and the engine's bound equality scan — so the
// optimized-vs-ablated knee spread is the full measured ceiling lift.
func newSatTarget(ingress string, ablate bool) (*satTarget, error) {
	f := apps.Calendar()
	db := f.MustNewDB(satUsers)
	db.DisableEqScan = ablate
	chk := checker.New(f.Policy())
	switch ingress {
	case "v2":
		return newSatV2(db, chk, ablate)
	case "driver":
		return newSatDriver(db, chk, ablate)
	case "pg":
		return newSatPg(db, chk, ablate)
	}
	return nil, fmt.Errorf("unknown saturate ingress %q (want v2, driver, or pg)", ingress)
}

func newSatV2(db *beyond.DB, chk *beyond.Checker, ablate bool) (*satTarget, error) {
	ctx := context.Background()
	srv := proxy.NewServer(db, chk, proxy.Enforce)
	srv.DisableInlineFast = ablate
	srv.DisableEncodePooling = ablate
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	cl, err := proxy.Dial(addr, proxy.WithWindow(256))
	if err != nil {
		srv.Close()
		return nil, err
	}
	closeAll := func() { cl.Close(); srv.Close() }
	if err := cl.Hello(ctx, map[string]any{"MyUId": 1}); err != nil {
		closeAll()
		return nil, err
	}
	if err := loadgen.SetupSessions(ctx, cl, satSessions, func(i int) map[string]any {
		return map[string]any{"MyUId": i%satUsers + 1}
	}); err != nil {
		closeAll()
		return nil, err
	}
	return &satTarget{
		name:     "v2",
		sessions: satSessions,
		target: &loadgen.ProxyTarget{
			Client: cl,
			Query: func(op loadgen.Op) (string, []any) {
				return "SELECT EId FROM Attendance WHERE UId = ?", []any{op.Session%satUsers + 1}
			},
		},
		close: closeAll,
	}, nil
}

// newSatDriver drives the same core through database/sql on the
// repro/driver: the schedule's sessions are pooled driver connections,
// all bound to one principal (the pool hands out whichever connection
// is free, so per-session principals would be a lie here).
func newSatDriver(db *beyond.DB, chk *beyond.Checker, ablate bool) (*satTarget, error) {
	srv := proxy.NewServer(db, chk, proxy.Enforce)
	srv.DisableInlineFast = ablate
	srv.DisableEncodePooling = ablate
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	const conns = 64
	pool, err := sql.Open("beyond", addr+"?MyUId=1")
	if err != nil {
		srv.Close()
		return nil, err
	}
	pool.SetMaxOpenConns(conns)
	pool.SetMaxIdleConns(conns)
	if err := pool.Ping(); err != nil {
		pool.Close()
		srv.Close()
		return nil, err
	}
	return &satTarget{
		name:     "driver",
		sessions: conns,
		target: loadgen.TargetFunc(func(ctx context.Context, op loadgen.Op) error {
			rows, err := pool.QueryContext(ctx, "SELECT EId FROM Attendance WHERE UId = 1")
			if err != nil {
				return err
			}
			for rows.Next() {
			}
			return rows.Close()
		}),
		close: func() { pool.Close(); srv.Close() },
	}, nil
}

func newSatPg(db *beyond.DB, chk *beyond.Checker, ablate bool) (*satTarget, error) {
	svc, err := beyond.Serve(db, chk, beyond.Enforce,
		beyond.WithPgListener("127.0.0.1:0"),
		beyond.WithPgMaxConns(satSessions+8))
	if err != nil {
		return nil, err
	}
	svc.Proxy().DisableInlineFast = ablate
	svc.Proxy().DisableEncodePooling = ablate
	pool := &pgPoolTarget{conns: make([]*pgLoadConn, satSessions)}
	closeAll := func() { pool.close(); svc.Close() }
	for i := 0; i < satSessions; i++ {
		uid := i%satUsers + 1
		conn, err := dialPgLoad(svc.PgAddr(), uid,
			fmt.Sprintf("SELECT EId FROM Attendance WHERE UId = %d", uid))
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("pg conn %d: %w", i, err)
		}
		pool.conns[i] = conn
	}
	return &satTarget{name: "pg", sessions: satSessions, target: pool, close: closeAll}, nil
}

// satProfileSink, when non-"", makes each step also dump its raw CPU
// profile to <sink>.<ingress>[-ablated].<qps>qps.pprof for offline
// `go tool pprof` (the -cpuprofile flag in saturate mode).
var satProfileSink string

// runStep measures one offered-QPS step against a live target: a fresh
// Poisson schedule sized to roughly cfg.Step of traffic, profiled
// in-process, judged against the SLO.
func runStep(t *satTarget, cfg satConfig, qps float64, stepIdx int, ablated bool) (satStep, error) {
	ops := int(qps * cfg.Step.Seconds())
	if ops < 200 {
		ops = 200
	}
	if ops > 400_000 {
		ops = 400_000
	}
	// Seed varies by step so successive steps do not replay identical
	// arrival patterns, but a given (ingress, step index) is
	// reproducible run to run.
	sched, err := loadgen.NewSchedule(ops, qps, t.sessions, int64(stepIdx)+1)
	if err != nil {
		return satStep{}, err
	}
	var prof bytes.Buffer
	profiling := pprof.StartCPUProfile(&prof) == nil
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:   t.target,
		Schedule: sched,
		Workers:  128,
		Warmup:   ops / 20,
	})
	if profiling {
		pprof.StopCPUProfile()
	}
	if err != nil {
		return satStep{}, err
	}
	st := satStep{
		OfferedQPS:        qps,
		AchievedQPS:       res.AchievedQPS,
		Ops:               res.Ops,
		Errors:            res.Errors,
		P50Micros:         res.Latency.Quantile(0.50),
		P99Micros:         res.Latency.Quantile(0.99),
		MaxMicros:         res.Latency.Max(),
		MaxLatenessMicros: res.MaxLateness.Microseconds(),
	}
	switch {
	case st.Errors > 0:
		st.Fail = "errors"
	case st.MaxLatenessMicros > satMaxLatenessMicros:
		st.Fail = "generator-late"
	case st.P99Micros > cfg.SLO.Microseconds():
		st.Fail = "p99>slo"
	default:
		st.Pass = true
	}
	if profiling {
		st.Top = profTop(prof.Bytes())
		if satProfileSink != "" {
			name := fmt.Sprintf("%s.%s.%.0fqps.pprof", satProfileSink, variantName(t.name, ablated), qps)
			if werr := os.WriteFile(name, prof.Bytes(), 0o644); werr != nil {
				fmt.Fprintf(os.Stderr, "saturate: write %s: %v\n", name, werr)
			}
		}
	}
	return st, nil
}

func variantName(ingress string, ablated bool) string {
	if ablated {
		return ingress + "-ablated"
	}
	return ingress
}

// profTop reduces a raw CPU profile to its top-5 flat functions with
// their share of total profiled time.
func profTop(data []byte) []satFn {
	entries, err := profparse.Parse(data)
	if err != nil || len(entries) == 0 {
		return nil
	}
	var total int64
	for _, e := range entries {
		total += e.Flat
	}
	if total == 0 {
		return nil
	}
	if len(entries) > 5 {
		entries = entries[:5]
	}
	out := make([]satFn, 0, len(entries))
	for _, e := range entries {
		out = append(out, satFn{Name: e.Name, Percent: 100 * float64(e.Flat) / float64(total)})
	}
	return out
}

// satSearch locates the knee for one (ingress, variant): exponential
// ramp from StartQPS until a step fails, then binary search between
// the bracketing pass/fail until the bracket is within 10% or the
// wall-clock budget runs out. The knee is the highest passing step.
func satSearch(ingress string, cfg satConfig, progress func(string)) (satRow, error) {
	t, err := newSatTarget(ingress, cfg.Ablate)
	if err != nil {
		return satRow{}, fmt.Errorf("saturate %s: setup: %w", variantName(ingress, cfg.Ablate), err)
	}
	defer t.close()

	// One unrecorded warmup pass at a modest rate: the first requests on
	// a fresh stack pay policy compilation, cache fills, and allocator
	// growth that belong to setup, not to any load step — without this
	// the first recorded step's p99 measures cold start and the ramp
	// brackets the wrong knee.
	if warm, err := loadgen.NewSchedule(1000, cfg.StartQPS/2, t.sessions, 0); err == nil {
		if _, err := loadgen.Run(context.Background(), loadgen.Config{
			Target: t.target, Schedule: warm, Workers: 128,
		}); err != nil {
			return satRow{}, fmt.Errorf("saturate %s: warmup: %w", variantName(ingress, cfg.Ablate), err)
		}
	}

	row := satRow{Ingress: ingress, SLOMicros: cfg.SLO.Microseconds(), Ablated: cfg.Ablate}
	deadline := time.Now().Add(cfg.Budget)
	var (
		lo, hi float64 // highest pass, lowest fail (0 = none yet)
		knee   *satStep
		q      = cfg.StartQPS
	)
search:
	for step := 0; ; step++ {
		st, err := runStep(t, cfg, q, step, cfg.Ablate)
		if err != nil {
			return satRow{}, fmt.Errorf("saturate %s @%.0f qps: %w", variantName(ingress, cfg.Ablate), q, err)
		}
		row.Steps = append(row.Steps, st)
		if progress != nil {
			status := "FAIL " + st.Fail
			if st.Pass {
				status = "pass"
			}
			progress(fmt.Sprintf("  %-14s %8.0f qps  p99=%6dµs  achieved=%7.0f/s  %s",
				variantName(ingress, cfg.Ablate), q, st.P99Micros, st.AchievedQPS, status))
		}
		if st.Pass {
			lo = q
			knee = &row.Steps[len(row.Steps)-1]
		} else if hi == 0 || q < hi {
			hi = q
		}
		if time.Now().After(deadline) {
			break
		}
		switch {
		case hi == 0:
			q = lo * 2 // still ramping
		case lo == 0:
			q = hi / 2 // even the start failed: ramp down
			if q < 25 {
				// The floor: below this the target is unusable; report
				// what we saw rather than probing forever.
				break search
			}
		case hi/lo <= 1.10:
			// Bracket tight enough; the knee is located.
			break search
		default:
			q = (lo + hi) / 2
		}
	}
	if knee != nil {
		row.KneeQPS = knee.OfferedQPS
		row.KneeP99Micros = knee.P99Micros
		row.Top = knee.Top
	}
	return row, nil
}

// runSaturate runs the knee search over the configured ingresses,
// returning one row per (ingress, variant).
func runSaturate(cfg satConfig, progress func(string)) ([]satRow, error) {
	var rows []satRow
	for _, ing := range cfg.Ingresses {
		row, err := satSearch(ing, cfg, progress)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// printSatLift summarizes the optimized-vs-ablated knee per ingress —
// the measured ceiling lift from the inline fast path + encode
// pooling, by the same harness that located both knees.
func printSatLift(rows []satRow) {
	knee := map[string]float64{}
	for _, r := range rows {
		knee[variantName(r.Ingress, r.Ablated)] = r.KneeQPS
	}
	for _, r := range rows {
		if r.Ablated {
			continue
		}
		abl := knee[r.Ingress+"-ablated"]
		if abl <= 0 || r.KneeQPS <= 0 {
			continue
		}
		fmt.Printf("acbench: saturation lift %s: knee %.0f qps optimized vs %.0f qps ablated (%.2fx)\n",
			r.Ingress, r.KneeQPS, abl, r.KneeQPS/abl)
	}
}

func printSaturate(cfg satConfig) error {
	fmt.Printf("Saturation knee search: SLO p99 ≤ %s, step ≈ %s, budget %s per ingress\n",
		cfg.SLO, cfg.Step, cfg.Budget)
	fmt.Printf("(pass = p99 under SLO, zero errors, generator never >%dms behind schedule)\n\n",
		satMaxLatenessMicros/1000)
	rows, err := runSaturate(cfg, func(s string) { fmt.Println(s) })
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Printf("%-14s %12s %12s  limiting resource (flat CPU)\n", "ingress", "knee qps", "knee p99")
	for _, r := range rows {
		top := "-"
		if len(r.Top) > 0 {
			top = fmt.Sprintf("%s (%.0f%%)", r.Top[0].Name, r.Top[0].Percent)
		}
		fmt.Printf("%-14s %12.0f %10dµs  %s\n", variantName(r.Ingress, r.Ablated), r.KneeQPS, r.KneeP99Micros, top)
	}
	return nil
}
