package main

import (
	"context"
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/checker"
	"repro/internal/loadgen"
	"repro/internal/proxy"
)

// The open-loop table answers the paper's production question — what
// latency does enforcement add under load the server does not control?
// — the way a production study would: a fixed Poisson arrival schedule
// (internal/loadgen) drives the proxy over protocol v2, latency is
// measured from each operation's INTENDED send time so a stalled
// server cannot slow the clock that judges it, and the session count
// scales past what goroutine-per-session serving could survive.

// openloopRow is one scale's measurement in the benchmark document.
// Ingress is "v2" or "pg"; documents predating the pgwire sweep have
// no ingress field, which reads back as "" and means v2.
type openloopRow struct {
	Ingress           string  `json:"ingress,omitempty"`
	Sessions          int     `json:"sessions"`
	Ops               int     `json:"ops"`
	Errors            int     `json:"errors"`
	OfferedQPS        float64 `json:"offeredQPS"`
	AchievedQPS       float64 `json:"achievedQPS"`
	P50Micros         int64   `json:"p50Micros"`
	P90Micros         int64   `json:"p90Micros"`
	P99Micros         int64   `json:"p99Micros"`
	P999Micros        int64   `json:"p999Micros"`
	MaxMicros         int64   `json:"maxMicros"`
	MaxLatenessMicros int64   `json:"maxLatenessMicros"`
	SetupSeconds      float64 `json:"setupSeconds"`
}

// openloopConfig parameterizes the sweep; flags override the defaults
// so CI can run a seconds-long smoke while bench-json runs the full
// 10k/100k/1M sweep.
type openloopConfig struct {
	Ingress string // "v2" (lanes over one connection) or "pg" (one wire connection per session)
	Scales  []int
	Ops     int
	QPS     float64
}

func defaultOpenloopConfig() openloopConfig {
	return openloopConfig{Ingress: "v2", Scales: []int{10_000, 100_000, 1_000_000}, Ops: 10_000, QPS: 2000}
}

// runOpenLoop sweeps the session scales, one fresh proxy per scale.
func runOpenLoop(cfg openloopConfig) ([]openloopRow, error) {
	scale := runOpenLoopScale
	if cfg.Ingress == "pg" {
		scale = runOpenLoopScalePg
	}
	var rows []openloopRow
	for _, sessions := range cfg.Scales {
		row, err := scale(cfg, sessions)
		if err != nil {
			return nil, fmt.Errorf("openloop %s %d sessions: %w", cfg.Ingress, sessions, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runOpenLoopScale(cfg openloopConfig, sessions int) (openloopRow, error) {
	ctx := context.Background()
	f := apps.Calendar()
	// The principal population is small and fixed: scale stresses the
	// SESSION count (lanes, traces, per-session state), not the data
	// size, so sessions map onto users by modulo.
	const users = 64
	db := f.MustNewDB(users)
	srv := proxy.NewServer(db, checker.New(f.Policy()), proxy.Enforce)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return openloopRow{}, err
	}
	defer srv.Close()

	cl, err := proxy.Dial(addr, proxy.WithWindow(256))
	if err != nil {
		return openloopRow{}, err
	}
	defer cl.Close()
	if err := cl.Hello(ctx, map[string]any{"MyUId": 1}); err != nil {
		return openloopRow{}, err
	}

	setupStart := time.Now()
	if err := loadgen.SetupSessions(ctx, cl, sessions, func(i int) map[string]any {
		return map[string]any{"MyUId": i%users + 1}
	}); err != nil {
		return openloopRow{}, err
	}
	setup := time.Since(setupStart)

	sched, err := loadgen.NewSchedule(cfg.Ops, cfg.QPS, sessions, 1)
	if err != nil {
		return openloopRow{}, err
	}
	target := &loadgen.ProxyTarget{
		Client: cl,
		Query: func(op loadgen.Op) (string, []any) {
			return "SELECT EId FROM Attendance WHERE UId = ?", []any{op.Session%users + 1}
		},
	}
	res, err := loadgen.Run(ctx, loadgen.Config{
		Target:   target,
		Schedule: sched,
		Workers:  128,
		Warmup:   cfg.Ops / 20,
	})
	if err != nil {
		return openloopRow{}, err
	}
	return openloopRow{
		Ingress:           "v2",
		Sessions:          sessions,
		Ops:               res.Ops,
		Errors:            res.Errors,
		OfferedQPS:        res.OfferedQPS,
		AchievedQPS:       res.AchievedQPS,
		P50Micros:         res.Latency.Quantile(0.50),
		P90Micros:         res.Latency.Quantile(0.90),
		P99Micros:         res.Latency.Quantile(0.99),
		P999Micros:        res.Latency.Quantile(0.999),
		MaxMicros:         res.Latency.Max(),
		MaxLatenessMicros: res.MaxLateness.Microseconds(),
		SetupSeconds:      setup.Seconds(),
	}, nil
}

func printOpenLoop(cfg openloopConfig) error {
	rows, err := runOpenLoop(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Open-loop load (%s ingress): Poisson arrivals at %.0f QPS, %d ops per scale, latency from intended send time\n",
		cfg.Ingress, cfg.QPS, cfg.Ops)
	fmt.Printf("(coordinated-omission-safe: server stalls appear as latency, not as a slower load clock)\n\n")
	fmt.Printf("%-10s %8s %6s %10s %8s %8s %8s %8s %8s %9s %8s\n",
		"sessions", "ops", "errs", "achieved", "p50", "p90", "p99", "p999", "max", "lateness", "setup")
	for _, r := range rows {
		fmt.Printf("%-10d %8d %6d %9.0f/s %7dµs %7dµs %7dµs %7dµs %7dµs %8dµs %7.1fs\n",
			r.Sessions, r.Ops, r.Errors, r.AchievedQPS,
			r.P50Micros, r.P90Micros, r.P99Micros, r.P999Micros, r.MaxMicros,
			r.MaxLatenessMicros, r.SetupSeconds)
	}
	return nil
}
