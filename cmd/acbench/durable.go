package main

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/durable"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// The durability ablation: identical append workloads against the WAL
// under each fsync policy. The interesting comparison is
// fsync-per-append (MaxBatch=1 — every session append pays its own
// fsync, the naive design) versus group commit (concurrent appends
// coalesce into one write + one fsync), which is what makes
// always-durable enforcement affordable.

type durableRow struct {
	Mode          string  `json:"mode"`
	Fsync         string  `json:"fsync"`
	Sessions      int     `json:"sessions"`
	Appends       int     `json:"appends"`
	AppendsPerSec float64 `json:"appendsPerSec"`
	AvgFsyncBatch float64 `json:"avgFsyncBatch"`
	Speedup       float64 `json:"speedupVsFsyncPerAppend"`
}

// runDurable measures WAL append throughput for concurrent sessions
// under each fsync configuration. Every run uses a fresh WAL directory
// and the same entry workload; each configuration is repeated and the
// median kept, because fsync cost on a shared container fluctuates.
func runDurable() ([]durableRow, error) {
	const sessions = 16
	const perSession = 125
	const reps = 3
	stmt, err := sqlparser.ParseSelectCached("SELECT id, title FROM events WHERE uid = ?")
	if err != nil {
		return nil, err
	}
	entry := trace.Entry{
		SQL:     "SELECT id, title FROM events WHERE uid = ?",
		Stmt:    stmt,
		Args:    sqlparser.Args{Positional: []sqlvalue.Value{sqlvalue.NewInt(7)}},
		Columns: []string{"id", "title"},
		Rows: [][]sqlvalue.Value{
			{sqlvalue.NewInt(1), sqlvalue.NewText("standup")},
			{sqlvalue.NewInt(2), sqlvalue.NewText("review")},
		},
	}

	configs := []struct {
		mode string
		opts durable.Options
	}{
		{"fsync-per-append", durable.Options{Fsync: durable.FsyncAlways, MaxBatch: 1}},
		{"group-commit", durable.Options{Fsync: durable.FsyncAlways}},
		{"interval", durable.Options{Fsync: durable.FsyncInterval}},
		{"off", durable.Options{Fsync: durable.FsyncOff}},
	}

	// oneRun executes the workload against a fresh WAL and reports
	// appends/sec plus the observed appends-per-fsync ratio.
	oneRun := func(opts durable.Options) (perSec, avgBatch float64, err error) {
		dir, err := os.MkdirTemp("", "acbench-wal-")
		if err != nil {
			return 0, 0, err
		}
		defer os.RemoveAll(dir)
		m, err := durable.Open(dir, opts)
		if err != nil {
			return 0, 0, err
		}
		defer m.Close()
		traces := make([]*trace.Trace, sessions)
		for i := range traces {
			tr, _, err := m.Session(fmt.Sprintf("bench-%d", i), nil)
			if err != nil {
				return 0, 0, err
			}
			traces[i] = tr
		}
		start := time.Now()
		var wg sync.WaitGroup
		for _, tr := range traces {
			wg.Add(1)
			go func(tr *trace.Trace) {
				defer wg.Done()
				for i := 0; i < perSession; i++ {
					tr.Append(entry)
				}
			}(tr)
		}
		wg.Wait()
		if err := m.Flush(); err != nil {
			return 0, 0, err
		}
		elapsed := time.Since(start)
		st := m.Stats()
		perSec = float64(sessions*perSession) / elapsed.Seconds()
		if st.Fsyncs > 0 {
			avgBatch = float64(st.Appends) / float64(st.Fsyncs)
		}
		return perSec, avgBatch, nil
	}

	rows := make([]durableRow, 0, len(configs))
	var baseline float64
	for _, cfg := range configs {
		perSecs := make([]float64, 0, reps)
		var avgBatch float64
		for r := 0; r < reps; r++ {
			perSec, batch, err := oneRun(cfg.opts)
			if err != nil {
				return nil, err
			}
			perSecs = append(perSecs, perSec)
			avgBatch = batch
		}
		sort.Float64s(perSecs)
		row := durableRow{
			Mode:          cfg.mode,
			Fsync:         cfg.opts.Fsync.String(),
			Sessions:      sessions,
			Appends:       sessions * perSession,
			AppendsPerSec: perSecs[len(perSecs)/2],
			AvgFsyncBatch: avgBatch,
		}
		if cfg.mode == "fsync-per-append" {
			baseline = row.AppendsPerSec
		}
		if baseline > 0 {
			row.Speedup = row.AppendsPerSec / baseline
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func printDurable() error {
	rows, err := runDurable()
	if err != nil {
		return err
	}
	fmt.Println("WAL append throughput (concurrent sessions, per fsync policy)")
	fmt.Printf("%-18s %-9s %9s %10s %14s %9s\n",
		"mode", "fsync", "appends", "app/sec", "appends/fsync", "speedup")
	for _, r := range rows {
		fmt.Printf("%-18s %-9s %9d %10.0f %14.1f %8.1fx\n",
			r.Mode, r.Fsync, r.Appends, r.AppendsPerSec, r.AvgFsyncBatch, r.Speedup)
	}
	return nil
}
