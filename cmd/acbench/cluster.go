package main

import (
	"context"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	beyond "repro"
	"repro/internal/apps"
	"repro/internal/loadgen"
	"repro/internal/proxy"
)

// The cluster sweep answers "what does an enforcement CLUSTER sustain?"
// the same way -saturate answers it for one node: per node count it
// brings up N in-process Serve stacks joined into one ring (durable
// WAL, FsyncOff, live WAL shipping between peers), spreads named
// durable sessions across all N entry points, and knee-searches the
// highest aggregate offered QPS whose p99 holds the SLO. Sessions are
// MIXED by construction — the ring places each name independently of
// the node its client happens to enter through — so roughly (N-1)/N of
// traffic pays the forwarding hop, and the row reports the local vs
// forwarded split plus the nodes' own forward/ship accounting.
//
// Every node shares one process (and on small containers one core), so
// the sweep measures protocol and shipping overhead honestly but can
// only show aggregate scaling when GOMAXPROCS allows real parallelism;
// the row records GoMaxProcs context via the enclosing document.

// clusterBenchConfig parameterizes the sweep.
type clusterBenchConfig struct {
	Nodes    []int         // cluster sizes to sweep
	Sessions int           // durable sessions spread across the cluster
	SLO      time.Duration // p99 budget a passing step must hold
	Budget   time.Duration // wall-clock bound per node count
	Step     time.Duration // target duration of one load step
	StartQPS float64
}

func defaultClusterBenchConfig() clusterBenchConfig {
	return clusterBenchConfig{
		Nodes:    []int{1, 2, 4, 8},
		Sessions: 192,
		SLO:      5 * time.Millisecond,
		Budget:   25 * time.Second,
		Step:     2 * time.Second,
		StartQPS: 250,
	}
}

// clusterRow is one node count's measurement in the benchmark
// document. KneeQPS is the aggregate sustained rate at the SLO;
// LocalQPS/ForwardedQPS split it by session placement at the knee.
// ForwardedOps and the Ship* counters come from the nodes' own
// cluster.status accounting over the whole search, pinning that the
// sweep really exercised forwarding and WAL shipping.
type clusterRow struct {
	Nodes             int       `json:"nodes"`
	Sessions          int       `json:"sessions"`
	LocalSessions     int       `json:"localSessions"`
	ForwardedSessions int       `json:"forwardedSessions"`
	SLOMicros         int64     `json:"sloMicros"`
	KneeQPS           float64   `json:"kneeQPS"`
	KneeP99Micros     int64     `json:"kneeP99Micros"`
	LocalQPS          float64   `json:"localQPS"`
	ForwardedQPS      float64   `json:"forwardedQPS"`
	ForwardedOps      int64     `json:"forwardedOps"`
	ShipEnqueued      int64     `json:"shipEnqueued,omitempty"`
	ShipAcked         int64     `json:"shipAcked,omitempty"`
	ShipDropped       int64     `json:"shipDropped,omitempty"`
	Steps             []satStep `json:"steps"`
}

// clusterTarget drives one live cluster: a client per node, each
// schedule session keyed to a named durable session through a fixed
// entry node, with the local/forwarded split precomputed from the ring.
type clusterTarget struct {
	svcs    []*beyond.Service
	clients []*proxy.Client
	entry   []int  // session -> client index
	local   []bool // session -> served by its entry node?
	users   int

	localOps atomic.Int64
	fwdOps   atomic.Int64
}

// Do implements loadgen.Target: one point SELECT on the session's lane
// through its entry node. Placement cost (forwarding) is inside the
// measured latency, exactly as a cluster client would experience it.
func (t *clusterTarget) Do(ctx context.Context, op loadgen.Op) error {
	cl := t.clients[t.entry[op.Session]]
	if t.local[op.Session] {
		t.localOps.Add(1)
	} else {
		t.fwdOps.Add(1)
	}
	_, err := cl.Lane(uint64(op.Session)+1).Query(ctx,
		"SELECT EId FROM Attendance WHERE UId = ?", op.Session%t.users+1)
	return err
}

func (t *clusterTarget) close() {
	for _, cl := range t.clients {
		if cl != nil {
			cl.Close()
		}
	}
	for _, svc := range t.svcs {
		if svc != nil {
			svc.Close()
		}
	}
}

// opSplit snapshots and resets the per-step placement counters.
func (t *clusterTarget) opSplit() (local, fwd int64) {
	return t.localOps.Swap(0), t.fwdOps.Swap(0)
}

// newClusterTarget stands up n clustered Serve stacks (each with its
// own database, checker, WAL dir) plus one client per node, and keys
// cfg.Sessions durable sessions round-robin across the entry points.
func newClusterTarget(n int, cfg clusterBenchConfig) (*clusterTarget, []string, func(), error) {
	ctx := context.Background()
	f := apps.Calendar()
	const users = 64

	ids := make([]string, n)
	members := make([]beyond.ClusterMember, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench%d", i)
		members[i] = beyond.ClusterMember{ID: ids[i]}
	}
	t := &clusterTarget{users: users}
	var dirs []string
	cleanup := func() {
		t.close()
		for _, d := range dirs {
			os.RemoveAll(d)
		}
	}
	for _, id := range ids {
		dir, err := os.MkdirTemp("", "acbench-cluster-*")
		if err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		dirs = append(dirs, dir)
		svc, err := beyond.Serve(f.MustNewDB(users), beyond.NewChecker(f.Policy()), beyond.Enforce,
			beyond.WithV2Listener("127.0.0.1:0",
				beyond.WithDurability(dir, beyond.WithFsync(beyond.FsyncOff))),
			beyond.WithCluster(beyond.ClusterConfig{
				Self:    id,
				Members: members,
				// No failover in the bench: probes just keep the view
				// alive, and the forward window is sized for load.
				LeaseTTL:      2 * time.Second,
				ProbeInterval: 250 * time.Millisecond,
				ShipFlush:     2 * time.Millisecond,
				ForwardWindow: 256,
			}))
		if err != nil {
			cleanup()
			return nil, nil, nil, fmt.Errorf("node %s: %w", id, err)
		}
		t.svcs = append(t.svcs, svc)
	}
	live := make([]beyond.ClusterMember, n)
	for i, id := range ids {
		live[i] = beyond.ClusterMember{ID: id, Addr: t.svcs[i].V2Addr()}
	}
	for _, svc := range t.svcs {
		svc.ClusterNode().SetMembers(live)
	}

	ring := t.svcs[0].ClusterNode().Ring()
	t.entry = make([]int, cfg.Sessions)
	t.local = make([]bool, cfg.Sessions)
	for i := 0; i < n; i++ {
		cl, err := proxy.Dial(t.svcs[i].V2Addr(), proxy.WithWindow(256))
		if err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		t.clients = append(t.clients, cl)
		if err := cl.Hello(ctx, map[string]any{"MyUId": 1}); err != nil {
			cleanup()
			return nil, nil, nil, err
		}
	}
	for s := 0; s < cfg.Sessions; s++ {
		node := s % n
		name := fmt.Sprintf("clb-%04d", s)
		t.entry[s] = node
		t.local[s] = ring.Owner(name) == ids[node]
		cl := t.clients[node]
		if _, err := cl.Lane(uint64(s)+1).HelloDurable(ctx, name,
			map[string]any{"MyUId": s%users + 1}); err != nil {
			cleanup()
			return nil, nil, nil, fmt.Errorf("session %s via %s: %w", name, ids[node], err)
		}
	}
	return t, ids, cleanup, nil
}

// clusterShipStats sums forward/ship accounting across the nodes.
func clusterShipStats(t *clusterTarget) (fwdOps, enq, acked, dropped int64) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, cl := range t.clients {
		resp, err := cl.Do(ctx, &proxy.Request{Op: "cluster.status"})
		if err != nil || resp.Cluster == nil {
			continue
		}
		fwdOps += resp.Cluster.ForwardedOps
		enq += resp.Cluster.ShipEnqueued
		acked += resp.Cluster.ShipAcked
		dropped += resp.Cluster.ShipDropped
	}
	return
}

// clusterSearch locates one node count's aggregate knee: exponential
// ramp then binary search, the same pass/fail judgment as -saturate
// (runStep), against the live cluster.
func clusterSearch(n int, cfg clusterBenchConfig, progress func(string)) (clusterRow, error) {
	t, _, cleanup, err := newClusterTarget(n, cfg)
	if err != nil {
		return clusterRow{}, fmt.Errorf("cluster %d: setup: %w", n, err)
	}
	defer cleanup()

	row := clusterRow{Nodes: n, Sessions: cfg.Sessions, SLOMicros: cfg.SLO.Microseconds()}
	for _, l := range t.local {
		if l {
			row.LocalSessions++
		} else {
			row.ForwardedSessions++
		}
	}

	st := &satTarget{name: fmt.Sprintf("cluster%d", n), sessions: cfg.Sessions, target: t}
	sat := satConfig{SLO: cfg.SLO, Step: cfg.Step}

	// Unrecorded warmup: first touches pay policy compilation, peer
	// dials, and WAL segment creation that belong to setup.
	if warm, err := loadgen.NewSchedule(1000, cfg.StartQPS/2, cfg.Sessions, 0); err == nil {
		if _, err := loadgen.Run(context.Background(), loadgen.Config{
			Target: t, Schedule: warm, Workers: 128,
		}); err != nil {
			return clusterRow{}, fmt.Errorf("cluster %d: warmup: %w", n, err)
		}
	}
	t.opSplit()

	deadline := time.Now().Add(cfg.Budget)
	var (
		lo, hi    float64
		knee      *satStep
		kneeLocal float64 // local share of the knee step's ops
		q         = cfg.StartQPS
	)
search:
	for step := 0; ; step++ {
		ss, err := runStep(st, sat, q, step, false)
		if err != nil {
			return clusterRow{}, fmt.Errorf("cluster %d @%.0f qps: %w", n, q, err)
		}
		local, fwd := t.opSplit()
		row.Steps = append(row.Steps, ss)
		if progress != nil {
			status := "FAIL " + ss.Fail
			if ss.Pass {
				status = "pass"
			}
			progress(fmt.Sprintf("  %-10s %8.0f qps  p99=%6dµs  achieved=%7.0f/s  local/fwd=%d/%d  %s",
				st.name, q, ss.P99Micros, ss.AchievedQPS, local, fwd, status))
		}
		if ss.Pass {
			lo = q
			knee = &row.Steps[len(row.Steps)-1]
			if local+fwd > 0 {
				kneeLocal = float64(local) / float64(local+fwd)
			}
		} else if hi == 0 || q < hi {
			hi = q
		}
		if time.Now().After(deadline) {
			break
		}
		switch {
		case hi == 0:
			q = lo * 2
		case lo == 0:
			q = hi / 2
			if q < 25 {
				break search
			}
		case hi/lo <= 1.10:
			break search
		default:
			q = (lo + hi) / 2
		}
	}
	if knee != nil {
		row.KneeQPS = knee.OfferedQPS
		row.KneeP99Micros = knee.P99Micros
		row.LocalQPS = knee.OfferedQPS * kneeLocal
		row.ForwardedQPS = knee.OfferedQPS * (1 - kneeLocal)
	}
	row.ForwardedOps, row.ShipEnqueued, row.ShipAcked, row.ShipDropped = clusterShipStats(t)
	if n > 1 && row.ForwardedOps == 0 {
		return clusterRow{}, fmt.Errorf("cluster %d: nodes report zero forwarded ops — the sweep never exercised routing", n)
	}
	return row, nil
}

// runClusterBench sweeps the configured node counts.
func runClusterBench(cfg clusterBenchConfig, progress func(string)) ([]clusterRow, error) {
	var rows []clusterRow
	for _, n := range cfg.Nodes {
		row, err := clusterSearch(n, cfg, progress)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// printClusterScaling summarizes aggregate scaling vs the single-node
// row — the acceptance metric for cluster mode, honest about the
// machine it ran on.
func printClusterScaling(rows []clusterRow) {
	var base float64
	for _, r := range rows {
		if r.Nodes == 1 {
			base = r.KneeQPS
		}
	}
	if base <= 0 {
		return
	}
	for _, r := range rows {
		if r.Nodes == 1 || r.KneeQPS <= 0 {
			continue
		}
		fmt.Printf("acbench: cluster scaling %d nodes: %.0f qps aggregate vs %.0f single-node (%.2fx)\n",
			r.Nodes, r.KneeQPS, base, r.KneeQPS/base)
	}
}

func printCluster(cfg clusterBenchConfig) error {
	fmt.Printf("Cluster knee sweep: %d durable sessions spread over N in-process nodes, SLO p99 ≤ %s, budget %s per size\n",
		cfg.Sessions, cfg.SLO, cfg.Budget)
	fmt.Printf("(session→node placement is the consistent-hash ring; a session entering a non-owner node pays the forwarding hop)\n\n")
	rows, err := runClusterBench(cfg, func(s string) { fmt.Println(s) })
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Printf("%-7s %10s %10s %10s %10s %12s %12s %10s\n",
		"nodes", "sessions", "local", "forwarded", "knee qps", "local qps", "fwd qps", "knee p99")
	for _, r := range rows {
		fmt.Printf("%-7d %10d %10d %10d %10.0f %12.0f %12.0f %8dµs\n",
			r.Nodes, r.Sessions, r.LocalSessions, r.ForwardedSessions,
			r.KneeQPS, r.LocalQPS, r.ForwardedQPS, r.KneeP99Micros)
	}
	fmt.Println()
	printClusterScaling(rows)
	return nil
}
