package main

// The -coldpath sweep: cold-decision latency vs policy size, for the
// three cold-path configurations — the original serial scan over
// every view (ColdIndex off, one worker), the compiled per-relation
// index (ColdIndex on, one worker), and the index plus the bounded
// worker pool (ColdWorkers = GOMAXPROCS). The workload is a synthetic
// wide schema (16 relations) whose policy spreads views evenly across
// relations, so the per-relation index prunes ~15/16 of the policy
// before any embedding search; the query is a 4-arm UNION, so the
// parallel configuration also exercises the per-disjunct fan-out.
// Caching is disabled: every check takes the cold path.

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"time"

	"repro/internal/checker"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

type coldpathRow struct {
	Views           int     `json:"views"`
	SerialMicros    float64 `json:"serialMicros"`
	IndexedMicros   float64 `json:"indexedMicros"`
	ParallelMicros  float64 `json:"parallelMicros"`
	IndexedSpeedup  float64 `json:"indexedSpeedup"`
	ParallelSpeedup float64 `json:"parallelSpeedup"`
	PruneRatio      float64 `json:"pruneRatio"`
}

// coldpathTables is how many relations the synthetic schema spreads
// its policy over.
const coldpathTables = 16

func coldpathSchema() *schema.Schema {
	b := schema.NewBuilder()
	for i := 0; i < coldpathTables; i++ {
		b = b.Table(fmt.Sprintf("R%d", i)).
			NotNullCol("Id", sqlvalue.Int).
			NotNullCol("Owner", sqlvalue.Int).
			NotNullCol("Val", sqlvalue.Int).
			NotNullCol("K", sqlvalue.Int).
			PK("Id").Done()
	}
	return b.MustBuild()
}

// coldpathPolicy builds n views cycling over the relations; view j
// exposes rows of R(j mod 16) the principal owns with K = j, so
// exactly one view covers each query arm and every other view over
// the same relation fails its embedding on the pinned K.
func coldpathPolicy(s *schema.Schema, n int) *policy.Policy {
	views := make(map[string]string, n)
	for j := 0; j < n; j++ {
		views[fmt.Sprintf("V%03d", j)] = fmt.Sprintf(
			"SELECT Id, Val FROM R%d WHERE Owner = ?MyUId AND K = %d", j%coldpathTables, j)
	}
	return policy.MustNew(s, views)
}

// coldpathQuery is a 4-arm UNION (one disjunct per arm) over R0..R3,
// each arm covered by exactly one policy view; the Id range predicate
// keeps the disjuncts' constraint sets non-trivial.
func coldpathQuery() *sqlparser.SelectStmt {
	sql := ""
	for i := 0; i < 4; i++ {
		if i > 0 {
			sql += " UNION "
		}
		sql += fmt.Sprintf("SELECT Id, Val FROM R%d WHERE Owner = ?MyUId AND K = %d AND Id >= 10", i, i)
	}
	return sqlparser.MustParseSelect(sql)
}

func coldpathChecker(p *policy.Policy, index bool, workers int) *checker.Checker {
	opts := checker.DefaultOptions()
	opts.UseCache = false // every check is a cold decision
	opts.ColdIndex = index
	opts.ColdWorkers = workers
	return checker.NewWithOptions(p, opts)
}

// runColdPath measures the cold-decision sweep and checks that all
// three configurations return identical Decisions at every size.
func runColdPath() ([]coldpathRow, error) {
	s := coldpathSchema()
	sel := coldpathQuery()
	// The uid must not collide with any K constant: template
	// generalization folds constants equal to a session attribute into
	// that parameter, which would change the query's meaning here.
	sess := map[string]sqlvalue.Value{"MyUId": sqlvalue.NewInt(1_000_001)}
	ctx := context.Background()

	const (
		iters  = 20
		trials = 5
	)
	measure := func(c *checker.Checker) float64 {
		c.Check(ctx, sel, sqlparser.NoArgs, sess, nil) // warm allocator paths
		best := time.Duration(1 << 62)
		for t := 0; t < trials; t++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				c.Check(ctx, sel, sqlparser.NoArgs, sess, nil)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return float64(best.Nanoseconds()) / 1e3 / iters
	}

	var rows []coldpathRow
	for _, n := range []int{8, 32, 128, 512} {
		p := coldpathPolicy(s, n)
		serial := coldpathChecker(p, false, 1)
		indexed := coldpathChecker(p, true, 1)
		parallel := coldpathChecker(p, true, runtime.GOMAXPROCS(0))

		// The acceptance bar: all three configurations must agree
		// exactly before any of them is worth timing.
		dS := serial.Check(ctx, sel, sqlparser.NoArgs, sess, nil)
		dI := indexed.Check(ctx, sel, sqlparser.NoArgs, sess, nil)
		dP := parallel.Check(ctx, sel, sqlparser.NoArgs, sess, nil)
		if !reflect.DeepEqual(dS, dI) || !reflect.DeepEqual(dS, dP) {
			return nil, fmt.Errorf("coldpath: decision mismatch at %d views: serial=%+v indexed=%+v parallel=%+v", n, dS, dI, dP)
		}
		if !dS.Allowed {
			return nil, fmt.Errorf("coldpath: expected allowed decision at %d views, got %q", n, dS.Reason)
		}

		row := coldpathRow{
			Views:          n,
			SerialMicros:   measure(serial),
			IndexedMicros:  measure(indexed),
			ParallelMicros: measure(parallel),
		}
		row.IndexedSpeedup = row.SerialMicros / row.IndexedMicros
		row.ParallelSpeedup = row.SerialMicros / row.ParallelMicros
		cs := indexed.Stats()
		if tot := cs.ColdViewsKept + cs.ColdViewsPruned; tot > 0 {
			row.PruneRatio = float64(cs.ColdViewsPruned) / float64(tot)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func printColdPath() error {
	rows, err := runColdPath()
	if err != nil {
		return err
	}
	fmt.Println("Cold path: per-decision latency vs policy size (caching off; 16 relations, 4-arm UNION query)")
	fmt.Printf("serial = linear view scan, indexed = compiled per-relation index, parallel = indexed + %d workers\n\n", runtime.GOMAXPROCS(0))
	fmt.Printf("%-8s %12s %12s %12s %10s %10s %8s\n",
		"views", "serial", "indexed", "parallel", "idx-spdup", "par-spdup", "pruned")
	for _, r := range rows {
		fmt.Printf("%-8d %11.1fµs %11.1fµs %11.1fµs %9.1fx %9.1fx %7.0f%%\n",
			r.Views, r.SerialMicros, r.IndexedMicros, r.ParallelMicros,
			r.IndexedSpeedup, r.ParallelSpeedup, r.PruneRatio*100)
	}
	fmt.Println()
	return nil
}
