// Command acpolicy drives the online policy lifecycle of a running
// proxy (DESIGN.md §14): stage a candidate policy for shadow
// dual-decide, watch the divergence stream, then promote or roll back.
//
// Usage:
//
//	acpolicy -addr 127.0.0.1:7070 status
//	acpolicy -addr 127.0.0.1:7070 stage candidate.json   # view name -> SQL
//	acpolicy -addr 127.0.0.1:7070 diff                   # ringed divergences
//	acpolicy -addr 127.0.0.1:7070 diff -follow           # poll until interrupted
//	acpolicy -addr 127.0.0.1:7070 promote
//	acpolicy -addr 127.0.0.1:7070 rollback
//
// stage reads one JSON object mapping view names to parameterized SQL
// (the same shape acproxy -shadow-policy takes). diff prints one line
// per divergence: the query, the session, both verdicts, and the
// divergence kind — "tighten" (candidate blocks what the active policy
// allows) or "loosen" (the reverse). promote swaps the candidate in;
// its shadow-warmed caches serve enforcement immediately.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	beyond "repro"
	"repro/internal/buildinfo"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "proxy v2 address")
	follow := flag.Bool("follow", false, "diff: keep polling for new divergences until interrupted")
	interval := flag.Duration("interval", time.Second, "diff -follow poll interval")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("acpolicy"))
		return
	}
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "status"
	}

	c, err := beyond.DialProxy(*addr)
	if err != nil {
		log.Fatalf("acpolicy: dial %s: %v", *addr, err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch cmd {
	case "status":
		pb, err := c.PolicyStatus(ctx)
		if err != nil {
			log.Fatalf("acpolicy: status: %v", err)
		}
		printStatus(pb)
	case "stage":
		file := flag.Arg(1)
		if file == "" {
			log.Fatal("acpolicy: stage needs a policy file (JSON: view name -> SQL)")
		}
		views, err := readViews(file)
		if err != nil {
			log.Fatalf("acpolicy: %v", err)
		}
		pb, err := c.PolicyStage(ctx, views)
		if err != nil {
			log.Fatalf("acpolicy: stage: %v", err)
		}
		fmt.Printf("staged candidate (epoch %d, %d views, parent epoch %d); shadow dual-decide is on\n",
			pb.CandidateEpoch, pb.CandidateViews, pb.CandidateParent)
	case "diff":
		if err := runDiff(c, *interval, *follow, *timeout); err != nil {
			log.Fatalf("acpolicy: diff: %v", err)
		}
	case "promote":
		pb, err := c.PolicyPromote(ctx)
		if err != nil {
			log.Fatalf("acpolicy: promote: %v", err)
		}
		fmt.Printf("promoted: active is now epoch %d (%d views)\n", pb.ActiveEpoch, pb.ActiveViews)
	case "rollback":
		pb, err := c.PolicyRollback(ctx)
		if err != nil {
			log.Fatalf("acpolicy: rollback: %v", err)
		}
		fmt.Printf("rolled back: active stays epoch %d (%d views)\n", pb.ActiveEpoch, pb.ActiveViews)
	default:
		log.Fatalf("acpolicy: unknown subcommand %q (want status, stage, diff, promote, or rollback)", cmd)
	}
}

func readViews(path string) (map[string]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var views map[string]string
	if err := json.Unmarshal(b, &views); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(views) == 0 {
		return nil, fmt.Errorf("%s: no views", path)
	}
	return views, nil
}

func printStatus(pb *beyond.PolicyStatus) {
	fmt.Printf("active:    epoch %d, %d views, fingerprint %s\n",
		pb.ActiveEpoch, pb.ActiveViews, shorten(pb.ActiveFingerprint))
	if !pb.Staged {
		fmt.Println("candidate: none (shadow dual-decide off)")
		return
	}
	fmt.Printf("candidate: epoch %d, %d views, parent epoch %d, fingerprint %s",
		pb.CandidateEpoch, pb.CandidateViews, pb.CandidateParent, shorten(pb.CandidateFingerprint))
	if pb.CandidateVersionID != 0 {
		fmt.Printf(" (WAL version id %d)", pb.CandidateVersionID)
	}
	fmt.Println()
	fmt.Printf("shadow:    %d dual-decides, %d divergences (%d tighten, %d loosen)\n",
		pb.ShadowDecides, pb.Divergences, pb.DivergeTighten, pb.DivergeLoosen)
}

func shorten(fp string) string {
	if len(fp) > 32 {
		return fmt.Sprintf("%s…(%dB)", fp[:32], len(fp))
	}
	return fp
}

// runDiff prints ringed divergences; with follow it keeps polling from
// the last seen sequence until interrupted.
func runDiff(c *beyond.ProxyClient, interval time.Duration, follow bool, timeout time.Duration) error {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	var after uint64
	for {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		pb, err := c.PolicyDiff(ctx, after)
		cancel()
		if err != nil {
			return err
		}
		for _, d := range pb.Diffs {
			printDiff(&d)
		}
		after = pb.LastDiffSeq
		if !follow {
			if len(pb.Diffs) == 0 {
				if pb.Staged {
					fmt.Printf("no divergences ringed (%d dual-decides so far)\n", pb.ShadowDecides)
				} else {
					fmt.Println("no candidate staged")
				}
			}
			return nil
		}
		select {
		case <-sig:
			return nil
		case <-time.After(interval):
		}
	}
}

func printDiff(d *beyond.ShadowDiff) {
	sess := d.Session
	if sess == "" {
		sess = "-"
	}
	fmt.Printf("#%-5d %-7s session=%-12s active=%s shadow=%s  %s\n",
		d.Seq, d.Kind, sess, verdict(d.ActiveAllowed, d.ActiveReason),
		verdict(d.ShadowAllowed, d.ShadowReason), d.SQL)
}

func verdict(allowed bool, reason string) string {
	if allowed {
		return "allow"
	}
	if reason != "" {
		return "block(" + reason + ")"
	}
	return "block"
}
