// Command acwal inspects a durability WAL directory written by
// acproxy -wal-dir (internal/durable). It is strictly read-only: no
// truncation, no compaction, safe to point at a crashed — or live —
// log.
//
// Usage:
//
//	acwal -dir DIR stat     # per-file summary: kind, size, records, torn tail
//	acwal -dir DIR verify   # full recovery dry-run; exit 1 on unrecoverable damage
//	acwal -dir DIR dump     # decode and print every record
//
// dump accepts -session NAME to filter append/session records and
// -sql to include the replayed query text. Cluster WALs additionally
// carry "lease" records (a peer's ownership term) and "shipped-*"
// records (another owner's session/append records replicated here);
// both render with their origin node.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/durable"
)

func main() {
	dir := flag.String("dir", "", "WAL directory (as given to acproxy -wal-dir)")
	session := flag.String("session", "", "dump: only records for this session")
	sql := flag.Bool("sql", false, "dump: include the SQL text of append records")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("acwal"))
		return
	}
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "stat"
	}
	if *dir == "" {
		log.Fatal("acwal: -dir is required")
	}
	var err error
	switch cmd {
	case "stat":
		err = stat(*dir)
	case "verify":
		err = verify(*dir)
	case "dump":
		err = dump(*dir, *session, *sql)
	default:
		log.Fatalf("acwal: unknown subcommand %q (want stat, verify, or dump)", cmd)
	}
	if err != nil {
		log.Fatalf("acwal: %v", err)
	}
}

// stat prints one line per WAL file in replay order.
func stat(dir string) error {
	var files, records int
	var bytes int64
	err := durable.Inspect(dir, func(fi durable.FileInfo) {
		files++
		records += fi.Records
		bytes += fi.Bytes
		line := fmt.Sprintf("%-20s %-10s %8d bytes %6d records", fi.Name, fi.Kind, fi.Bytes, fi.Records)
		if fi.Torn {
			line += fmt.Sprintf("  TORN TAIL (%d bytes)", fi.TornBytes)
		}
		if fi.Err != "" {
			line += "  ERROR: " + fi.Err
		}
		fmt.Println(line)
	}, nil)
	if err != nil {
		return err
	}
	if files == 0 {
		fmt.Println("empty WAL directory (no segments or checkpoints)")
		return nil
	}
	fmt.Printf("%d file(s), %d record(s), %d bytes\n", files, records, bytes)
	return nil
}

// verify runs the same recovery path the proxy uses at startup —
// against a copy of nothing: Recover is read-only except for tail
// truncation, which verify must not do, so it inspects first and only
// reports what recovery WOULD find.
func verify(dir string) error {
	damaged := false
	err := durable.Inspect(dir, func(fi durable.FileInfo) {
		switch {
		case fi.Err != "":
			damaged = true
			fmt.Printf("%-20s UNREADABLE: %s\n", fi.Name, fi.Err)
		case fi.Torn:
			fmt.Printf("%-20s torn tail: %d bytes past last intact record (recovery truncates this in the final segment)\n",
				fi.Name, fi.TornBytes)
		default:
			fmt.Printf("%-20s ok (%d records)\n", fi.Name, fi.Records)
		}
	}, func(rec durable.Record) {
		if rec.Err != "" {
			damaged = true
			fmt.Printf("%-20s record %d (%s): DECODE ERROR: %s\n", rec.File, rec.Seq, rec.Type, rec.Err)
		}
	})
	if err != nil {
		return err
	}
	if damaged {
		fmt.Println("verify: FAILED — intact framing with undecodable payloads, or unreadable files")
		os.Exit(1)
	}
	fmt.Println("verify: ok")
	return nil
}

// dump prints every decoded record in replay order.
func dump(dir, session string, withSQL bool) error {
	return durable.Inspect(dir, nil, func(rec durable.Record) {
		if session != "" && rec.Session != session {
			return
		}
		line := fmt.Sprintf("%-20s #%-5d %-15s", rec.File, rec.Seq, rec.Type)
		switch rec.Type {
		case "session", "shipped-session":
			line += fmt.Sprintf(" %s", rec.Session)
			if rec.Detail != "" {
				line += " {" + rec.Detail + "}"
			}
		case "append", "shipped-append":
			line += fmt.Sprintf(" %s[%d] rows=%d", rec.Session, rec.Index, rec.Rows)
			if rec.Detail != "" {
				line += " {" + rec.Detail + "}"
			}
			if withSQL {
				line += " " + rec.SQL
			}
		default:
			line += " " + rec.Detail
		}
		if rec.Err != "" {
			line += "  ERROR: " + rec.Err
		}
		fmt.Println(line)
	})
}
