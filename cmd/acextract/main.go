// Command acextract runs policy extraction (§3) on a bundled model
// application and prints the draft policy plus its accuracy against
// the app-embodied ground truth.
//
// Usage:
//
//	acextract -app calendar -mode symbolic
//	acextract -app calendar -mode mine           # auto-explored inputs
//	acextract -app calendar -mode mine -explore=false
//
// -timing appends an obsv metrics snapshot with the extraction's
// wall-clock time (extract.micros).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	beyond "repro"
	"repro/internal/appdsl"
	"repro/internal/buildinfo"
	"repro/internal/extract"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

func main() {
	app := flag.String("app", "calendar", "fixture: calendar|hospital|employees|forum")
	mode := flag.String("mode", "symbolic", "symbolic|mine")
	hints := flag.Bool("hints", true, "use opaque-ID hints (mine mode)")
	guards := flag.Bool("guards", true, "infer access-check guards (mine mode)")
	explore := flag.Bool("explore", true, "auto-generate request inputs (mine mode)")
	timing := flag.Bool("timing", false, "print the phase-timing metrics snapshot (JSON)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("acextract"))
		return
	}

	f, err := beyond.FixtureByName(*app)
	if err != nil {
		log.Fatal(err)
	}
	reg := beyond.NewMetrics()
	extractStart := time.Now()
	var p *beyond.Policy
	switch *mode {
	case "symbolic":
		p, err = beyond.ExtractPolicy(f.Schema, f.App)
	case "mine":
		if *explore {
			db := f.MustNewDB(12)
			opts := extract.DefaultMineOptions()
			opts.SessionParam = f.SessionParam
			opts.UseHints = *hints
			opts.InferGuards = *guards
			p, err = extract.ExploreAndMine(f.Schema, f.App, db, opts)
		} else {
			p, err = mine(f, *hints, *guards)
		}
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	reg.Histogram("acextract.extract.micros").ObserveSince(extractStart)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted policy (%s):\n%s\n", *mode, p)
	acc := beyond.CompareExtraction(p, f.AppTruth())
	fmt.Printf("accuracy vs app-embodied ground truth: recall %.2f, precision %.2f, exact=%v\n",
		acc.Recall(), acc.Precision(), acc.Exact())
	if *timing {
		fmt.Println("\nmetrics:")
		if err := reg.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}

// mine runs every handler for two principals and mines the traces.
func mine(f *beyond.Fixture, hints, guards bool) (*beyond.Policy, error) {
	db := f.MustNewDB(12)
	var samples []extract.Sample
	for _, uid := range []int64{1, 2} {
		for _, h := range f.App.Handlers {
			params := map[string]sqlvalue.Value{}
			for _, p := range h.Params {
				// A crude request generator: pick an entity the
				// principal can access by probing small ids.
				params[p] = sqlvalue.NewInt(uid + 1)
			}
			var entries []extract.MinedEntry
			runner := appdsl.RunnerFunc(func(sql string, args []sqlvalue.Value) (*appdsl.Rows, error) {
				res, err := db.QuerySQL(sql, sqlparser.Args{Positional: args})
				if err != nil {
					return nil, err
				}
				rows := make([][]sqlvalue.Value, len(res.Rows))
				for i, r := range res.Rows {
					rows[i] = r
				}
				entries = append(entries, extract.MinedEntry{SQL: sql, Args: args, Columns: res.Columns, Rows: rows})
				return &appdsl.Rows{Columns: res.Columns, Rows: rows}, nil
			})
			_, err := appdsl.Run(h, params,
				map[string]sqlvalue.Value{"user_id": sqlvalue.NewInt(uid)}, runner)
			if err != nil {
				if _, aborted := err.(*appdsl.AbortError); !aborted {
					return nil, err
				}
			}
			samples = append(samples, extract.Sample{
				Handler: h.Name,
				Session: map[string]sqlvalue.Value{"user_id": sqlvalue.NewInt(uid)},
				Params:  params,
				Entries: entries,
			})
		}
	}
	opts := extract.DefaultMineOptions()
	opts.SessionParam = f.SessionParam
	opts.UseHints = hints
	opts.InferGuards = guards
	return beyond.MinePolicy(f.Schema, samples, opts)
}
