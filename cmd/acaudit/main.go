// Command acaudit runs the §4 disclosure audit for a bundled model
// application: PQI/NQI verdicts for every sensitive query, plus
// k-anonymity of an optional release query.
//
// Usage:
//
//	acaudit -app hospital
//	acaudit -app hospital -release "SELECT p.DocId, t.Disease FROM Patients p JOIN Treats t ON p.DocId = t.DocId" -quasi DocId
//
// -timing appends an obsv metrics snapshot with each phase's
// wall-clock time (audit.micros, kanon.micros).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	beyond "repro"
	"repro/internal/buildinfo"
)

func main() {
	app := flag.String("app", "hospital", "fixture: calendar|hospital|employees|forum")
	release := flag.String("release", "", "optional release SELECT for k-anonymity")
	quasi := flag.String("quasi", "", "comma-separated quasi-identifier columns")
	size := flag.Int("size", 20, "seed rows for k-anonymity")
	timing := flag.Bool("timing", false, "print the phase-timing metrics snapshot (JSON)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("acaudit"))
		return
	}

	reg := beyond.NewMetrics()
	f, err := beyond.FixtureByName(*app)
	if err != nil {
		log.Fatal(err)
	}
	pol := f.Policy()
	fmt.Printf("auditing policy:\n%s\n", pol)
	auditStart := time.Now()
	rep, err := beyond.AuditPolicy(context.Background(), pol, f.Sensitive)
	reg.Histogram("acaudit.audit.micros").ObserveSince(auditStart)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)

	if *release != "" {
		db := f.MustNewDB(*size)
		cols := strings.Split(*quasi, ",")
		kStart := time.Now()
		k, err := beyond.KAnonymity(db, *release, cols)
		reg.Histogram("acaudit.kanon.micros").ObserveSince(kStart)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nk-anonymity of the release (quasi-id %s): k = %d\n", *quasi, k)
	}
	if *timing {
		fmt.Println("\nmetrics:")
		if err := reg.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
