// Command accluster inspects and steers a running enforcement
// cluster (DESIGN.md §16) through any member's v2 listener.
//
// Usage:
//
//	accluster -addr 127.0.0.1:7070 status     # full view: placement, leases, ship lag
//	accluster -addr 127.0.0.1:7070 members    # membership table only
//	accluster -addr 127.0.0.1:7070 drain      # stop owning new sessions on this node
//	accluster -addr 127.0.0.1:7070 rebalance  # force a probe round + ring rebuild
//
// status answers from the contacted node's local view: its membership
// epoch, each peer's liveness and draining state, the leases it has
// granted (sessions it follows), and its own placement and WAL-ship
// counters. drain removes the contacted node from its own routing
// ring — peers notice via health probes and route new sessions
// elsewhere; sessions it already owns keep serving. rebalance forces
// an immediate probe round instead of waiting out the probe interval.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/proxy"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "any cluster member's v2 address")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("accluster"))
		return
	}
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "status"
	}
	var op string
	switch cmd {
	case "status", "members":
		op = "cluster.status"
	case "drain":
		op = "cluster.drain"
	case "rebalance":
		op = "cluster.rebalance"
	case "ping":
		op = "cluster.ping"
	default:
		fmt.Fprintf(os.Stderr, "accluster: unknown command %q (want status|members|drain|rebalance|ping)\n", cmd)
		os.Exit(2)
	}

	c, err := proxy.Dial(*addr)
	if err != nil {
		log.Fatalf("accluster: dial %s: %v", *addr, err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	resp, err := c.Do(ctx, &proxy.Request{Op: op})
	if err != nil {
		log.Fatalf("accluster: %s: %v", cmd, err)
	}
	if resp.Error != "" {
		log.Fatalf("accluster: %s: %s", cmd, resp.Error)
	}
	b := resp.Cluster
	if b == nil {
		log.Fatalf("accluster: %s: node answered without a cluster body (cluster mode off?)", cmd)
	}

	switch cmd {
	case "ping":
		fmt.Printf("node %s epoch %d draining=%v\n", b.Self, b.Epoch, b.Draining)
	case "members":
		printMembers(b)
	case "drain":
		fmt.Printf("node %s draining; peers will route new sessions around it\n", b.Self)
		printMembers(b)
	case "rebalance":
		fmt.Printf("node %s probed its peers and rebuilt its ring (epoch %d)\n", b.Self, b.Epoch)
		printMembers(b)
	default: // status
		fmt.Printf("node %s  epoch %d  draining=%v\n", b.Self, b.Epoch, b.Draining)
		printMembers(b)
		if len(b.Leases) > 0 {
			fmt.Println("leases granted (sessions this node follows):")
			for _, l := range b.Leases {
				state := "expired"
				if l.ExpiresInMillis > 0 {
					state = fmt.Sprintf("expires in %dms", l.ExpiresInMillis)
				}
				fmt.Printf("  %-12s term %-4d %s\n", l.Origin, l.Term, state)
			}
		}
		fmt.Printf("placement: local=%d forwarded-sessions=%d forwarded-ops=%d forward-errors=%d takeovers=%d\n",
			b.LocalSessions, b.ForwardedSessions, b.ForwardedOps, b.ForwardErrors, b.Takeovers)
		fmt.Printf("wal ship:  enqueued=%d acked=%d dropped=%d bytes=%d (lag %d records)\n",
			b.ShipEnqueued, b.ShipAcked, b.ShipDropped, b.ShipBytes, b.ShipEnqueued-b.ShipAcked-b.ShipDropped)
	}
}

func printMembers(b *proxy.ClusterBody) {
	fmt.Println("members:")
	for _, m := range b.Members {
		mark := " "
		if m.Self {
			mark = "*"
		}
		state := "alive"
		if !m.Alive {
			state = "dead"
		}
		if m.Draining {
			state += ",draining"
		}
		fmt.Printf("  %s %-12s %-21s %-14s epoch %d\n", mark, m.ID, m.Addr, state, m.Epoch)
	}
}
