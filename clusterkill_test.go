// The cluster kill-and-handover integration test (`make clusterkill`):
// a 3-node cluster where one node runs as a SUBPROCESS, owns a slice
// of the corpus sessions (including every history-dependent one, by
// construction), and is SIGKILLed between priming and deciding. The
// surviving entry node must then serve the whole corpus — the dead
// node's sessions restored from the WAL records it shipped to its
// followers — byte-identically to an unkilled single-node control.
//
// The load-bearing rows are the history-dependent allows: if the
// shipped history was lost, the follower decides them as blocks and
// parity fails loudly.
package beyond_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	beyond "repro"
	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/proxy"
	"repro/internal/sqlvalue"
)

const (
	ckChildEnvFlag  = "ACCLUSTER_KILL_CHILD"
	ckChildEnvAddrs = "ACCLUSTER_KILL_PEERS" // "addrA,addrC"
	ckChildEnvFile  = "ACCLUSTER_KILL_ADDRFILE"
	ckSeedRows      = 24
)

// ckIDs is the fixed member set; the subprocess is always "b".
var ckIDs = [3]string{"a", "b", "c"}

func ckTuning() (time.Duration, time.Duration, time.Duration) {
	return 300 * time.Millisecond, 50 * time.Millisecond, 2 * time.Millisecond // lease, probe, shipflush
}

func ckMembers(addrA, addrB, addrC string) []beyond.ClusterMember {
	return []beyond.ClusterMember{
		{ID: "a", Addr: addrA}, {ID: "b", Addr: addrB}, {ID: "c", Addr: addrC},
	}
}

func ckServe(t *testing.T, f *apps.Fixture, self string, members []beyond.ClusterMember) *beyond.Service {
	t.Helper()
	lease, probe, flush := ckTuning()
	svc, err := beyond.Serve(f.MustNewDB(ckSeedRows), beyond.NewChecker(f.Policy()), beyond.Enforce,
		beyond.WithV2Listener("127.0.0.1:0",
			beyond.WithDurability(t.TempDir(), beyond.WithFsync(beyond.FsyncOff))),
		beyond.WithCluster(beyond.ClusterConfig{
			Self: self, Members: members,
			LeaseTTL: lease, ProbeInterval: probe, ShipFlush: flush,
		}))
	if err != nil {
		t.Fatalf("serve %s: %v", self, err)
	}
	return svc
}

// TestClusterKillChild is the subprocess body, not a test: cluster
// node "b" serving until SIGKILL. Peer addresses arrive via env; its
// own bound address is published through the addr file.
func TestClusterKillChild(t *testing.T) {
	if os.Getenv(ckChildEnvFlag) == "" {
		t.Skip("subprocess helper; driven by TestClusterKillHandover")
	}
	peers := strings.Split(os.Getenv(ckChildEnvAddrs), ",")
	if len(peers) != 2 {
		t.Fatalf("child peers = %q", os.Getenv(ckChildEnvAddrs))
	}
	f := apps.Calendar()
	svc := ckServe(t, f, "b", ckMembers(peers[0], "", peers[1]))
	svc.ClusterNode().SetMembers(ckMembers(peers[0], svc.V2Addr(), peers[1]))
	addrFile := os.Getenv(ckChildEnvFile)
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(svc.V2Addr()), 0o644); err != nil {
		t.Fatalf("child addr file: %v", err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatalf("child addr file: %v", err)
	}
	select {} // serve until SIGKILL
}

// ckDecision renders everything a client observes about one query.
type ckDecision struct {
	Label   string             `json:"label"`
	Allowed bool               `json:"allowed"`
	Reason  string             `json:"reason,omitempty"`
	Columns []string           `json:"columns,omitempty"`
	Rows    [][]sqlvalue.Value `json:"rows,omitempty"`
}

// ckSessionName pins every history-dependent allowed query to the
// subprocess node "b" (salting the name until the ring places it
// there), so the kill provably covers the sessions whose state only
// survives via shipping. Other sessions keep natural placement.
func ckSessionName(ring *cluster.Ring, i int, w apps.WorkloadQuery) string {
	base := fmt.Sprintf("ck-%02d-%s", i, w.Label)
	if w.PrimeSQL == "" || !w.WantAllowed {
		return base
	}
	for k := 0; ; k++ {
		name := fmt.Sprintf("%s-%d", base, k)
		if ring.Owner(name) == "b" {
			return name
		}
	}
}

func ckPrime(t *testing.T, addr string, ring *cluster.Ring, corpus []apps.WorkloadQuery) {
	t.Helper()
	cl, err := proxy.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	if err := cl.Hello(ctx, map[string]any{"MyUId": int64(1)}); err != nil {
		t.Fatalf("upgrade hello: %v", err)
	}
	for i, w := range corpus {
		lane := cl.Lane(uint64(i + 1))
		if _, err := lane.HelloDurable(ctx, ckSessionName(ring, i, w), map[string]any{"MyUId": w.UId}); err != nil {
			t.Fatalf("prime hello %s: %v", w.Label, err)
		}
		if w.PrimeSQL == "" {
			continue
		}
		if _, err := lane.Query(ctx, w.PrimeSQL, w.PrimeArgs...); err != nil {
			t.Fatalf("prime query %s: %v", w.Label, err)
		}
	}
}

func ckDecide(t *testing.T, addr string, ring *cluster.Ring, corpus []apps.WorkloadQuery) ([]ckDecision, int) {
	t.Helper()
	cl, err := proxy.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	if err := cl.Hello(ctx, map[string]any{"MyUId": int64(1)}); err != nil {
		t.Fatalf("upgrade hello: %v", err)
	}
	var out []ckDecision
	restoredTotal := 0
	for i, w := range corpus {
		lane := cl.Lane(uint64(i + 1))
		restored, err := lane.HelloDurable(ctx, ckSessionName(ring, i, w), map[string]any{"MyUId": w.UId})
		if err != nil {
			t.Fatalf("decide hello %s: %v", w.Label, err)
		}
		restoredTotal += restored
		d := ckDecision{Label: w.Label}
		rows, err := lane.Query(ctx, w.SQL, w.Args...)
		switch e := err.(type) {
		case nil:
			d.Allowed = true
			d.Columns = rows.Columns
			d.Rows = rows.Rows
		case *proxy.BlockedError:
			d.Reason = e.Reason
		default:
			t.Fatalf("decide query %s: %v", w.Label, err)
		}
		out = append(out, d)
	}
	return out, restoredTotal
}

func ckRender(t *testing.T, ds []ckDecision) string {
	t.Helper()
	var b strings.Builder
	for _, d := range ds {
		line, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}

func TestClusterKillHandover(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess integration test")
	}
	f := apps.Calendar()
	corpus := f.Corpus
	// The full ring every node computes; session pinning and the
	// follower invariant both derive from it.
	fullRing := cluster.NewRing(ckIDs[:], 0)

	// Control: one unkilled single-node WAL proxy, same prime/decide
	// sequence under the same session names.
	ctrl, err := beyond.Serve(f.MustNewDB(ckSeedRows), beyond.NewChecker(f.Policy()), beyond.Enforce,
		beyond.WithV2Listener("127.0.0.1:0",
			beyond.WithDurability(t.TempDir(), beyond.WithFsync(beyond.FsyncOff))))
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ckPrime(t, ctrl.V2Addr(), fullRing, corpus)
	control, _ := ckDecide(t, ctrl.V2Addr(), fullRing, corpus)

	// Cluster: a and c in-process, b as the doomed subprocess.
	svcA := ckServe(t, f, "a", ckMembers("", "", ""))
	defer svcA.Close()
	svcC := ckServe(t, f, "c", ckMembers("", "", ""))
	defer svcC.Close()

	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(os.Args[0], "-test.run=^TestClusterKillChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		ckChildEnvFlag+"=1",
		ckChildEnvAddrs+"="+svcA.V2Addr()+","+svcC.V2Addr(),
		ckChildEnvFile+"="+addrFile)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	childUp := false
	defer func() {
		if childUp {
			cmd.Process.Signal(syscall.SIGKILL)
			cmd.Wait()
		}
	}()
	var addrB string
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addrB = strings.TrimSpace(string(b))
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if addrB == "" {
		cmd.Process.Kill()
		t.Fatal("child never published its address")
	}
	childUp = true
	members := ckMembers(svcA.V2Addr(), addrB, svcC.V2Addr())
	svcA.ClusterNode().SetMembers(members)
	svcC.ClusterNode().SetMembers(members)

	// Prime the whole corpus through node a; b-owned sessions forward
	// into the subprocess, which ships their WAL records back out to
	// followers a and c.
	ckPrime(t, svcA.V2Addr(), fullRing, corpus)

	// The kill is only meaningful once b has drained its ship queue.
	statusOf := func(addr string) *proxy.ClusterBody {
		cl, err := proxy.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		resp, err := cl.Do(ctx, &proxy.Request{Op: "cluster.status"})
		if err != nil || resp.Error != "" || resp.Cluster == nil {
			t.Fatalf("cluster.status %s: %v %+v", addr, err, resp)
		}
		return resp.Cluster
	}
	drainDeadline := time.Now().Add(10 * time.Second)
	for {
		st := statusOf(addrB)
		if st.ShipEnqueued > 0 && st.ShipAcked == st.ShipEnqueued && st.ShipDropped == 0 {
			break
		}
		if time.Now().After(drainDeadline) {
			t.Fatalf("child never drained its ship queue: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// SIGKILL mid-corpus: history primed, decisions not yet made.
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL child: %v", err)
	}
	cmd.Wait()
	childUp = false

	// Survivors evict b once its probes fail and its lease expires.
	evictDeadline := time.Now().Add(10 * time.Second)
	for {
		if svcA.ClusterNode().Ring().Size() == 2 && svcC.ClusterNode().Ring().Size() == 2 {
			break
		}
		if time.Now().After(evictDeadline) {
			t.Fatalf("survivors never evicted b: %d/%d",
				svcA.ClusterNode().Ring().Size(), svcC.ClusterNode().Ring().Size())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Decide the whole corpus through node a. The dead node's sessions
	// restore on their followers from shipped records; every rendered
	// decision must byte-match the unkilled control.
	crashed, restored := ckDecide(t, svcA.V2Addr(), fullRing, corpus)
	if restored == 0 {
		t.Fatal("handover restored no trace entries: shipping is not engaging, so parity would be vacuous")
	}
	want := ckRender(t, control)
	got := ckRender(t, crashed)
	if got != want {
		t.Fatalf("post-handover decisions diverge from unkilled control:\n--- control ---\n%s--- crashed ---\n%s", want, got)
	}
	// The pinned history-dependent rows must have survived as allows:
	// matching blocks on both sides would pass the diff vacuously.
	for i, d := range crashed {
		w := corpus[i]
		if w.PrimeSQL != "" && w.WantAllowed && !d.Allowed {
			t.Fatalf("%s blocked after handover: shipped history was not restored", d.Label)
		}
	}
}
