package beyond_test

// One benchmark per evaluation table/figure (DESIGN.md §4). The
// experiment harness in internal/experiments prints the tables; these
// testing.B benches give calibrated per-operation numbers for the same
// code paths, and bench_output.txt records a full run.

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	beyond "repro"
	"repro/internal/apps"
	"repro/internal/baseline"
	"repro/internal/checker"
	"repro/internal/diagnose"
	"repro/internal/disclosure"
	"repro/internal/experiments"
	"repro/internal/extract"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// BenchmarkE1Decisions measures the full decision matrix of Table 1:
// every corpus query of every fixture, checked once per iteration.
func BenchmarkE1Decisions(b *testing.B) {
	type prepared struct {
		chk  *checker.Checker
		f    *apps.Fixture
		sels []*sqlparser.SelectStmt
		args []sqlparser.Args
		uids []int64
	}
	var ps []prepared
	for _, f := range apps.All() {
		p := prepared{chk: checker.New(f.Policy()), f: f}
		for _, w := range f.Corpus {
			p.sels = append(p.sels, sqlparser.MustParseSelect(w.SQL))
			p.args = append(p.args, sqlparser.PositionalArgs(w.Args...))
			p.uids = append(p.uids, w.UId)
		}
		ps = append(ps, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range ps {
			for k, sel := range p.sels {
				p.chk.Check(context.Background(), sel, p.args[k], p.f.Session(p.uids[k]), nil)
			}
		}
	}
}

// BenchmarkE2Latency is Figure 1: per-query cost under each proxy
// configuration.
func BenchmarkE2Latency(b *testing.B) {
	f := apps.Calendar()
	db := f.MustNewDB(64)
	w := f.Corpus[0]
	sel := sqlparser.MustParseSelect(w.SQL)
	argv := sqlparser.PositionalArgs(w.Args...)
	sess := f.Session(w.UId)
	bound, err := sqlparser.Bind(sel, argv)
	if err != nil {
		b.Fatal(err)
	}
	bsel := bound.(*sqlparser.SelectStmt)

	b.Run("passthrough", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(bsel); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("checker-cold", func(b *testing.B) {
		opts := checker.DefaultOptions()
		opts.UseCache = false
		chk := checker.NewWithOptions(f.Policy(), opts)
		for i := 0; i < b.N; i++ {
			chk.Check(context.Background(), sel, argv, sess, nil)
			if _, err := db.Query(bsel); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("checker-cached", func(b *testing.B) {
		chk := checker.New(f.Policy())
		chk.Check(context.Background(), sel, argv, sess, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			chk.Check(context.Background(), sel, argv, sess, nil)
			if _, err := db.Query(bsel); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rls-rewrite", func(b *testing.B) {
		rls := baseline.MustNewRLS(f.Schema, f.RLSRules)
		for i := 0; i < b.N; i++ {
			rw, err := rls.Rewrite(sel, sess)
			if err != nil {
				b.Fatal(err)
			}
			rb, err := sqlparser.Bind(rw, argv)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := db.Query(rb.(*sqlparser.SelectStmt)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE3Cache is Table 2's mechanism: the cost of a decision that
// hits the template cache vs one that misses, across principals.
func BenchmarkE3Cache(b *testing.B) {
	f := apps.Calendar()
	chk := checker.New(f.Policy())
	sel := sqlparser.MustParseSelect("SELECT EId FROM Attendance WHERE UId = ?")
	b.Run("cross-principal-hit", func(b *testing.B) {
		chk.Check(context.Background(), sel, sqlparser.PositionalArgs(1), f.Session(1), nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			uid := int64(i%100 + 1)
			chk.Check(context.Background(), sel, sqlparser.PositionalArgs(uid), f.Session(uid), nil)
		}
	})
	b.Run("miss", func(b *testing.B) {
		opts := checker.DefaultOptions()
		opts.UseCache = false
		cold := checker.NewWithOptions(f.Policy(), opts)
		for i := 0; i < b.N; i++ {
			cold.Check(context.Background(), sel, sqlparser.PositionalArgs(1), f.Session(1), nil)
		}
	})
}

// BenchmarkE4Extract is Table 3: one full extraction per iteration.
func BenchmarkE4Extract(b *testing.B) {
	for _, f := range apps.All() {
		f := f
		b.Run("symbolic-"+f.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := extract.SymbolicExtract(f.Schema, f.App); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5Generalize is Figure 2's full configuration: black-box
// mining of the calendar app.
func BenchmarkE5Generalize(b *testing.B) {
	if _, err := experiments.RunE5(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6Disclosure is Table 4: the PQI/NQI audit per fixture.
func BenchmarkE6Disclosure(b *testing.B) {
	for _, f := range apps.All() {
		f := f
		pol := f.Policy()
		b.Run(f.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := disclosure.Audit(context.Background(), pol, f.Sensitive); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7Scaling is Figure 3: PQI/NQI checking time vs policy
// size.
func BenchmarkE7Scaling(b *testing.B) {
	f := apps.Employees()
	sensitive := "SELECT Name, Salary FROM Employees"
	for _, nviews := range []int{1, 2, 4, 8, 16} {
		pol := experiments.SyntheticPolicy(f, nviews)
		b.Run(benchName("views", nviews), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := disclosure.PQISQL(pol, sensitive); err != nil {
					b.Fatal(err)
				}
				if _, err := disclosure.NQISQL(pol, sensitive); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8Diagnose is Table 5: one full diagnosis of the paper's
// blocked query per iteration.
func BenchmarkE8Diagnose(b *testing.B) {
	f := apps.Calendar()
	chk := checker.New(f.Policy())
	sess := f.Session(1)
	for i := 0; i < b.N; i++ {
		d, err := diagnose.Diagnose(context.Background(), chk, sess, "SELECT * FROM Events WHERE EId=2", sqlparser.NoArgs, nil)
		if err != nil {
			b.Fatal(err)
		}
		if d.Counter == nil || len(d.Checks) == 0 {
			b.Fatal("diagnosis incomplete")
		}
	}
}

// BenchmarkProxyRoundTrip measures the end-to-end wire path: hello +
// query over loopback TCP.
func BenchmarkProxyRoundTrip(b *testing.B) {
	f := apps.Calendar()
	db := f.MustNewDB(32)
	srv := beyond.NewProxy(db, checker.New(f.Policy()), beyond.Enforce)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cl, err := beyond.DialProxy(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Hello(context.Background(), map[string]any{"MyUId": 1}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Query(context.Background(), "SELECT EId FROM Attendance WHERE UId = ?", 1); err != nil {
			b.Fatal(err)
		}
	}
}

// longTrace builds an n-entry session history of allowed point
// lookups, the shape a real application session accumulates.
func longTrace(n int) *trace.Trace {
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		sql := fmt.Sprintf("SELECT 1 FROM Attendance WHERE UId=1 AND EId=%d", i+2)
		st := sqlparser.MustParseSelect(sql)
		tr.Append(trace.Entry{
			SQL: sql, Stmt: st, Args: sqlparser.NoArgs,
			Columns: []string{"1"},
			Rows:    [][]sqlvalue.Value{{sqlvalue.NewInt(1)}},
		})
	}
	return tr
}

// BenchmarkCheckLongTrace is the enforcement hot path on a long
// session history (200 entries): "incremental" uses the trace-fact
// cache and the checker's generalization memo; "naive" re-derives the
// whole history per check, which is what every check paid before the
// incremental cache (O(n²) per session).
func BenchmarkCheckLongTrace(b *testing.B) {
	f := apps.Calendar()
	sel := sqlparser.MustParseSelect("SELECT * FROM Events WHERE EId=2")
	sess := f.Session(1)
	for _, cfg := range []struct {
		name         string
		useFactCache bool
	}{
		{"incremental", true},
		{"naive", false},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			opts := checker.DefaultOptions()
			opts.UseFactCache = cfg.useFactCache
			chk := checker.NewWithOptions(f.Policy(), opts)
			tr := longTrace(200)
			chk.Check(context.Background(), sel, sqlparser.NoArgs, sess, tr) // warm caches
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				chk.Check(context.Background(), sel, sqlparser.NoArgs, sess, tr)
			}
		})
	}
}

// BenchmarkCheckLongTraceGrowing measures the whole-session cost: one
// iteration appends an entry and re-checks, so per-op cost reflects
// the amortized incremental derivation rather than a fully warm cache.
func BenchmarkCheckLongTraceGrowing(b *testing.B) {
	f := apps.Calendar()
	sel := sqlparser.MustParseSelect("SELECT * FROM Events WHERE EId=2")
	sess := f.Session(1)
	chk := checker.New(f.Policy())
	tr := longTrace(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sql := fmt.Sprintf("SELECT 1 FROM Attendance WHERE UId=1 AND EId=%d", i+1000)
		st := sqlparser.MustParseSelect(sql)
		tr.Append(trace.Entry{SQL: sql, Stmt: st, Args: sqlparser.NoArgs,
			Columns: []string{"1"}, Rows: [][]sqlvalue.Value{{sqlvalue.NewInt(1)}}})
		chk.Check(context.Background(), sel, sqlparser.NoArgs, sess, tr)
	}
}

// BenchmarkCheckParallelPrincipals hammers one checker from all procs
// with per-principal sessions on a warm template: the sharded decision
// cache keeps concurrent hits from serializing on a single mutex.
func BenchmarkCheckParallelPrincipals(b *testing.B) {
	f := apps.Calendar()
	chk := checker.New(f.Policy())
	sel := sqlparser.MustParseSelect("SELECT EId FROM Attendance WHERE UId = ?")
	chk.Check(context.Background(), sel, sqlparser.PositionalArgs(1), f.Session(1), nil) // warm template
	var uid atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		me := uid.Add(1)
		sess := f.Session(me)
		args := sqlparser.PositionalArgs(me)
		for pb.Next() {
			chk.Check(context.Background(), sel, args, sess, nil)
		}
	})
}

func benchName(prefix string, n int) string {
	digits := ""
	if n == 0 {
		digits = "0"
	}
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return prefix + "-" + digits
}
