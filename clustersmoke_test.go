package beyond_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	beyond "repro"
	"repro/internal/apps"
	"repro/internal/proxy"
)

// startCluster brings up n clustered Serve stacks over the fixture,
// each with its own database, checker, WAL directory, and v2 listener,
// then installs the bound addresses as the shared member set. Tuning
// is aggressive (short leases, fast probes) so failover completes in
// test time.
func startCluster(t *testing.T, f *apps.Fixture, n int) ([]*beyond.Service, []string) {
	t.Helper()
	ids := make([]string, n)
	members := make([]beyond.ClusterMember, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("node%d", i)
		members[i] = beyond.ClusterMember{ID: ids[i]}
	}
	svcs := make([]*beyond.Service, n)
	for i, id := range ids {
		svc, err := beyond.Serve(f.MustNewDB(20), beyond.NewChecker(f.Policy()), beyond.Enforce,
			beyond.WithV2Listener("127.0.0.1:0",
				beyond.WithDurability(t.TempDir(), beyond.WithFsync(beyond.FsyncOff))),
			beyond.WithCluster(beyond.ClusterConfig{
				Self:          id,
				Members:       members,
				LeaseTTL:      300 * time.Millisecond,
				ProbeInterval: 50 * time.Millisecond,
				SuspectAfter:  2,
				ShipFlush:     2 * time.Millisecond,
				Logf:          t.Logf,
			}))
		if err != nil {
			t.Fatal(err)
		}
		svcs[i] = svc
		t.Cleanup(func() { svc.Close() })
	}
	live := make([]beyond.ClusterMember, n)
	for i, id := range ids {
		live[i] = beyond.ClusterMember{ID: id, Addr: svcs[i].V2Addr()}
	}
	for _, svc := range svcs {
		svc.ClusterNode().SetMembers(live)
	}
	return svcs, ids
}

// durableDecision runs one workload query on a named durable session
// over a fresh connection: hello (restoring any persisted history),
// optionally the priming query, then the decision query.
func durableDecision(t *testing.T, addr, name string, w apps.WorkloadQuery, prime bool) (decision, int) {
	t.Helper()
	ctx := context.Background()
	cl, err := proxy.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	restored, err := cl.HelloDurable(ctx, name, map[string]any{"MyUId": w.UId})
	if err != nil {
		t.Fatalf("%s: hello %s: %v", w.Label, name, err)
	}
	if prime && w.PrimeSQL != "" {
		if _, err := cl.Query(ctx, w.PrimeSQL, w.PrimeArgs...); err != nil {
			t.Fatalf("%s: prime: %v", w.Label, err)
		}
	}
	res, err := cl.Query(ctx, w.SQL, w.Args...)
	if err != nil {
		var be *proxy.BlockedError
		if !errors.As(err, &be) {
			t.Fatalf("%s: query: %v", w.Label, err)
		}
		return decision{allowed: false, reason: be.Reason}, restored
	}
	return decision{allowed: true, rows: len(res.Rows)}, restored
}

// clusterStatus fetches one node's cluster.status view.
func clusterStatus(t *testing.T, addr string) *proxy.ClusterBody {
	t.Helper()
	cl, err := proxy.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := cl.Do(ctx, &proxy.Request{Op: "cluster.status"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" || resp.Cluster == nil {
		t.Fatalf("cluster.status: %+v", resp)
	}
	return resp.Cluster
}

// TestClusterSmoke is the CI smoke for cluster mode (`make
// clustersmoke`): a 3-node cluster serves a mixed-session corpus
// through ONE node — some sessions local, some forwarded to their
// owners — and every decision must byte-match a single-node control
// stack. Then one non-entry node is killed and a session it owned
// (with history-dependent state) is re-decided through the surviving
// entry node: the follower that held its shipped WAL records must
// restore it and answer exactly as the control does.
func TestClusterSmoke(t *testing.T) {
	f, err := apps.ByName("calendar")
	if err != nil {
		t.Fatal(err)
	}
	svcs, ids := startCluster(t, f, 3)
	entry := svcs[0] // every client request enters here

	ctrl, err := beyond.Serve(f.MustNewDB(20), beyond.NewChecker(f.Policy()), beyond.Enforce,
		beyond.WithV2Listener("127.0.0.1:0",
			beyond.WithDurability(t.TempDir(), beyond.WithFsync(beyond.FsyncOff))))
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	// Phase 1: cross-node decision parity. Placement is deterministic
	// (the ring is a pure function of ids and names), so assert the
	// corpus really exercises both paths.
	ring := entry.ClusterNode().Ring()
	owners := map[string]int{}
	for i, w := range f.Corpus {
		name := fmt.Sprintf("cs-%02d-%s", i, w.Label)
		owners[ring.Owner(name)]++
		got, _ := durableDecision(t, entry.V2Addr(), name, w, true)
		want, _ := durableDecision(t, ctrl.V2Addr(), name, w, true)
		if got != want {
			t.Fatalf("%s (session %s, owner %s): cluster decision %+v != control %+v",
				w.Label, name, ring.Owner(name), got, want)
		}
		if got.allowed != w.WantAllowed {
			t.Fatalf("%s: decision %+v contradicts corpus label %v", w.Label, got, w.WantAllowed)
		}
	}
	if owners[ids[0]] == 0 || owners[ids[0]] == len(f.Corpus) {
		t.Fatalf("corpus placement not mixed: %v — rename sessions so both paths run", owners)
	}
	st := clusterStatus(t, entry.V2Addr())
	if st.ForwardedSessions == 0 && st.ForwardedOps == 0 {
		t.Fatalf("entry node forwarded nothing: %+v", st)
	}

	// Phase 2: forced handover. Pick a history-dependent allowed query,
	// pin its session to the node we will kill, and prime it through
	// the entry node.
	var hw apps.WorkloadQuery
	for _, w := range f.Corpus {
		if w.PrimeSQL != "" && w.WantAllowed {
			hw = w
			break
		}
	}
	if hw.SQL == "" {
		t.Fatal("corpus has no history-dependent allowed query")
	}
	victim := ids[1]
	name := ""
	for k := 0; ; k++ {
		cand := fmt.Sprintf("handover-%d", k)
		if ring.Owner(cand) == victim {
			name = cand
			break
		}
	}
	before, _ := durableDecision(t, entry.V2Addr(), name, hw, true)
	ctrlBefore, _ := durableDecision(t, ctrl.V2Addr(), name, hw, true)
	if before != ctrlBefore {
		t.Fatalf("pre-kill decision %+v != control %+v", before, ctrlBefore)
	}
	if !before.allowed {
		t.Fatalf("handover query blocked before kill: %+v", before)
	}

	// Wait for the victim to drain its ship queue — the follower must
	// hold the full history before the owner dies.
	deadline := time.Now().Add(10 * time.Second)
	for {
		vs := clusterStatus(t, svcs[1].V2Addr())
		if vs.ShipEnqueued > 0 && vs.ShipAcked == vs.ShipEnqueued && vs.ShipDropped == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim never drained its ship queue: %+v", vs)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := svcs[1].Close(); err != nil {
		t.Fatalf("kill %s: %v", victim, err)
	}

	// Survivors converge: probes fail, the victim's lease expires, the
	// ring drops to two members on both survivors.
	for {
		a := svcs[0].ClusterNode().Ring()
		c := svcs[2].ClusterNode().Ring()
		if a.Size() == 2 && c.Size() == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivors never evicted %s: sizes %d/%d", victim, a.Size(), c.Size())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := svcs[0].ClusterNode().Ring().Owner(name); got != ring.Follower(name) {
		t.Fatalf("failover owner %s != ship follower %s", got, ring.Follower(name))
	}

	// The session re-decides through the entry node WITHOUT re-priming:
	// only the shipped history can make it allowed, and the verdict,
	// reason, and row count must byte-match the single-node control.
	after, restored := durableDecision(t, entry.V2Addr(), name, hw, false)
	ctrlAfter, _ := durableDecision(t, ctrl.V2Addr(), name, hw, false)
	if restored == 0 {
		t.Fatal("takeover restored no history — shipped WAL records were lost")
	}
	if after != ctrlAfter {
		t.Fatalf("post-handover decision %+v != control %+v", after, ctrlAfter)
	}
	if !after.allowed {
		t.Fatalf("history-dependent query blocked after handover: %+v", after)
	}
	if st := clusterStatus(t, entry.V2Addr()); st.Takeovers == 0 && clusterStatus(t, svcs[2].V2Addr()).Takeovers == 0 {
		t.Fatalf("no survivor recorded a takeover")
	}
}
